//! Unidirectional links with bandwidth, propagation delay, a queue discipline
//! and an optional random-loss model.
//!
//! Duplex connectivity is modelled as two independent unidirectional links,
//! mirroring how the evaluation topologies (paper Figure 8, the star
//! topologies of Sections 4.2–4.3, the tail circuits of Figure 10) are
//! specified: per-direction bandwidth, delay and loss.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::packet::{LinkId, NodeId, Packet};
use crate::queue::{EnqueueResult, Queue, QueueDiscipline};
use crate::time::SimTime;

/// Random loss applied to packets traversing a link, independent of queueing.
///
/// Used for the star-topology experiments where the paper configures links
/// with fixed loss rates (0.1 %, 0.5 %, 2.5 %, 12.5 %) and for the lossy
/// feedback paths of Appendix D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No random loss; only queue overflows drop packets.
    None,
    /// Each packet is dropped independently with probability `p`.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
}

impl LossModel {
    /// Returns true if a packet should be dropped, given a uniform sample.
    pub fn drops(&self, uniform: f64) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => uniform < *p,
        }
    }

    /// Panics (with the offending value) unless the model's parameters are
    /// valid — finite drop probability within `[0, 1]`.
    pub fn validate(&self) {
        if let LossModel::Bernoulli { p } = self {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(p),
                "Bernoulli loss probability must be a finite value in [0, 1], got {p}"
            );
        }
    }
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full (or RED early drop).
    pub dropped_queue: u64,
    /// Packets dropped by the random loss model.
    pub dropped_loss: u64,
    /// Packets fully delivered to the downstream node.
    pub delivered: u64,
    /// Bytes fully delivered to the downstream node.
    pub delivered_bytes: u64,
}

/// A unidirectional link.
#[derive(Debug)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Capacity in bytes per second.
    pub bandwidth: f64,
    /// Propagation delay in seconds.
    pub delay: f64,
    /// Random loss model applied at ingress.
    pub loss: LossModel,
    queue: Queue,
    /// Packet currently being serialized onto the wire, if any.
    in_flight: Option<Packet>,
    /// This link's private RNG stream for loss and RED draws.  Each link is
    /// seeded independently (splitmix64 over the simulation seed and the
    /// link id), so one link's draw sequence never shifts when other links
    /// or agents are added to the scenario.
    rng: SmallRng,
    /// Counters.
    pub stats: LinkStats,
}

/// What a link did with a packet offered to it.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkAccept {
    /// The packet was queued (or started transmitting); if transmission
    /// started, the completion time is returned so the caller can schedule a
    /// `TxComplete` event.
    Accepted {
        /// `Some(t)` if the link was idle and serialization of this packet
        /// completes at `t`.
        tx_complete_at: Option<SimTime>,
    },
    /// The packet was dropped (loss model or full queue).
    Dropped,
}

impl Link {
    /// Creates an idle link; `seed` initialises the link's private RNG
    /// stream for loss and RED draws.
    ///
    /// Bandwidth and delay must be positive and finite (same contract as
    /// `Simulator::add_link`): a zero-bandwidth link never transmits and a
    /// zero-delay link has a degenerate zero routing metric.
    pub fn new(
        id: LinkId,
        from: NodeId,
        to: NodeId,
        bandwidth: f64,
        delay: f64,
        discipline: QueueDiscipline,
        seed: u64,
    ) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "link bandwidth must be a positive, finite number of bytes/s, got {bandwidth}"
        );
        assert!(
            delay.is_finite() && delay > 0.0,
            "link delay must be a positive, finite number of seconds, got {delay}"
        );
        Link {
            id,
            from,
            to,
            bandwidth,
            delay,
            loss: LossModel::None,
            queue: Queue::new(discipline),
            in_flight: None,
            rng: SmallRng::seed_from_u64(seed),
            stats: LinkStats::default(),
        }
    }

    /// Serialization time of a packet of `size` bytes on this link.
    pub fn tx_time(&self, size: u32) -> f64 {
        f64::from(size) / self.bandwidth
    }

    /// Number of packets waiting in the queue (not counting the one in flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Offers a packet to this link, drawing any needed loss/RED samples
    /// from the link's own deterministic RNG stream.
    pub fn offer(&mut self, packet: Packet, now: SimTime) -> LinkAccept {
        let loss_uniform: f64 = self.rng.gen();
        // The queue sample is drawn up front (whether or not the packet ends
        // up queued) so a link's draw sequence depends only on how many
        // packets were offered to it, not on its queue occupancy history.
        let queue_uniform: f64 = self.rng.gen();
        self.offer_sampled(packet, now, loss_uniform, queue_uniform)
    }

    /// [`Link::offer`] with explicit uniform samples in `[0, 1)` for the
    /// loss model and RED — the deterministic core, also used by tests that
    /// need to force a drop or an acceptance.
    pub fn offer_sampled(
        &mut self,
        packet: Packet,
        now: SimTime,
        loss_uniform: f64,
        queue_uniform: f64,
    ) -> LinkAccept {
        if self.loss.drops(loss_uniform) {
            self.stats.dropped_loss += 1;
            return LinkAccept::Dropped;
        }
        if self.in_flight.is_none() {
            // Link idle: begin transmitting immediately, bypassing the queue.
            let done = now + self.tx_time(packet.size);
            self.stats.enqueued += 1;
            self.in_flight = Some(packet);
            return LinkAccept::Accepted {
                tx_complete_at: Some(done),
            };
        }
        match self.queue.enqueue(packet, now, queue_uniform) {
            EnqueueResult::Queued => {
                self.stats.enqueued += 1;
                LinkAccept::Accepted {
                    tx_complete_at: None,
                }
            }
            EnqueueResult::DroppedFull | EnqueueResult::DroppedEarly => {
                self.stats.dropped_queue += 1;
                LinkAccept::Dropped
            }
        }
    }

    /// Completes the transmission of the in-flight packet.
    ///
    /// Returns the packet that finished serializing (to be delivered to the
    /// downstream node after [`Link::delay`]) and, if another packet was
    /// waiting, the completion time of its transmission.
    pub fn tx_complete(&mut self, now: SimTime) -> (Packet, Option<SimTime>) {
        let done = self
            .in_flight
            .take()
            .expect("tx_complete called with no packet in flight");
        self.stats.delivered += 1;
        self.stats.delivered_bytes += u64::from(done.size);
        let next = self.queue.dequeue(now);
        let next_complete = next.map(|p| {
            let t = now + self.tx_time(p.size);
            self.in_flight = Some(p);
            t
        });
        (done, next_complete)
    }

    /// True if a packet is currently being serialized.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Address, Dest, FlowId, Payload, Port};

    fn pkt(size: u32) -> Packet {
        let a = Address::new(NodeId(0), Port(0));
        Packet::new(a, Dest::Unicast(a), size, FlowId(0), Payload::empty())
    }

    fn link(bw: f64, delay: f64, qlen: usize) -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            bw,
            delay,
            QueueDiscipline::drop_tail(qlen),
            1,
        )
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut l = link(1000.0, 0.01, 10);
        let accept = l.offer_sampled(pkt(500), SimTime::ZERO, 0.9, 0.9);
        match accept {
            LinkAccept::Accepted { tx_complete_at } => {
                assert_eq!(tx_complete_at.unwrap().as_secs(), 0.5);
            }
            _ => panic!("expected acceptance"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_and_chains_transmissions() {
        let mut l = link(1000.0, 0.001, 10);
        l.offer_sampled(pkt(1000), SimTime::ZERO, 0.9, 0.9);
        let second = l.offer_sampled(pkt(500), SimTime::ZERO, 0.9, 0.9);
        assert_eq!(
            second,
            LinkAccept::Accepted {
                tx_complete_at: None
            }
        );
        assert_eq!(l.queue_len(), 1);
        // First completes at t=1.0; the second starts then and takes 0.5 s.
        let (done, next) = l.tx_complete(SimTime::from_secs(1.0));
        assert_eq!(done.size, 1000);
        assert_eq!(next.unwrap().as_secs(), 1.5);
        let (done2, next2) = l.tx_complete(SimTime::from_secs(1.5));
        assert_eq!(done2.size, 500);
        assert!(next2.is_none());
        assert!(!l.is_busy());
        assert_eq!(l.stats.delivered, 2);
        assert_eq!(l.stats.delivered_bytes, 1500);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = link(1000.0, 0.001, 2);
        l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9); // in flight
        l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9); // queued 1
        l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9); // queued 2
        let r = l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9);
        assert_eq!(r, LinkAccept::Dropped);
        assert_eq!(l.stats.dropped_queue, 1);
        assert_eq!(l.stats.enqueued, 3);
    }

    #[test]
    fn bernoulli_loss_drops_based_on_sample() {
        let mut l = link(1000.0, 0.001, 10);
        l.loss = LossModel::Bernoulli { p: 0.25 };
        assert_eq!(
            l.offer_sampled(pkt(100), SimTime::ZERO, 0.1, 0.9),
            LinkAccept::Dropped
        );
        assert!(matches!(
            l.offer_sampled(pkt(100), SimTime::ZERO, 0.5, 0.9),
            LinkAccept::Accepted { .. }
        ));
        assert_eq!(l.stats.dropped_loss, 1);
    }

    #[test]
    fn loss_model_none_never_drops() {
        assert!(!LossModel::None.drops(0.0));
        assert!(LossModel::Bernoulli { p: 1.0 }.drops(0.999));
        assert!(!LossModel::Bernoulli { p: 0.0 }.drops(0.0001));
    }

    #[test]
    fn tx_time_scales_with_size_and_bandwidth() {
        let l = link(1_000_000.0, 0.001, 10);
        assert_eq!(l.tx_time(1_000_000), 1.0);
        assert_eq!(l.tx_time(500_000), 0.5);
    }
}
