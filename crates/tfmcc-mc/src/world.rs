//! The TFMCC model: one sender, N receivers, an adversarial network.
//!
//! [`McWorld`] holds the *real* protocol state machines from `tfmcc-proto` —
//! nothing is mocked — plus an abstract network: a bag of in-flight messages
//! the scheduler delivers, drops, duplicates or reorders one
//! [`Action`] at a time.  The sender is run twice in lockstep, once on the
//! [`IncrementalAggregator`] and once on the [`ReferenceAggregator`], so the
//! aggregator-agreement invariant can compare them after every step.
//!
//! All nondeterminism of a real deployment is reified as explicit actions:
//! time only advances via [`Action::Tick`], messages only move via
//! [`Action::Deliver`] (any order — reordering is free), and loss,
//! duplication and receiver churn are budgeted actions.  The budgets plus
//! the time horizon make the reachable state space finite, so
//! [`explore`](crate::explore::explore) can exhaust it.
//!
//! [`IncrementalAggregator`]: tfmcc_proto::aggregator::IncrementalAggregator
//! [`ReferenceAggregator`]: tfmcc_proto::aggregator::ReferenceAggregator

use std::fmt;
use std::hash::Hasher;
use std::str::FromStr;

use tfmcc_proto::aggregator::AggregatorKind;
use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::{DataPacket, FeedbackPacket, ReceiverId};
use tfmcc_proto::receiver::TfmccReceiver;
use tfmcc_proto::sender::TfmccSender;
use tfmcc_proto::step::{ReceiverStep, SenderStep, StateFingerprint};

use crate::explore::Model;
use crate::hasher::Fnv1a;
use crate::invariants::{default_invariants, Invariant};

/// Tolerance for timer-deadline comparisons, matching the receiver's own
/// `on_timer` slack.
const TIMER_EPS: f64 = 1e-9;

/// Checker configuration: the protocol parameters plus the adversary's
/// budgets, which bound the reachable state space.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of receivers (ids 1..=receivers).
    pub receivers: usize,
    /// Protocol parameters shared by the sender and all receivers.
    pub protocol: TfmccConfig,
    /// Seconds added to the clock by one [`Action::Tick`].
    pub tick: f64,
    /// Time horizon: no further ticks once the clock reaches it.
    pub max_time: f64,
    /// How many messages the adversary may drop.
    pub max_drops: u32,
    /// How many messages the adversary may duplicate.
    pub max_dups: u32,
    /// How many receivers may leave.
    pub max_leaves: u32,
    /// How many data transmissions the sender schedules.
    pub data_budget: u32,
    /// Cap on scheduled in-flight messages (spontaneous protocol output such
    /// as CLR reports may exceed it; only chosen actions are gated).
    pub max_in_flight: usize,
}

impl McConfig {
    /// Protocol parameters scaled for model checking: a 50 ms initial RTT
    /// with a tightened feedback window (`max(2·RTT_max, 2·s/rate)` = 0.1 s
    /// initially) and a short CLR timeout, so feedback timers actually fire
    /// and round boundaries and timeouts are all reachable inside a
    /// sub-second horizon.
    fn checking_protocol() -> TfmccConfig {
        TfmccConfig {
            initial_rtt: 0.05,
            feedback_t_rtt_multiple: 2.0,
            low_rate_q: 1.0,
            clr_timeout_multiple: 2.0,
            ..TfmccConfig::default()
        }
    }

    /// The named presets, from quickest to most thorough.
    pub fn preset_names() -> &'static [&'static str] {
        &["smoke2", "smoke3", "deep3"]
    }

    /// Looks up a preset by name.
    pub fn preset(name: &str) -> Option<McConfig> {
        match name {
            // Tiny 2-receiver space (~4k states): exhausts in well under a
            // second even in debug builds, used by unit tests.
            "smoke2" => Some(McConfig {
                receivers: 2,
                protocol: Self::checking_protocol(),
                tick: 0.05,
                max_time: 0.1,
                max_drops: 1,
                max_dups: 1,
                max_leaves: 1,
                data_budget: 1,
                max_in_flight: 4,
            }),
            // The CI-smoke configuration: 1 sender / 3 receivers, one
            // droppable + one duplicable message, one leave.  Exhausts at
            // ~7.7·10^4 distinct states in under a second (release), with
            // feedback timers firing inside the horizon.
            "smoke3" => Some(McConfig {
                receivers: 3,
                protocol: Self::checking_protocol(),
                tick: 0.05,
                max_time: 0.1,
                max_drops: 1,
                max_dups: 1,
                max_leaves: 1,
                data_budget: 1,
                max_in_flight: 4,
            }),
            // A much deeper space (>10^6 states): meant for the `mc_check`
            // binary with an explicit state cap, not for exhaustion in CI.
            "deep3" => Some(McConfig {
                receivers: 3,
                protocol: Self::checking_protocol(),
                tick: 0.05,
                max_time: 0.3,
                max_drops: 2,
                max_dups: 1,
                max_leaves: 2,
                data_budget: 2,
                max_in_flight: 8,
            }),
            _ => None,
        }
    }

    /// Basic sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.receivers == 0 {
            return Err("at least one receiver is required".into());
        }
        if !self.tick.is_finite() || self.tick <= 0.0 {
            return Err("tick must be positive".into());
        }
        if !self.max_time.is_finite() || self.max_time <= 0.0 {
            return Err("max_time must be positive".into());
        }
        self.protocol.validate()
    }
}

/// One schedulable step of the adversarial scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Advance the clock by one tick (runs the sender's timer logic).
    Tick,
    /// The sender transmits one data packet (fanned out per live receiver).
    SendData,
    /// Deliver the in-flight message at this index.
    Deliver(usize),
    /// Drop the in-flight message at this index (consumes the drop budget).
    Drop(usize),
    /// Duplicate the in-flight message at this index (consumes the
    /// duplication budget).
    Duplicate(usize),
    /// Fire this receiver's pending feedback timer (index into receivers).
    FireTimer(usize),
    /// This receiver leaves: its leave report enters the network — and can
    /// itself be dropped, which is exactly the CLR-loss scenario.
    Leave(usize),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Tick => write!(f, "Tick"),
            Action::SendData => write!(f, "Send"),
            Action::Deliver(i) => write!(f, "Deliver:{i}"),
            Action::Drop(i) => write!(f, "Drop:{i}"),
            Action::Duplicate(i) => write!(f, "Dup:{i}"),
            Action::FireTimer(r) => write!(f, "Fire:{r}"),
            Action::Leave(r) => write!(f, "Leave:{r}"),
        }
    }
}

impl FromStr for Action {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (head, arg) = match s.split_once(':') {
            Some((head, arg)) => (head, Some(arg)),
            None => (s, None),
        };
        let index = || -> Result<usize, String> {
            arg.ok_or_else(|| format!("action '{s}' needs an index"))?
                .parse::<usize>()
                .map_err(|e| format!("bad index in action '{s}': {e}"))
        };
        match head {
            "Tick" => Ok(Action::Tick),
            "Send" => Ok(Action::SendData),
            "Deliver" => Ok(Action::Deliver(index()?)),
            "Drop" => Ok(Action::Drop(index()?)),
            "Dup" => Ok(Action::Duplicate(index()?)),
            "Fire" => Ok(Action::FireTimer(index()?)),
            "Leave" => Ok(Action::Leave(index()?)),
            other => Err(format!("unknown action '{other}'")),
        }
    }
}

/// An in-flight message.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// A data packet addressed to one receiver (multicast fan-out is modelled
    /// as one copy per live receiver, so each copy is droppable on its own —
    /// receivers can observe different loss patterns).
    Data {
        /// Index of the destination receiver.
        to: usize,
        /// The packet.
        packet: DataPacket,
    },
    /// A receiver report travelling to the sender.
    Feedback {
        /// The report.
        packet: FeedbackPacket,
    },
}

impl StateFingerprint for NetMsg {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        match self {
            NetMsg::Data { to, packet } => {
                h.write_u8(0);
                h.write_usize(*to);
                packet.fingerprint(h);
            }
            NetMsg::Feedback { packet } => {
                h.write_u8(1);
                packet.fingerprint(h);
            }
        }
    }
}

/// The complete model-checker state.
///
/// Fields are public so custom [`Invariant`] implementations can inspect
/// anything; mutation happens only inside [`McModel::apply`].
#[derive(Debug, Clone)]
pub struct McWorld {
    /// Global clock in seconds (every endpoint sees the same clock; clock
    /// skew is exercised by the simulator tests, not the checker).
    pub now: f64,
    /// The sender under test, on the incremental aggregator.
    pub sender: TfmccSender,
    /// Lockstep shadow sender on the reference aggregator.
    pub shadow: TfmccSender,
    /// The receivers, index `r` carrying `ReceiverId(r + 1)`.
    pub receivers: Vec<TfmccReceiver>,
    /// Which receivers have left.
    pub departed: Vec<bool>,
    /// In-flight messages, deliverable in any order.
    pub network: Vec<NetMsg>,
    /// Remaining drop budget.
    pub drops_left: u32,
    /// Remaining duplication budget.
    pub dups_left: u32,
    /// Remaining leave budget.
    pub leaves_left: u32,
    /// Remaining data transmissions.
    pub data_left: u32,
    /// Highest feedback window observed during the current feedback round
    /// (the round-termination bound must use the *largest* window the round
    /// ran under, since the window moves with `max_rtt` and the rate).
    pub window_hwm: f64,
    /// Round the high-water mark belongs to.
    pub last_round: u64,
    /// Sender rate (bits) before the last action, for frame checks.
    pub prev_rate_bits: u64,
    /// Sender max-RTT (bits) before the last action.
    pub prev_max_rtt_bits: u64,
    /// Sender feedback round before the last action.
    pub prev_round: u64,
    /// Whether the last action legitimately touched the sender (tick, data
    /// transmission or feedback delivery).  Frame invariants require the
    /// sender's aggregates to be bit-identical otherwise.
    pub sender_touched: bool,
    /// First divergence between the sender's and the shadow's data packets,
    /// if any (checked by the aggregator-agreement invariant).
    pub shadow_mismatch: Option<String>,
}

impl McWorld {
    /// Number of receivers still in the group.
    pub fn live_receivers(&self) -> usize {
        self.departed.iter().filter(|d| !**d).count()
    }
}

impl StateFingerprint for McWorld {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        h.write_u64(self.now.to_bits());
        self.sender.fingerprint(h);
        self.shadow.fingerprint(h);
        h.write_usize(self.receivers.len());
        for r in &self.receivers {
            r.fingerprint(h);
        }
        for &d in &self.departed {
            h.write_u8(d as u8);
        }
        // The network is a bag: the index order carries no semantics (it
        // only names the operand of the next action), so hash the sorted
        // per-message fingerprints to merge permutations of the same
        // multiset — their reachable futures are identical up to renaming.
        let mut msg_fps: Vec<u64> = self
            .network
            .iter()
            .map(|m| {
                let mut mh = Fnv1a::new();
                m.fingerprint(&mut mh);
                mh.finish()
            })
            .collect();
        msg_fps.sort_unstable();
        h.write_usize(msg_fps.len());
        for fp in msg_fps {
            h.write_u64(fp);
        }
        h.write_u32(self.drops_left);
        h.write_u32(self.dups_left);
        h.write_u32(self.leaves_left);
        h.write_u32(self.data_left);
        // Round bookkeeping feeds future invariant checks, so states that
        // differ here must not merge.  The prev_* frame snapshot does not:
        // it is overwritten at the start of every apply().
        h.write_u64(self.window_hwm.to_bits());
        h.write_u64(self.last_round);
        h.write_u8(self.shadow_mismatch.is_some() as u8);
    }
}

/// The TFMCC model: configuration plus the invariants to check after every
/// transition.
pub struct McModel {
    config: McConfig,
    invariants: Vec<Box<dyn Invariant>>,
}

impl McModel {
    /// Builds the model with the four shipped invariants.
    pub fn new(config: McConfig) -> Self {
        Self::with_invariants(config, default_invariants())
    }

    /// Builds the model with a custom invariant set.
    pub fn with_invariants(config: McConfig, invariants: Vec<Box<dyn Invariant>>) -> Self {
        config.validate().expect("invalid checker configuration");
        McModel { config, invariants }
    }

    /// The checker configuration.
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Names of the registered invariants.
    pub fn invariant_names(&self) -> Vec<&'static str> {
        self.invariants.iter().map(|i| i.name()).collect()
    }
}

impl Model for McModel {
    type State = McWorld;
    type Action = Action;

    fn initial(&self) -> McWorld {
        let sender =
            TfmccSender::with_aggregator(self.config.protocol.clone(), AggregatorKind::Incremental);
        let shadow =
            TfmccSender::with_aggregator(self.config.protocol.clone(), AggregatorKind::Reference);
        let receivers: Vec<TfmccReceiver> = (0..self.config.receivers)
            .map(|r| TfmccReceiver::new(ReceiverId(r as u64 + 1), self.config.protocol.clone()))
            .collect();
        let window_hwm = sender.feedback_window();
        let last_round = sender.feedback_round();
        McWorld {
            now: 0.0,
            prev_rate_bits: sender.current_rate().to_bits(),
            prev_max_rtt_bits: sender.max_rtt().to_bits(),
            prev_round: sender.feedback_round(),
            sender,
            shadow,
            departed: vec![false; self.config.receivers],
            receivers,
            network: Vec::new(),
            drops_left: self.config.max_drops,
            dups_left: self.config.max_dups,
            leaves_left: self.config.max_leaves,
            data_left: self.config.data_budget,
            window_hwm,
            last_round,
            sender_touched: false,
            shadow_mismatch: None,
        }
    }

    fn enabled(&self, w: &McWorld) -> Vec<Action> {
        let mut actions = Vec::new();
        if w.now + self.config.tick <= self.config.max_time + TIMER_EPS {
            actions.push(Action::Tick);
        }
        let live = w.live_receivers();
        if w.data_left > 0 && live > 0 && w.network.len() + live <= self.config.max_in_flight {
            actions.push(Action::SendData);
        }
        for i in 0..w.network.len() {
            actions.push(Action::Deliver(i));
        }
        if w.drops_left > 0 {
            for i in 0..w.network.len() {
                actions.push(Action::Drop(i));
            }
        }
        if w.dups_left > 0 && w.network.len() < self.config.max_in_flight {
            for i in 0..w.network.len() {
                actions.push(Action::Duplicate(i));
            }
        }
        for (r, receiver) in w.receivers.iter().enumerate() {
            if w.departed[r] {
                continue;
            }
            if let Some(fire_at) = ReceiverStep::next_timer(receiver) {
                if fire_at <= w.now + TIMER_EPS {
                    actions.push(Action::FireTimer(r));
                }
            }
            if w.leaves_left > 0 {
                actions.push(Action::Leave(r));
            }
        }
        actions
    }

    fn apply(&self, state: &McWorld, action: &Action) -> McWorld {
        let mut w = state.clone();
        w.prev_rate_bits = w.sender.current_rate().to_bits();
        w.prev_max_rtt_bits = w.sender.max_rtt().to_bits();
        w.prev_round = w.sender.feedback_round();
        w.sender_touched = false;

        match *action {
            Action::Tick => {
                w.now += self.config.tick;
                SenderStep::on_tick(&mut w.sender, w.now);
                SenderStep::on_tick(&mut w.shadow, w.now);
                w.sender_touched = true;
            }
            Action::SendData => {
                w.data_left -= 1;
                let packet = SenderStep::next_data(&mut w.sender, w.now);
                let shadow_packet = SenderStep::next_data(&mut w.shadow, w.now);
                if packet != shadow_packet && w.shadow_mismatch.is_none() {
                    w.shadow_mismatch = Some(format!(
                        "data packets diverged at t={}: incremental {packet:?} vs reference {shadow_packet:?}",
                        w.now
                    ));
                }
                for r in 0..w.receivers.len() {
                    if !w.departed[r] {
                        w.network.push(NetMsg::Data {
                            to: r,
                            packet: packet.clone(),
                        });
                    }
                }
                w.sender_touched = true;
            }
            Action::Deliver(i) => match w.network.remove(i) {
                NetMsg::Data { to, packet } => {
                    if !w.departed[to] {
                        if let Some(fb) =
                            ReceiverStep::on_data(&mut w.receivers[to], w.now, &packet)
                        {
                            w.network.push(NetMsg::Feedback { packet: fb });
                        }
                    }
                }
                NetMsg::Feedback { packet } => {
                    SenderStep::on_feedback(&mut w.sender, w.now, &packet);
                    SenderStep::on_feedback(&mut w.shadow, w.now, &packet);
                    w.sender_touched = true;
                }
            },
            Action::Drop(i) => {
                w.network.remove(i);
                w.drops_left -= 1;
            }
            Action::Duplicate(i) => {
                let copy = w.network[i].clone();
                w.network.push(copy);
                w.dups_left -= 1;
            }
            Action::FireTimer(r) => {
                if let Some(fb) = ReceiverStep::on_timer(&mut w.receivers[r], w.now) {
                    w.network.push(NetMsg::Feedback { packet: fb });
                }
            }
            Action::Leave(r) => {
                let fb = ReceiverStep::leave(&mut w.receivers[r], w.now);
                w.departed[r] = true;
                w.leaves_left -= 1;
                // Data already in flight to the departed receiver evaporates.
                w.network
                    .retain(|m| !matches!(m, NetMsg::Data { to, .. } if *to == r));
                w.network.push(NetMsg::Feedback { packet: fb });
            }
        }

        // Track the feedback-window high-water mark per round.
        let round = w.sender.feedback_round();
        let window = w.sender.feedback_window();
        if round != w.last_round {
            w.last_round = round;
            w.window_hwm = window;
        } else if window > w.window_hwm {
            w.window_hwm = window;
        }
        w
    }

    fn fingerprint(&self, state: &McWorld) -> u64 {
        let mut h = Fnv1a::new();
        state.fingerprint(&mut h);
        h.finish()
    }

    fn check(&self, state: &McWorld) -> Result<(), (String, String)> {
        for invariant in &self.invariants {
            if let Err(message) = invariant.check(&self.config, state) {
                return Err((invariant.name().to_string(), message));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, run_schedule, Limits, Strategy};

    fn model(preset: &str) -> McModel {
        McModel::new(McConfig::preset(preset).expect("preset exists"))
    }

    #[test]
    fn presets_resolve_and_validate() {
        for name in McConfig::preset_names() {
            let config = McConfig::preset(name).expect("listed preset must resolve");
            config.validate().unwrap();
        }
        assert!(McConfig::preset("no-such-preset").is_none());
    }

    #[test]
    fn actions_round_trip_through_display() {
        let actions = [
            Action::Tick,
            Action::SendData,
            Action::Deliver(3),
            Action::Drop(0),
            Action::Duplicate(12),
            Action::FireTimer(2),
            Action::Leave(1),
        ];
        for a in actions {
            assert_eq!(a.to_string().parse::<Action>().unwrap(), a);
        }
        assert!("Frobnicate".parse::<Action>().is_err());
        assert!("Deliver".parse::<Action>().is_err());
        assert!("Deliver:x".parse::<Action>().is_err());
    }

    #[test]
    fn fingerprints_are_deterministic_and_order_insensitive() {
        let m = model("smoke2");
        let w = m.initial();
        assert_eq!(m.fingerprint(&w), m.fingerprint(&w.clone()));
        // Send, then compare the fingerprint of the two data copies in both
        // network orders: the bag hash must make them equal.
        let sent = m.apply(&w, &Action::SendData);
        assert_eq!(sent.network.len(), 2);
        let mut swapped = sent.clone();
        swapped.network.swap(0, 1);
        assert_eq!(m.fingerprint(&sent), m.fingerprint(&swapped));
        assert_ne!(m.fingerprint(&w), m.fingerprint(&sent));
    }

    #[test]
    fn leave_purges_pending_data_and_emits_droppable_report() {
        let m = model("smoke2");
        let w = m.initial();
        let sent = m.apply(&w, &Action::SendData);
        assert_eq!(sent.network.len(), 2);
        let left = m.apply(&sent, &Action::Leave(0));
        assert!(left.departed[0]);
        assert_eq!(left.live_receivers(), 1);
        // One data copy purged, one leave report added.
        assert_eq!(left.network.len(), 2);
        let reports = left
            .network
            .iter()
            .filter(|msg| matches!(msg, NetMsg::Feedback { packet } if packet.leaving))
            .count();
        assert_eq!(reports, 1);
        // Dropping the leave report must be a legal adversary move.
        let report_idx = left
            .network
            .iter()
            .position(|msg| matches!(msg, NetMsg::Feedback { .. }))
            .unwrap();
        assert!(m.enabled(&left).contains(&Action::Drop(report_idx)));
    }

    #[test]
    fn tick_stops_at_the_horizon() {
        let m = model("smoke2");
        let mut w = m.initial();
        let mut ticks = 0;
        while m.enabled(&w).contains(&Action::Tick) {
            w = m.apply(&w, &Action::Tick);
            ticks += 1;
            assert!(ticks < 1000, "tick must be bounded by max_time");
        }
        assert!(w.now <= m.config().max_time + 2e-9);
        assert!(w.now + m.config().tick > m.config().max_time);
    }

    #[test]
    fn smoke2_explores_clean_under_both_strategies() {
        let m = model("smoke2");
        let limits = Limits {
            max_states: 30_000,
            max_depth: usize::MAX,
        };
        let dfs = explore(&m, Strategy::Dfs, limits);
        assert!(dfs.violation.is_none(), "{:?}", dfs.violation);
        let bfs = explore(&m, Strategy::Bfs, limits);
        assert!(bfs.violation.is_none(), "{:?}", bfs.violation);
        // Both strategies see the same deduplicated state space (when
        // neither truncates).
        if !dfs.truncated && !bfs.truncated {
            assert_eq!(dfs.states_explored, bfs.states_explored);
        }
        assert!(dfs.states_explored > 100);
    }

    #[test]
    fn recorded_schedule_replays_deterministically() {
        let m = model("smoke2");
        // Drive an adversarial scenario by hand: send, lose one copy,
        // deliver the other, tick to the horizon.
        let mut schedule = vec![Action::SendData, Action::Drop(0), Action::Deliver(0)];
        let mut w = m.initial();
        for a in &schedule {
            w = m.apply(&w, a);
        }
        while m.enabled(&w).contains(&Action::Tick) {
            w = m.apply(&w, &Action::Tick);
            schedule.push(Action::Tick);
        }
        let replayed = run_schedule(&m, &schedule).expect("schedule must replay clean");
        assert_eq!(m.fingerprint(&replayed), m.fingerprint(&w));
    }
}
