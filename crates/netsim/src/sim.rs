//! The discrete-event simulator core: world state, the [`Agent`] trait
//! protocol endpoints implement, and the [`Context`] handed to agents for
//! interacting with the simulated network.  The event queue itself lives in
//! [`crate::events`] behind the [`EventQueue`] abstraction; this module
//! drives it and owns the timer table that makes cancellation O(1) and
//! bounded.
//!
//! # Structure
//!
//! The [`Simulator`] owns two halves:
//!
//! * the [`World`]: event queue (heap or calendar, see [`SchedulerKind`]),
//!   nodes, links, routing, multicast state, statistics and the RNG used
//!   for link loss / RED;
//! * the agents: boxed [`Agent`] trait objects attached to `(node, port)`
//!   addresses.
//!
//! When an event targets an agent, the agent is temporarily taken out of its
//! slot and invoked with a [`Context`] that borrows only the world, so agents
//! can freely send packets, schedule timers and join multicast groups from
//! within their callbacks without aliasing issues.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::domains::{domains_from_env, partition, DomainPlan};
use crate::events::{EventQueue, SchedulerKind};
use crate::link::{Link, LinkAccept, LinkStats, LossModel};
use crate::packet::{Address, AgentId, Dest, GroupId, LinkId, NodeId, Packet, Port};
use crate::queue::QueueDiscipline;
use crate::rng::stream_seed;
use crate::routing::{Edge, MulticastState, RoutingTable};
use crate::stats::StatsRegistry;
use crate::time::SimTime;

/// How multicast packets are replicated to their receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanoutMode {
    /// Zero-copy fan-out (the default): every replica shares one
    /// `PacketData` allocation, local subscribers come from a sorted
    /// per-`(node, group)` cache and tree out-links are iterated through a
    /// shared `Arc` slice.
    #[default]
    Shared,
    /// The historical clone-based path, kept as an executable reference:
    /// one `PacketData` copy per replica, subscribers collected and sorted
    /// per send, out-links copied per send, and distribution trees rebuilt
    /// from scratch after every membership change.  Delivery order and
    /// content are identical to [`FanoutMode::Shared`] — the equivalence
    /// proptest and the fan-out microbench rely on that.
    CloneReference,
}

/// Handle for a scheduled timer, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A protocol endpoint attached to a node.
///
/// Implementations also provide `as_any`/`as_any_mut` so experiments can
/// downcast a finished simulation's agents back to their concrete type to
/// read out measurements.
///
/// Agents must be `Send`: whole simulations are built and run inside worker
/// threads by the parallel sweep runner, so a [`Simulator`] (which owns the
/// boxed agents) has to be movable across threads.
pub trait Agent: Any + Send {
    /// Called once when the simulation starts (or when the agent is added to
    /// an already-running simulation).
    fn start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a packet addressed to this agent is delivered.
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}

    /// Called when a timer scheduled by this agent fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: u64) {}

    /// Upcast for downcasting to the concrete agent type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting to the concrete agent type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[derive(Debug)]
enum EventKind {
    AgentStart {
        agent: AgentId,
    },
    Timer {
        agent: AgentId,
        token: u64,
        timer: TimerId,
    },
    Deliver {
        agent: AgentId,
        packet: Packet,
    },
    NodeArrival {
        node: NodeId,
        packet: Packet,
    },
    LinkTxComplete {
        link: LinkId,
    },
    /// A packet offered into a cut link from its upstream domain, replayed
    /// in the owning (downstream) shard at the original offer time.  Only
    /// ever scheduled by the sharded orchestrator; the offer may be popped
    /// *behind* the shard's clock (the upstream stage ran the same window
    /// concurrently), which is safe because everything it produces — queue
    /// state, `LinkTxComplete`, arrivals — is private to the link until the
    /// propagation delay (≥ the plan's lookahead) has elapsed.
    LinkIngress {
        link: LinkId,
        packet: Packet,
    },
}

/// Approximate single-queue position of a post-split event among same-time
/// events, derived when the event is scheduled.  Single-threaded, events at
/// one instant pop in the order they were scheduled: first everything
/// scheduled at earlier instants (in scheduling order), then the
/// same-instant cascade breadth-first — each dispatch appends its children
/// after every event of its own generation.  The field order mirrors that:
/// scheduling instant, cascade generation within that instant, the
/// pre-split progenitor whose dispatch transitively produced this event,
/// and the schedule-call index within the immediate generator's dispatch.
/// Anchors are pre-split sequence numbers, which survive the split
/// unchanged in every domain, so the comparison is meaningful across
/// domains — exactly so for cascades one generation deep (the `AgentStart`
/// storm at t=0), heuristically beyond that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Lineage {
    gen_time: SimTime,
    depth: u32,
    anchor: u64,
    call: u32,
}

/// Globally comparable queue position of an event among same-time events,
/// used to interleave cross-domain membership deltas with a shard's local
/// events.  Pre-split events order by their surviving master sequence
/// numbers and precede every post-split event at the same time (post-split
/// sequence numbers are all greater single-threaded); post-split events
/// order by [`Lineage`], with `(origin domain, local seq)` as the
/// deterministic final tiebreak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventOrd {
    Pre(u64),
    Post(Lineage, u32, u64),
}

/// A node-level multicast membership transition recorded by a shard, to be
/// replayed into the other shards' membership replicas (and, at merge time,
/// into the master state).  `(time, ord)` is the timestamp and global queue
/// position of the event whose dispatch caused the transition; consuming
/// shards apply a delta before their own events with a strictly greater
/// `(time, ord)`, which reproduces the single-threaded interleaving — a
/// sender must observe the same empty-or-populated group it would have seen
/// single-threaded, whether the join happened during a pre-split event or
/// in a post-split cascade (see [`EventOrd`]).
#[derive(Debug, Clone, Copy)]
struct MembershipDelta {
    time: SimTime,
    ord: EventOrd,
    group: GroupId,
    node: NodeId,
    join: bool,
}

/// Present only while a [`World`] is acting as one shard of a domain-sharded
/// run: identifies the shard, intercepts cross-domain packet arrivals into
/// the outbox, and collects/applies membership deltas.
struct ShardCtx {
    domain: u32,
    node_domain: Arc<Vec<u32>>,
    link_owner: Arc<Vec<u32>>,
    /// Cross-domain packet handoffs produced this window: the link offer
    /// that `offer_to_link` would have performed locally, redirected because
    /// the cut link — and with it the whole serialization/queue/propagation
    /// pipeline — is owned by the downstream domain.  Drained by the
    /// orchestrator at stage boundaries and replayed over there as
    /// [`EventKind::LinkIngress`] events at the original offer times.
    outbox: Vec<(SimTime, LinkId, Packet, EventOrd)>,
    /// Node-level membership transitions that happened in this shard this
    /// window, in event order.
    deltas: Vec<MembershipDelta>,
    /// Remote transitions waiting to be applied to this shard's membership
    /// replica, sorted by `(time, ord)`; applied before dispatching any
    /// local event with a strictly greater `(time, ord)`.
    pending_deltas: Vec<MembershipDelta>,
    /// Queue position of the event currently being dispatched, stamped onto
    /// any membership deltas that dispatch records and extended into the
    /// [`Lineage`] of any events it schedules.
    current_ord: EventOrd,
    /// Schedule-call counter within the current dispatch; becomes the
    /// `call` component of scheduled children's [`Lineage`].
    current_calls: u32,
    /// Queue positions of the shard's live post-split events (local and
    /// replayed-ingress bands), keyed by sequence number; entries are
    /// inserted at scheduling time and consumed when the event dispatches.
    ord_map: BTreeMap<u64, EventOrd>,
    /// Cut-link events (`LinkIngress` / `LinkTxComplete`) popped beyond the
    /// safe horizon [`ShardCtx::cut_safe`], deferred with their original
    /// `(time, seq)` keys.  The orchestrator re-schedules them at the next
    /// window boundary, once every cross-domain offer below their time has
    /// been delivered; processing them early would let a cut link's
    /// completion chain run ahead of offers still in flight from the
    /// upstream domain.
    held: Vec<(SimTime, u64, EventKind)>,
    /// Horizon below which every cross-domain offer has been delivered to
    /// this shard: the running maximum of all previous window bounds.  Cut
    /// link events at or below it are safe to process; later ones wait in
    /// [`ShardCtx::held`].
    cut_safe: SimTime,
    /// Next sequence number for replayed [`EventKind::LinkIngress`] events.
    /// Drawn from the band between pre-split sequence numbers and the
    /// post-split local band ([`INGRESS_SEQ_BASE`] vs
    /// [`SHARD_LOCAL_SEQ_BASE`]), so at an exact-time tie a replayed offer
    /// loses to any event that already existed when the run sharded, but
    /// beats every event a shard scheduled afterwards — in particular the
    /// owned link's pending `LinkTxComplete`.  That reproduces the
    /// single-queue order: the offer's carrier (the upstream arrival that
    /// forwarded the packet) was scheduled one propagation delay before the
    /// tie instant, while the competing completion was scheduled only one
    /// serialization time before it, and a propagation delay on these paths
    /// exceeds a serialization time whenever the two can tie at all.
    ingress_seq: u64,
}

/// First sequence number of the replayed-ingress band (see
/// [`ShardCtx::ingress_seq`]).  Sits above every pre-split sequence number
/// and below [`SHARD_LOCAL_SEQ_BASE`].
const INGRESS_SEQ_BASE: u64 = 1 << 61;

/// First sequence number a shard hands to locally scheduled events.  Keeps
/// the whole post-split local band above the replayed-ingress band so a
/// cross-domain offer wins exact-time ties against events scheduled after
/// the split.
const SHARD_LOCAL_SEQ_BASE: u64 = 1 << 62;

#[derive(Debug, Default)]
struct Node {
    #[allow(dead_code)]
    name: String,
    agents: BTreeMap<Port, AgentId>,
    /// Subscription sets — the source of truth, and what the clone-based
    /// reference fan-out collects and sorts per send.
    subscriptions: BTreeMap<GroupId, BTreeSet<AgentId>>,
    /// Sorted subscriber lists maintained on join/leave; the shared fan-out
    /// clones the `Arc` and iterates without allocating.
    subscriber_cache: BTreeMap<GroupId, Arc<Vec<AgentId>>>,
}

/// Everything in the simulation except the agents themselves.
pub struct World {
    now: SimTime,
    queue: Box<dyn EventQueue<EventKind>>,
    scheduler: SchedulerKind,
    seq: u64,
    nodes: Vec<Node>,
    links: Vec<Link>,
    edges: Vec<Edge>,
    routes: RoutingTable,
    routes_dirty: bool,
    multicast: MulticastState,
    stats: StatsRegistry,
    /// Cached per-group join/leave counter names, so membership churn (a
    /// frequent event under the churn workloads) does not format a fresh
    /// key string on every transition.
    group_stat_keys: BTreeMap<GroupId, (String, String)>,
    agent_addrs: Vec<Address>,
    /// Timer id → `(fire time, event seq)` of every scheduled, not yet fired
    /// or cancelled timer.  Cancellation resolves through this table, so a
    /// stale [`Context::cancel`] (the timer already fired) is a no-op and —
    /// unlike the historical tombstone-only design — cannot leave a
    /// permanent tombstone behind.
    pending_timers: BTreeMap<u64, (SimTime, u64)>,
    next_timer: u64,
    next_packet: u64,
    /// Increment applied to `next_timer` / `next_packet` per allocation.
    /// 1 in normal operation; during a sharded run each of the K shards
    /// strides by K from a distinct offset, so the id spaces stay disjoint
    /// without coordination and merge back collision-free.
    id_stride: u64,
    /// The simulation's root seed; per-link RNG streams are derived from it.
    seed: u64,
    rng: SmallRng,
    fanout_mode: FanoutMode,
    events_processed: u64,
    /// Reused scratch buffer for link burst drains (packet, completion time).
    tx_scratch: Vec<(Packet, SimTime)>,
    /// Sharding context, present only while this world is one domain of a
    /// parallel run (see `DESIGN.md`, "Parallel domain sharding").
    shard: Option<ShardCtx>,
}

impl World {
    fn new(seed: u64, scheduler: SchedulerKind) -> Self {
        World {
            now: SimTime::ZERO,
            queue: scheduler.build(),
            scheduler,
            seq: 0,
            nodes: Vec::new(),
            links: Vec::new(),
            edges: Vec::new(),
            routes: RoutingTable::default(),
            routes_dirty: true,
            multicast: MulticastState::default(),
            stats: StatsRegistry::new(),
            group_stat_keys: BTreeMap::new(),
            agent_addrs: Vec::new(),
            pending_timers: BTreeMap::new(),
            next_timer: 0,
            next_packet: 0,
            id_stride: 1,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            fanout_mode: FanoutMode::Shared,
            events_processed: 0,
            tx_scratch: Vec::new(),
            shard: None,
        }
    }

    /// Enqueues an event; returns the event's sequence number (the tie-break
    /// half of its `(time, seq)` queue key).
    fn push_event(&mut self, time: SimTime, kind: EventKind) -> u64 {
        debug_assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        // Sharded runs: derive the new event's global queue position from
        // the dispatch that scheduled it (see [`Lineage`]).
        if let Some(sh) = self.shard.as_mut() {
            let lin = match sh.current_ord {
                EventOrd::Pre(s) => Lineage {
                    gen_time: self.now,
                    depth: 1,
                    anchor: s,
                    call: sh.current_calls,
                },
                EventOrd::Post(pl, _, _) => Lineage {
                    gen_time: self.now,
                    // A generator scheduled at this very instant sits `depth`
                    // generations into the instant's cascade; one scheduled
                    // earlier is generation zero here.
                    depth: if pl.gen_time == self.now {
                        pl.depth.saturating_add(1)
                    } else {
                        1
                    },
                    anchor: pl.anchor,
                    call: sh.current_calls,
                },
            };
            sh.current_calls += 1;
            sh.ord_map.insert(seq, EventOrd::Post(lin, sh.domain, seq));
        }
        self.queue.schedule(time, seq, kind);
        seq
    }

    fn ensure_routes(&mut self) {
        if self.routes_dirty {
            self.routes = RoutingTable::compute(self.nodes.len(), &self.edges);
            self.multicast.invalidate();
            self.routes_dirty = false;
        }
    }

    /// Routes a packet that is present at `node` (either just sent by a local
    /// agent or arriving from a link), replicating it onto links as needed.
    ///
    /// A packet can match **at most one** local agent — unicast names a
    /// single port, and multicast subscribers on one node are distinguished
    /// by their (unique) port, of which the destination names one — so the
    /// local delivery, if any, is returned instead of being pushed through
    /// the event heap.  The dispatcher invokes the agent inline, which saves
    /// one heap push+pop per delivered packet on the fan-out hot path;
    /// `Context::send` still enqueues it (the sending agent is detached from
    /// its slot while its callback runs, so a send-to-self cannot be
    /// dispatched inline).
    #[must_use]
    fn route_packet(&mut self, node: NodeId, packet: Packet) -> Option<(AgentId, Packet)> {
        self.ensure_routes();
        match packet.dst {
            Dest::Unicast(addr) => {
                if addr.node == node {
                    match self.nodes[node.0].agents.get(&addr.port) {
                        Some(&agent) => return Some((agent, packet)),
                        None => self.stats.add("drops.no_listener", 1.0),
                    }
                } else {
                    match self.routes.next_hop(node, addr.node) {
                        Some(link) => self.offer_to_link(link, packet),
                        None => self.stats.add("drops.no_route", 1.0),
                    }
                }
                None
            }
            Dest::Multicast { group, port } => match self.fanout_mode {
                FanoutMode::Shared => {
                    // Replicate along the distribution tree rooted at the
                    // source; the out-link slice is shared, not copied, and
                    // every replica shares the one `PacketData`.
                    let out = Arc::clone(
                        self.multicast
                            .tree(group, packet.src.node, &self.routes)
                            .out_links(node),
                    );
                    for &link in out.iter() {
                        self.offer_to_link(link, packet.clone());
                    }
                    // Local delivery: scan the sorted cached subscriber list
                    // for the (unique) agent bound to the destination port —
                    // no allocation, no sort.
                    let subs = self.nodes[node.0].subscriber_cache.get(&group)?;
                    let agent = subs.iter().copied().find(|a| {
                        let addr = self.agent_addrs[a.0];
                        addr.port == port && addr != packet.src
                    })?;
                    Some((agent, packet))
                }
                FanoutMode::CloneReference => {
                    // Historical behaviour: copy the out-link list and hand
                    // every replica its own `PacketData`, collect + sort the
                    // subscribers per send, and use the rebuild-from-scratch
                    // reference tree.
                    let out: Vec<LinkId> = {
                        let tree = self
                            .multicast
                            .ref_tree(group, packet.src.node, &self.routes);
                        tree.out_links(node).to_vec()
                    };
                    for link in out {
                        self.offer_to_link(link, packet.deep_clone());
                    }
                    let local: Vec<AgentId> = self.nodes[node.0]
                        .subscriptions
                        .get(&group)
                        .map(|set| {
                            let mut v: Vec<AgentId> = set
                                .iter()
                                .copied()
                                .filter(|a| {
                                    let addr = self.agent_addrs[a.0];
                                    addr.port == port && addr != packet.src
                                })
                                .collect();
                            v.sort();
                            v
                        })
                        .unwrap_or_default();
                    local.first().map(|&agent| (agent, packet.deep_clone()))
                }
            },
        }
    }

    fn offer_to_link(&mut self, link_id: LinkId, packet: Packet) {
        let now = self.now;
        // Sharded runs: offers into a cut link are handed to the owning
        // downstream domain, which replays them — in this exact order — as
        // `LinkIngress` events at the next window boundary.
        if let Some(sh) = self.shard.as_mut() {
            if sh.link_owner[link_id.0] != sh.domain {
                // The offer carries the carrier dispatch's own queue
                // position: single-threaded, the link mutation happens at
                // exactly that point in the interleaving.
                sh.outbox.push((now, link_id, packet, sh.current_ord));
                return;
            }
        }
        // Loss/RED randomness comes from the link's own stream.
        match self.links[link_id.0].offer(packet, now) {
            LinkAccept::Accepted {
                tx_complete_at: Some(t),
            } => {
                self.push_event(t, EventKind::LinkTxComplete { link: link_id });
            }
            LinkAccept::Accepted {
                tx_complete_at: None,
            } => {}
            LinkAccept::Dropped => self.stats.add("drops.link", 1.0),
        }
    }

    /// Subscribes `agent` (on `node`) to `group`, maintaining both the
    /// subscription set and the sorted cache, and propagating the node-level
    /// membership to the multicast state.
    fn subscribe(&mut self, agent: AgentId, node: NodeId, group: GroupId) {
        // Cached trees are updated in place on membership changes, so they
        // must be built against the *current* topology: settle any pending
        // topology change (which drops stale trees) before touching them —
        // e.g. a node added after a tree was cached would otherwise be
        // out of bounds for the tree's parent table.
        self.ensure_routes();
        let node_state = &mut self.nodes[node.0];
        if !node_state
            .subscriptions
            .entry(group)
            .or_default()
            .insert(agent)
        {
            return; // already subscribed
        }
        let cache = node_state.subscriber_cache.entry(group).or_default();
        let list = Arc::make_mut(cache);
        if let Err(pos) = list.binary_search(&agent) {
            list.insert(pos, agent);
        }
        if !self.multicast.is_member(group, node) {
            let time = self.now;
            if let Some(sh) = self.shard.as_mut() {
                debug_assert_eq!(
                    sh.node_domain[node.0], sh.domain,
                    "foreign subscribe in shard"
                );
                sh.deltas.push(MembershipDelta {
                    time,
                    ord: sh.current_ord,
                    group,
                    node,
                    join: true,
                });
            }
        }
        self.multicast.join(group, node);
        self.stats.add("multicast.agent_joins", 1.0);
        // Per-group (per-session) counter, so multi-session workloads can
        // attribute membership churn to individual sessions.
        let keys = Self::group_keys(&mut self.group_stat_keys, group);
        self.stats.add(&keys.0, 1.0);
    }

    /// The cached `(joins, leaves)` counter names of a group.
    fn group_keys(
        cache: &mut BTreeMap<GroupId, (String, String)>,
        group: GroupId,
    ) -> &(String, String) {
        cache.entry(group).or_insert_with(|| {
            (
                format!("multicast.agent_joins.group.{}", group.0),
                format!("multicast.agent_leaves.group.{}", group.0),
            )
        })
    }

    /// Removes `agent`'s subscription to `group`; the node leaves the group
    /// once no agent on it remains subscribed.
    fn unsubscribe(&mut self, agent: AgentId, node: NodeId, group: GroupId) {
        // See `subscribe`: in-place tree maintenance requires the topology
        // to be settled first.
        self.ensure_routes();
        let node_state = &mut self.nodes[node.0];
        let Some(set) = node_state.subscriptions.get_mut(&group) else {
            return;
        };
        if !set.remove(&agent) {
            return; // was not subscribed
        }
        if let Some(cache) = node_state.subscriber_cache.get_mut(&group) {
            let list = Arc::make_mut(cache);
            if let Ok(pos) = list.binary_search(&agent) {
                list.remove(pos);
            }
        }
        if set.is_empty() {
            if self.multicast.is_member(group, node) {
                let time = self.now;
                if let Some(sh) = self.shard.as_mut() {
                    sh.deltas.push(MembershipDelta {
                        time,
                        ord: sh.current_ord,
                        group,
                        node,
                        join: false,
                    });
                }
            }
            self.multicast.leave(group, node);
        }
        self.stats.add("multicast.agent_leaves", 1.0);
        let keys = Self::group_keys(&mut self.group_stat_keys, group);
        self.stats.add(&keys.1, 1.0);
    }

    fn handle_link_tx_complete(&mut self, link_id: LinkId) {
        let now = self.now;
        let mut out = std::mem::take(&mut self.tx_scratch);
        let dropped_before = self.links[link_id.0].stats.dropped_queue;
        let next = self.links[link_id.0].tx_complete(now, &mut out);
        // CoDel drops packets at dequeue time; fold those into the same
        // world-level counter that ingress drops (loss model, full queue,
        // RED early detection) feed.
        let dequeue_drops = self.links[link_id.0].stats.dropped_queue - dropped_before;
        if dequeue_drops > 0 {
            self.stats.add("drops.link", dequeue_drops as f64);
        }
        let delay = self.links[link_id.0].delay;
        let to = self.links[link_id.0].to;
        // On drop-tail links the whole queue drains as one burst: every
        // future arrival is scheduled here and a single `LinkTxComplete`
        // marks the end of the burst, instead of one event per packet.
        // A link always lives in its downstream node's domain (see
        // `try_run_sharded`), so the arrivals it produces are local by
        // construction — cross-domain traffic was already handed off at
        // offer time.
        debug_assert!(
            self.shard
                .as_ref()
                .is_none_or(|sh| sh.node_domain[to.0] == sh.domain),
            "link delivering to a foreign node in a sharded run"
        );
        for (packet, completes_at) in out.drain(..) {
            let arrives_at = completes_at + delay;
            self.push_event(arrives_at, EventKind::NodeArrival { node: to, packet });
        }
        self.tx_scratch = out;
        if let Some(t) = next {
            self.push_event(t, EventKind::LinkTxComplete { link: link_id });
        }
    }
}

/// The handle agents use to interact with the simulation from inside their
/// callbacks.
pub struct Context<'a> {
    world: &'a mut World,
    agent: AgentId,
    addr: Address,
}

impl Context<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Address of the agent being invoked.
    pub fn addr(&self) -> Address {
        self.addr
    }

    /// Id of the agent being invoked.
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// Sends a packet.  The packet's `id` and `sent_at` fields are stamped by
    /// the simulator; the source address is forced to this agent's address.
    pub fn send(&mut self, mut packet: Packet) {
        let id = self.world.next_packet;
        self.world.next_packet += self.world.id_stride;
        packet.stamp(id, self.addr, self.world.now);
        let node = self.addr.node;
        if let Some((agent, packet)) = self.world.route_packet(node, packet) {
            // Send-to-local-agent (possibly self): deliver through the event
            // queue — the sender's own slot is empty while its callback runs.
            self.world
                .push_event(self.world.now, EventKind::Deliver { agent, packet });
        }
    }

    /// Schedules a timer `delay` seconds from now; `token` is passed back to
    /// [`Agent::on_timer`].
    pub fn schedule(&mut self, delay: f64, token: u64) -> TimerId {
        assert!(delay >= 0.0, "timer delay must be non-negative");
        let timer = TimerId(self.world.next_timer);
        self.world.next_timer += self.world.id_stride;
        let at = self.world.now + delay;
        let seq = self.world.push_event(
            at,
            EventKind::Timer {
                agent: self.agent,
                token,
                timer,
            },
        );
        self.world.pending_timers.insert(timer.0, (at, seq));
        timer
    }

    /// Cancels a previously scheduled timer (no-op if it already fired or
    /// was already cancelled).  The timer's queue entry is removed in place
    /// (calendar scheduler) or tombstoned until it surfaces (heap
    /// scheduler); either way cancellation state stays bounded by the number
    /// of outstanding timers, even across unbounded churn.
    pub fn cancel(&mut self, timer: TimerId) {
        if let Some((time, seq)) = self.world.pending_timers.remove(&timer.0) {
            self.world.queue.cancel(time, seq);
            // Keep the sharded position map bounded under timer churn: a
            // cancelled event never dispatches, so its entry would leak.
            if let Some(sh) = self.world.shard.as_mut() {
                sh.ord_map.remove(&seq);
            }
        }
    }

    /// Subscribes this agent (and its node) to a multicast group.
    pub fn join_group(&mut self, group: GroupId) {
        let node = self.addr.node;
        self.world.subscribe(self.agent, node, group);
    }

    /// Unsubscribes this agent from a multicast group.  The node leaves the
    /// group once no agent on it remains subscribed.
    pub fn leave_group(&mut self, group: GroupId) {
        let node = self.addr.node;
        self.world.unsubscribe(self.agent, node, group);
    }

    /// Shared statistics registry.
    pub fn stats(&mut self) -> &mut StatsRegistry {
        &mut self.world.stats
    }

    /// A uniform random sample in `[0, 1)` from the simulation-global RNG.
    ///
    /// Agents that need heavier random machinery should own their own
    /// deterministic RNG; this is a convenience for one-off draws.  Note
    /// that the stream is **shared between all agents**: draws here
    /// interleave in event order, so adding or reordering agents that use
    /// `uniform` perturbs each other's samples (links are immune — their
    /// loss/RED draws come from private per-link streams).
    pub fn uniform(&mut self) -> f64 {
        self.world.rng.gen()
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    world: World,
    agents: Vec<Option<Box<dyn Agent>>>,
    /// Requested parallel domain count (1 = the single-queue path).  The
    /// effective count per `run_until` can be lower when the topology does
    /// not decompose; it can never change behaviour — sharded runs are
    /// digest-identical to `domains = 1`.
    domains: usize,
    /// Events processed per domain during the most recent sharded
    /// `run_until` (empty when the last run was single-threaded).
    last_domain_events: Vec<u64>,
}

// The parallel sweep runner builds and runs simulations on worker threads;
// this assertion keeps every field of the simulator (agents included, via
// the `Send` supertrait on [`Agent`]) transferable across threads.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
};

/// A snapshot of the event-core bookkeeping, exposed for tests and
/// diagnostics (see [`Simulator::scheduler_diagnostics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerDiagnostics {
    /// Which scheduler implementation is active.
    pub scheduler: SchedulerKind,
    /// Live (scheduled, not yet dispatched or cancelled) events.
    pub queued_events: usize,
    /// Cancelled entries still stored inside the queue (heap tombstones;
    /// always 0 for the calendar scheduler).  Bounded by `queued_events` +
    /// tombstones at all times — the unbounded-growth regression test pins
    /// this.
    pub queue_tombstones: usize,
    /// Timers scheduled and not yet fired or cancelled.
    pub pending_timers: usize,
}

impl Simulator {
    /// Creates an empty simulation with a deterministic RNG seed.
    ///
    /// The event scheduler defaults to [`SchedulerKind::Heap`]; the
    /// `TFMCC_SCHEDULER` environment variable (`heap` / `calendar`)
    /// overrides the default so whole experiment runs can be switched
    /// without code changes.  Use [`Simulator::with_scheduler`] to pin one
    /// explicitly.
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, SchedulerKind::resolve())
    }

    /// Creates an empty simulation with an explicit event scheduler,
    /// ignoring the `TFMCC_SCHEDULER` environment variable.  The parallel
    /// domain count still comes from `TFMCC_DOMAINS` (default 1) so the
    /// whole test suite can be soaked under sharded execution; use
    /// [`Simulator::with_domains`] or [`Simulator::set_domains`] to pin it.
    pub fn with_scheduler(seed: u64, scheduler: SchedulerKind) -> Self {
        Simulator {
            world: World::new(seed, scheduler),
            agents: Vec::new(),
            domains: domains_from_env(),
            last_domain_events: Vec::new(),
        }
    }

    /// Creates an empty simulation pinned to `domains` parallel bottleneck
    /// domains (1 = the classic single-queue path), ignoring the
    /// `TFMCC_DOMAINS` environment variable.  Sharded execution is
    /// digest-identical to the single-threaded run for any domain count;
    /// topologies that do not decompose fall back to one queue silently.
    pub fn with_domains(seed: u64, domains: usize) -> Self {
        let mut sim = Self::new(seed);
        sim.set_domains(domains);
        sim
    }

    /// Sets the parallel domain count for subsequent `run_until` calls.
    pub fn set_domains(&mut self, domains: usize) {
        assert!(domains >= 1, "domain count must be at least 1");
        self.domains = domains;
    }

    /// The requested parallel domain count.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Events processed per domain during the most recent sharded
    /// `run_until` (empty if the last run used the single-queue path).
    pub fn domain_event_counts(&self) -> &[u64] {
        &self.last_domain_events
    }

    /// Switches the event scheduler, migrating any queued events.  Both
    /// schedulers pop in identical `(time, seq)` order, so switching — even
    /// mid-run — does not change the simulation's behaviour.
    pub fn set_scheduler(&mut self, scheduler: SchedulerKind) {
        if scheduler == self.world.scheduler {
            return;
        }
        let mut queue = scheduler.build();
        while let Some((time, seq, kind)) = self.world.queue.pop() {
            queue.schedule(time, seq, kind);
        }
        self.world.queue = queue;
        self.world.scheduler = scheduler;
    }

    /// The active event scheduler.
    pub fn scheduler(&self) -> SchedulerKind {
        self.world.scheduler
    }

    /// Event-core bookkeeping counters, for tests and diagnostics.
    pub fn scheduler_diagnostics(&self) -> SchedulerDiagnostics {
        SchedulerDiagnostics {
            scheduler: self.world.scheduler,
            queued_events: self.world.queue.len(),
            queue_tombstones: self.world.queue.tombstones(),
            pending_timers: self.world.pending_timers.len(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Number of events processed so far.  Cancelled timers are removed (or
    /// tombstoned) inside the event queue and are never dispatched, so they
    /// do not count.
    pub fn events_processed(&self) -> u64 {
        self.world.events_processed
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.world.nodes.len());
        self.world.nodes.push(Node {
            name: name.to_string(),
            ..Node::default()
        });
        self.world.routes_dirty = true;
        id
    }

    /// Adds a unidirectional link and returns its id.
    ///
    /// `bandwidth` is in bytes per second, `delay` in seconds.  Both must be
    /// positive and finite — a zero-bandwidth or zero-delay link silently
    /// degenerates the simulation (infinite serialization time, zero-cost
    /// routing metric), so such parameters are rejected here with a clear
    /// panic instead.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth: f64,
        delay: f64,
        discipline: QueueDiscipline,
    ) -> LinkId {
        assert!(from.0 < self.world.nodes.len(), "unknown from node");
        assert!(to.0 < self.world.nodes.len(), "unknown to node");
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "link bandwidth must be a positive, finite number of bytes/s, got {bandwidth}"
        );
        assert!(
            delay.is_finite() && delay > 0.0,
            "link delay must be a positive, finite number of seconds, got {delay}"
        );
        let id = LinkId(self.world.links.len());
        let link_seed = stream_seed(self.world.seed, id.0 as u64);
        self.world.links.push(Link::new(
            id, from, to, bandwidth, delay, discipline, link_seed,
        ));
        self.world.edges.push(Edge {
            link: id,
            from,
            to,
            delay,
        });
        self.world.routes_dirty = true;
        id
    }

    /// Adds a pair of unidirectional links (one per direction) with identical
    /// parameters; returns `(a_to_b, b_to_a)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: f64,
        delay: f64,
        discipline: QueueDiscipline,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, bandwidth, delay, discipline.clone());
        let ba = self.add_link(b, a, bandwidth, delay, discipline);
        (ab, ba)
    }

    /// Sets the random-loss model of a link.  Rejects invalid parameters
    /// (NaN or out-of-range drop probability) with a clear panic.
    pub fn set_link_loss(&mut self, link: LinkId, loss: LossModel) {
        loss.validate();
        self.world.links[link.0].loss = loss;
    }

    /// Changes the propagation delay of a link at runtime (used by the
    /// RTT-responsiveness experiments).  Routing is recomputed because the
    /// delay is the routing metric.
    pub fn set_link_delay(&mut self, link: LinkId, delay: f64) {
        assert!(
            delay.is_finite() && delay > 0.0,
            "link delay must be a positive, finite number of seconds, got {delay}"
        );
        self.world.links[link.0].delay = delay;
        // `add_link` pushes one edge per link in the same order, so the edge
        // list is indexed by LinkId — no scan needed.
        let edge = &mut self.world.edges[link.0];
        debug_assert_eq!(edge.link, link, "edge list out of sync with links");
        edge.delay = delay;
        self.world.routes_dirty = true;
    }

    /// Per-link statistics.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.world.links[link.0].stats
    }

    /// Read-only access to a link (bandwidth, delay, loss model, counters).
    pub fn link(&self, link: LinkId) -> &Link {
        &self.world.links[link.0]
    }

    /// Current queue length of a link.
    pub fn link_queue_len(&self, link: LinkId) -> usize {
        self.world.links[link.0].queue_len()
    }

    /// Attaches an agent to `(node, port)`; its [`Agent::start`] runs at the
    /// current simulation time (before any later event).
    pub fn add_agent(&mut self, node: NodeId, port: Port, agent: Box<dyn Agent>) -> AgentId {
        assert!(node.0 < self.world.nodes.len(), "unknown node");
        let id = AgentId(self.agents.len());
        let previous = self.world.nodes[node.0].agents.insert(port, id);
        assert!(
            previous.is_none(),
            "port {port:?} on node {node:?} is already bound"
        );
        self.agents.push(Some(agent));
        self.world.agent_addrs.push(Address::new(node, port));
        self.world
            .push_event(self.world.now, EventKind::AgentStart { agent: id });
        id
    }

    /// Address of an agent.
    pub fn agent_addr(&self, agent: AgentId) -> Address {
        self.world.agent_addrs[agent.0]
    }

    /// Borrows an agent downcast to its concrete type.
    pub fn agent<T: Agent>(&self, agent: AgentId) -> Option<&T> {
        self.agents[agent.0]
            .as_ref()
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutably borrows an agent downcast to its concrete type.
    pub fn agent_mut<T: Agent>(&mut self, agent: AgentId) -> Option<&mut T> {
        self.agents[agent.0]
            .as_mut()
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
    }

    /// Shared statistics registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.world.stats
    }

    /// Mutable access to the statistics registry (for experiment setup).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.world.stats
    }

    /// Subscribes an agent to a multicast group from outside the simulation
    /// (equivalent to the agent calling [`Context::join_group`] itself).
    pub fn join_group(&mut self, agent: AgentId, group: GroupId) {
        let addr = self.world.agent_addrs[agent.0];
        self.world.subscribe(agent, addr.node, group);
    }

    /// Removes an agent's subscription from outside the simulation
    /// (equivalent to the agent calling [`Context::leave_group`] itself).
    pub fn leave_group(&mut self, agent: AgentId, group: GroupId) {
        let addr = self.world.agent_addrs[agent.0];
        self.world.unsubscribe(agent, addr.node, group);
    }

    /// Selects how multicast packets are replicated.  The default,
    /// [`FanoutMode::Shared`], is the zero-copy path;
    /// [`FanoutMode::CloneReference`] replays the historical clone-based
    /// behaviour for equivalence tests and benchmarks.
    pub fn set_fanout_mode(&mut self, mode: FanoutMode) {
        self.world.fanout_mode = mode;
    }

    /// The current multicast replication mode.
    pub fn fanout_mode(&self) -> FanoutMode {
        self.world.fanout_mode
    }

    /// Runs the simulation until the event queue is empty or `until` is
    /// reached (whichever comes first).  Time is advanced to `until`.
    ///
    /// With a domain count above 1 (see [`Simulator::with_domains`] /
    /// `TFMCC_DOMAINS`) and a topology that decomposes into bottleneck
    /// domains, the run is sharded across one worker thread per domain with
    /// conservative synchronization; the result is digest-identical to the
    /// single-queue path.
    pub fn run_until(&mut self, until: SimTime) {
        if self.domains > 1 && self.try_run_sharded(until) {
            return;
        }
        self.last_domain_events.clear();
        while let Some(head_time) = self.world.queue.peek_time() {
            if head_time > until {
                break;
            }
            let (time, _seq, kind) = self.world.queue.pop().expect("peeked event exists");
            debug_assert!(
                time >= self.world.now,
                "event queue popped backward in time: {time} after {}",
                self.world.now
            );
            self.world.now = time;
            self.world.events_processed += 1;
            self.dispatch(kind);
        }
        if self.world.now < until {
            self.world.now = until;
        }
    }

    /// Runs the simulation for `duration` seconds of simulated time.
    pub fn run_for(&mut self, duration: f64) {
        let until = self.world.now + duration;
        self.run_until(until);
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::AgentStart { agent } => {
                self.with_agent(agent, |a, ctx| a.start(ctx));
            }
            EventKind::Timer {
                agent,
                token,
                timer,
            } => {
                // Cancelled timers never surface from the queue; this timer
                // is live, so retire its pending-table entry and fire it.
                self.world.pending_timers.remove(&timer.0);
                self.with_agent(agent, |a, ctx| a.on_timer(ctx, token));
            }
            EventKind::Deliver { agent, packet } => {
                self.with_agent(agent, |a, ctx| a.on_packet(ctx, packet));
            }
            EventKind::NodeArrival { node, packet } => {
                // Inline local delivery: a routed packet matches at most one
                // agent, so no heap round-trip is needed.
                if let Some((agent, packet)) = self.world.route_packet(node, packet) {
                    self.with_agent(agent, |a, ctx| a.on_packet(ctx, packet));
                }
            }
            EventKind::LinkTxComplete { link } => {
                self.world.handle_link_tx_complete(link);
            }
            EventKind::LinkIngress { link, packet } => {
                // Replayed cut-link offer: by now the link is local, so this
                // runs the exact enqueue the upstream router skipped.
                self.world.offer_to_link(link, packet);
            }
        }
    }

    fn with_agent<F>(&mut self, agent: AgentId, f: F)
    where
        F: FnOnce(&mut Box<dyn Agent>, &mut Context<'_>),
    {
        let Some(mut boxed) = self.agents[agent.0].take() else {
            return;
        };
        let addr = self.world.agent_addrs[agent.0];
        {
            let mut ctx = Context {
                world: &mut self.world,
                agent,
                addr,
            };
            f(&mut boxed, &mut ctx);
        }
        self.agents[agent.0] = Some(boxed);
    }
}

/// RNG stream index base for per-domain streams — far above any link index,
/// so domain streams never collide with the per-link streams derived from
/// the same root seed.
const DOMAIN_RNG_STREAM: u64 = 1 << 32;

/// A cross-domain packet handoff in flight between two shards: an offer
/// into a cut link, waiting to be replayed in the link's owning domain.
struct Handoff {
    time: SimTime,
    src_domain: u32,
    src_idx: u64,
    link: LinkId,
    packet: Packet,
    /// Queue position of the dispatch that made the offer, preserved so the
    /// replayed ingress event competes with membership deltas at exactly
    /// the carrier's place in the single-queue interleaving.
    ord: EventOrd,
}

/// Schedules one domain's accumulated handoffs as [`EventKind::LinkIngress`]
/// events, in deterministic `(time, origin domain, origin order)` order.
fn deliver_inbox(cell: &std::sync::Mutex<Simulator>, inbox: &mut Vec<Handoff>) {
    inbox.sort_by_key(|h| (h.time, h.src_domain, h.src_idx));
    let mut sim = cell.lock().expect("shard lock");
    for h in inbox.drain(..) {
        let sh = sim.world.shard.as_mut().expect("shard ctx");
        let seq = sh.ingress_seq;
        sh.ingress_seq += 1;
        sh.ord_map.insert(seq, h.ord);
        sim.world.queue.schedule(
            h.time,
            seq,
            EventKind::LinkIngress {
                link: h.link,
                packet: h.packet,
            },
        );
    }
}

/// Inert stand-in occupying a moved-out [`Link`] slot during a sharded run.
fn placeholder_link(id: LinkId) -> Link {
    Link::new(
        id,
        NodeId(0),
        NodeId(0),
        1.0,
        1.0,
        QueueDiscipline::drop_tail(1),
        0,
    )
}

impl World {
    /// Applies queued remote membership deltas strictly ordered before
    /// `upto = (time, ord)` (all of them for `None`) to this shard's
    /// membership replica.  The strict comparison mirrors single-threaded
    /// dispatch: a transition performed by the event at queue position `p`
    /// is visible exactly to the events popped after it, i.e. those with a
    /// greater `(time, ord)`.
    fn apply_pending_deltas(&mut self, upto: Option<(SimTime, EventOrd)>) {
        let Some(sh) = self.shard.as_mut() else {
            return;
        };
        if sh.pending_deltas.is_empty() {
            return;
        }
        let due: Vec<MembershipDelta> = match upto {
            Some(bound) => {
                let n = sh
                    .pending_deltas
                    .iter()
                    .take_while(|d| (d.time, d.ord) < bound)
                    .count();
                sh.pending_deltas.drain(..n).collect()
            }
            None => sh.pending_deltas.drain(..).collect(),
        };
        for d in due {
            if d.join {
                self.multicast.join(d.group, d.node);
            } else {
                self.multicast.leave(d.group, d.node);
            }
        }
    }
}

impl Simulator {
    /// Processes this shard's events up to `bound` (exclusive, or inclusive
    /// when `inclusive` — the final window of a `run_until`), interleaving
    /// remote membership deltas by `(time, ord)`.
    fn run_window(&mut self, bound: SimTime, inclusive: bool) {
        while let Some(head) = self.world.queue.peek_time() {
            if head > bound || (!inclusive && head == bound) {
                break;
            }
            let (time, seq, kind) = self.world.queue.pop().expect("peeked event exists");
            // Events of a *cut* link (owned here, fed from another domain)
            // are processed one window behind: beyond the safe horizon an
            // offer with an earlier timestamp may still be in flight from
            // the upstream domain, and the link must see its event stream
            // in time order.
            if let Some(sh) = self.world.shard.as_ref() {
                let defer = match &kind {
                    EventKind::LinkTxComplete { link } | EventKind::LinkIngress { link, .. } => {
                        time > sh.cut_safe
                            && sh.node_domain[self.world.links[link.0].from.0] != sh.domain
                    }
                    _ => false,
                };
                if defer {
                    let sh = self.world.shard.as_mut().expect("shard ctx");
                    sh.held.push((time, seq, kind));
                    continue;
                }
            }
            // Resolve the event's global queue position: pre-split events
            // *are* their sequence number; post-split and replayed-ingress
            // events look theirs up from the position map (recorded at
            // scheduling / handoff time).
            let ord = if let Some(sh) = self.world.shard.as_mut() {
                let ord = if seq < INGRESS_SEQ_BASE {
                    EventOrd::Pre(seq)
                } else {
                    sh.ord_map
                        .remove(&seq)
                        .expect("post-split event has a recorded queue position")
                };
                sh.current_ord = ord;
                sh.current_calls = 0;
                Some(ord)
            } else {
                None
            };
            self.world.apply_pending_deltas(ord.map(|o| (time, o)));
            self.world.now = time;
            self.world.events_processed += 1;
            self.dispatch(kind);
        }
        // Deltas still pending here came from stages that already ran this
        // window, so they are timestamped inside it: fold them in before the
        // window closes so next window's replica state is complete.
        self.world.apply_pending_deltas(None);
    }

    /// Attempts to run `[now, until]` sharded across bottleneck domains.
    /// Returns `false` (leaving the simulation untouched) when the topology
    /// does not decompose, so `run_until` falls back to the single-queue
    /// path.  See `DESIGN.md`, "Parallel domain sharding".
    fn try_run_sharded(&mut self, until: SimTime) -> bool {
        if self.world.queue.is_empty() {
            return false;
        }
        // Settle any pending topology change first: the plan, the shard
        // routing tables and the membership replicas must all see the same
        // final topology.
        self.world.ensure_routes();
        let weights: Vec<u64> = self
            .world
            .nodes
            .iter()
            .map(|n| n.agents.len() as u64)
            .collect();
        let Some(plan) = partition(
            self.world.nodes.len(),
            &self.world.edges,
            &weights,
            self.domains,
        ) else {
            return false;
        };
        let DomainPlan {
            domains: k,
            lookahead,
            node_domain,
            stages,
        } = plan;
        let node_domain = Arc::new(node_domain);
        // A link belongs to its *downstream* node's domain.  For intra-domain
        // links the two sides agree; for cut links downstream ownership keeps
        // the entire serialization/queue/propagation pipeline — and its event
        // load — inside the receiving domain, so a hub fanning out to 10⁵
        // legs costs the hub's domain one routing event per packet, not one
        // `LinkTxComplete` per leg.  The upstream side hands the bare offer
        // across the boundary (see `offer_to_link`).
        let link_owner: Arc<Vec<u32>> = Arc::new(
            self.world
                .links
                .iter()
                .map(|l| node_domain[l.to.0])
                .collect(),
        );

        let shards = self.split_into_shards(k, &node_domain, &link_owner);
        let (shards, run_deltas) =
            run_sharded_windows(shards, &stages, &link_owner, lookahead, until);
        self.merge_shards(shards, &node_domain, &link_owner, run_deltas, until);
        true
    }

    /// Builds one shard per domain and moves every domain-owned piece of the
    /// master state (nodes, links, agents, queued events, pending timers)
    /// into it.  Each shard is a full [`Simulator`] whose world spans the
    /// whole topology — foreign slots hold inert placeholders — so the
    /// existing dispatch machinery runs unchanged.
    fn split_into_shards(
        &mut self,
        k: usize,
        node_domain: &Arc<Vec<u32>>,
        link_owner: &Arc<Vec<u32>>,
    ) -> Vec<Simulator> {
        let n_nodes = self.world.nodes.len();
        let n_links = self.world.links.len();
        let n_agents = self.agents.len();
        let mut shards: Vec<Simulator> = (0..k)
            .map(|d| {
                let mut w = World::new(self.world.seed, self.world.scheduler);
                w.now = self.world.now;
                w.seq = self.world.seq.max(SHARD_LOCAL_SEQ_BASE);
                w.id_stride = k as u64;
                w.next_timer = self.world.next_timer + d as u64;
                w.next_packet = self.world.next_packet + d as u64;
                w.rng = SmallRng::seed_from_u64(stream_seed(w.seed, DOMAIN_RNG_STREAM + d as u64));
                w.edges = self.world.edges.clone();
                w.agent_addrs = self.world.agent_addrs.clone();
                w.fanout_mode = self.world.fanout_mode;
                w.nodes = (0..n_nodes).map(|_| Node::default()).collect();
                w.links = (0..n_links).map(|i| placeholder_link(LinkId(i))).collect();
                // Node-level membership replica: every shard computes
                // distribution trees over the full member set, wherever the
                // members live.
                for (group, members) in self.world.multicast.group_members() {
                    for &m in members {
                        w.multicast.join(group, m);
                    }
                }
                w.shard = Some(ShardCtx {
                    domain: d as u32,
                    node_domain: Arc::clone(node_domain),
                    link_owner: Arc::clone(link_owner),
                    outbox: Vec::new(),
                    current_ord: EventOrd::Pre(0),
                    current_calls: 0,
                    ord_map: BTreeMap::new(),
                    deltas: Vec::new(),
                    pending_deltas: Vec::new(),
                    held: Vec::new(),
                    cut_safe: self.world.now,
                    ingress_seq: INGRESS_SEQ_BASE,
                });
                Simulator {
                    world: w,
                    agents: (0..n_agents).map(|_| None).collect(),
                    domains: 1,
                    last_domain_events: Vec::new(),
                }
            })
            .collect();

        for (n, &d) in node_domain.iter().enumerate() {
            shards[d as usize].world.nodes[n] = std::mem::take(&mut self.world.nodes[n]);
        }
        for (l, &d) in link_owner.iter().enumerate() {
            shards[d as usize].world.links[l] =
                std::mem::replace(&mut self.world.links[l], placeholder_link(LinkId(l)));
        }
        for a in 0..n_agents {
            let d = node_domain[self.world.agent_addrs[a].node.0] as usize;
            shards[d].agents[a] = self.agents[a].take();
        }
        while let Some((time, seq, kind)) = self.world.queue.pop() {
            let d = match &kind {
                EventKind::AgentStart { agent }
                | EventKind::Timer { agent, .. }
                | EventKind::Deliver { agent, .. } => {
                    node_domain[self.world.agent_addrs[agent.0].node.0] as usize
                }
                EventKind::NodeArrival { node, .. } => node_domain[node.0] as usize,
                EventKind::LinkTxComplete { link } | EventKind::LinkIngress { link, .. } => {
                    link_owner[link.0] as usize
                }
            };
            if let EventKind::Timer { timer, .. } = &kind {
                if let Some(entry) = self.world.pending_timers.remove(&timer.0) {
                    shards[d].world.pending_timers.insert(timer.0, entry);
                }
            }
            // Original sequence numbers are preserved so same-time events
            // that stayed in one domain keep their exact relative order.
            shards[d].world.queue.schedule(time, seq, kind);
        }
        debug_assert!(
            self.world.pending_timers.is_empty(),
            "a pending timer had no queue event"
        );
        shards
    }

    /// Moves every shard's state back into the master and re-establishes the
    /// single-queue invariants: leftover future events are merged in
    /// `(time, domain, shard seq)` order with fresh master sequence numbers,
    /// pending timers are re-pointed at those, statistics registries are
    /// absorbed, and the run's membership transitions are replayed into the
    /// master multicast state in the deterministic global delta order.
    fn merge_shards(
        &mut self,
        mut shards: Vec<Simulator>,
        node_domain: &Arc<Vec<u32>>,
        link_owner: &[u32],
        run_deltas: Vec<(u32, u64, MembershipDelta)>,
        until: SimTime,
    ) {
        self.last_domain_events = shards.iter().map(|s| s.world.events_processed).collect();
        for (n, &d) in node_domain.iter().enumerate() {
            self.world.nodes[n] = std::mem::take(&mut shards[d as usize].world.nodes[n]);
        }
        for (l, &d) in link_owner.iter().enumerate() {
            self.world.links[l] = std::mem::replace(
                &mut shards[d as usize].world.links[l],
                placeholder_link(LinkId(l)),
            );
        }
        for a in 0..self.agents.len() {
            let d = node_domain[self.world.agent_addrs[a].node.0] as usize;
            self.agents[a] = shards[d].agents[a].take();
        }

        let mut deltas = run_deltas;
        deltas.sort_by_key(|&(domain, idx, d)| (d.time, d.ord, domain, idx));
        for (_, _, d) in deltas {
            if d.join {
                self.world.multicast.join(d.group, d.node);
            } else {
                self.world.multicast.leave(d.group, d.node);
            }
        }

        for shard in &mut shards {
            self.world.events_processed += shard.world.events_processed;
            self.world
                .stats
                .absorb(std::mem::take(&mut shard.world.stats));
        }
        // Restart the master sequence counter from zero: only the leftover
        // events below survive the merge (each re-pushed with a fresh
        // number, and `pending_timers` re-pointed accordingly), so low
        // numbers are free again — and the band layout pre-split <
        // [`INGRESS_SEQ_BASE`] < [`SHARD_LOCAL_SEQ_BASE`] then holds for
        // every subsequent sharded run, not just the first.
        self.world.seq = 0;
        self.world.next_timer = shards
            .iter()
            .map(|s| s.world.next_timer)
            .max()
            .unwrap_or(self.world.next_timer);
        self.world.next_packet = shards
            .iter()
            .map(|s| s.world.next_packet)
            .max()
            .unwrap_or(self.world.next_packet);

        let mut leftovers: Vec<(SimTime, usize, u64, EventKind)> = Vec::new();
        for (d, shard) in shards.iter_mut().enumerate() {
            while let Some((time, seq, kind)) = shard.world.queue.pop() {
                debug_assert!(time > until, "window loop left an event behind");
                leftovers.push((time, d, seq, kind));
            }
            // Deferred cut-link events are replayed into the queue at every
            // window boundary, so none survive the loop — but fold them in
            // if they ever do rather than lose them.
            let sh = shard.world.shard.as_mut().expect("shard ctx");
            debug_assert!(sh.held.is_empty(), "cut-link event left deferred");
            for (time, seq, kind) in sh.held.drain(..) {
                leftovers.push((time, d, seq, kind));
            }
        }
        leftovers.sort_by_key(|&(time, domain, seq, _)| (time, domain, seq));
        self.world.now = until;
        for (time, _d, _seq, kind) in leftovers {
            let timer_id = match &kind {
                EventKind::Timer { timer, .. } => Some(timer.0),
                _ => None,
            };
            let seq = self.world.push_event(time, kind);
            if let Some(id) = timer_id {
                self.world.pending_timers.insert(id, (time, seq));
            }
        }
    }
}

/// Runs the lockstep window loop over the shards: per window, run the stages
/// deepest-first (domains inside a stage in parallel, one scoped worker
/// thread each), route membership deltas to later stages inside the window
/// and to everyone else for the next window, and merge cross-domain packet
/// handoffs in `(time, origin domain, origin order)` order at the window
/// boundary.  Returns the shards plus the run's full delta log.
#[allow(clippy::type_complexity)]
fn run_sharded_windows(
    shards: Vec<Simulator>,
    stages: &[Vec<usize>],
    link_owner: &Arc<Vec<u32>>,
    lookahead: f64,
    until: SimTime,
) -> (Vec<Simulator>, Vec<(u32, u64, MembershipDelta)>) {
    use std::sync::Mutex;

    let k = shards.len();
    // Safe horizon: every cross-domain offer with a timestamp at or below
    // it has been delivered (the upstream domains have all run past it).
    // Grows as the running maximum of window bounds.
    let mut safe = shards
        .first()
        .map(|s| s.world.now)
        .expect("at least one shard");
    let cells: Vec<Mutex<Simulator>> = shards.into_iter().map(Mutex::new).collect();
    let mut inboxes: Vec<Vec<Handoff>> = (0..k).map(|_| Vec::new()).collect();
    let mut run_deltas: Vec<(u32, u64, MembershipDelta)> = Vec::new();
    let mut delta_counters: Vec<u64> = vec![0; k];

    loop {
        // Deliver handoffs that crossed a domain boundary last window, one
        // worker per destination domain.  The sort key makes insertion
        // order — and therefore the fresh local sequence numbers —
        // deterministic for any stage interleaving; the offer times may lie
        // behind the shard's clock (see [`EventKind::LinkIngress`]), which
        // both queue implementations accept.
        std::thread::scope(|scope| {
            let mut busy = inboxes
                .iter_mut()
                .enumerate()
                .filter(|(_, inbox)| !inbox.is_empty());
            let inline = busy.next();
            for (d, inbox) in busy {
                let cell = &cells[d];
                scope.spawn(move || deliver_inbox(cell, inbox));
            }
            if let Some((d, inbox)) = inline {
                deliver_inbox(&cells[d], inbox);
            }
        });

        // The next window starts at the globally earliest pending event —
        // empty stretches of simulated time are skipped in one step, so the
        // window count is bounded by the event count, not by the horizon.
        let mut next: Option<SimTime> = None;
        for cell in &cells {
            let mut sim = cell.lock().expect("shard lock");
            // Publish the new safe horizon and replay cut-link events that
            // were deferred behind the old one, with their original keys.
            let sh = sim.world.shard.as_mut().expect("shard ctx");
            sh.cut_safe = safe;
            let held = std::mem::take(&mut sh.held);
            for (time, seq, kind) in held {
                sim.world.queue.schedule(time, seq, kind);
            }
            if let Some(t) = sim.world.queue.peek_time() {
                next = Some(match next {
                    Some(n) if n <= t => n,
                    _ => t,
                });
            }
        }
        let Some(window_start) = next else { break };
        if window_start > until {
            break;
        }
        let window_end = window_start + lookahead;
        let inclusive = window_end > until;
        let bound = if inclusive { until } else { window_end };
        // Every shard runs through `bound` this window, so next window the
        // horizon is at least `bound` (windows can regress behind it while
        // deferred cut-link chains drain, hence the max).
        safe = safe.max(bound);

        // (producing stage, origin domain, delta) for this window.
        let mut window_deltas: Vec<(usize, u32, MembershipDelta)> = Vec::new();
        for (si, stage) in stages.iter().enumerate() {
            // Hand deltas produced by the deeper stages of this window to
            // this stage before it runs.
            for &d in stage {
                let mut sim = cells[d].lock().expect("shard lock");
                let sh = sim.world.shard.as_mut().expect("shard ctx");
                let mut added = false;
                for &(_, origin, delta) in &window_deltas {
                    if origin != d as u32 {
                        sh.pending_deltas.push(delta);
                        added = true;
                    }
                }
                if added {
                    sh.pending_deltas.sort_by_key(|d| (d.time, d.ord));
                }
            }
            std::thread::scope(|scope| {
                let mut spawned = Vec::new();
                let mut inline: Option<&Mutex<Simulator>> = None;
                for &d in stage {
                    let cell = &cells[d];
                    {
                        let mut sim = cell.lock().expect("shard lock");
                        let head = sim.world.queue.peek_time();
                        let idle = match head {
                            None => true,
                            Some(t) => t > bound || (!inclusive && t == bound),
                        };
                        if idle {
                            continue;
                        }
                    }
                    match inline {
                        None => inline = Some(cell),
                        Some(_) => spawned.push(scope.spawn(move || {
                            let mut sim = cell.lock().expect("shard lock");
                            sim.run_window(bound, inclusive);
                        })),
                    }
                }
                // One busy domain runs on the orchestrator thread itself, so
                // single-domain stages never pay a thread spawn.
                if let Some(cell) = inline {
                    let mut sim = cell.lock().expect("shard lock");
                    sim.run_window(bound, inclusive);
                }
            });
            // Collect what this stage produced.
            for &d in stage {
                let mut sim = cells[d].lock().expect("shard lock");
                let world = &mut sim.world;
                let sh = world.shard.as_mut().expect("shard ctx");
                for delta in sh.deltas.drain(..) {
                    window_deltas.push((si, d as u32, delta));
                    run_deltas.push((d as u32, delta_counters[d], delta));
                    delta_counters[d] += 1;
                }
                for (i, (time, link, packet, ord)) in sh.outbox.drain(..).enumerate() {
                    inboxes[link_owner[link.0] as usize].push(Handoff {
                        time,
                        src_domain: d as u32,
                        src_idx: i as u64,
                        link,
                        packet,
                        ord,
                    });
                }
            }
        }
        // Deltas flow backwards (and to same-stage siblings) at the window
        // boundary: a domain in stage `u` receives every delta produced by
        // stages `v >= u` this window, for application next window.
        if !window_deltas.is_empty() {
            for (u, stage) in stages.iter().enumerate() {
                for &d in stage {
                    let mut sim = cells[d].lock().expect("shard lock");
                    let sh = sim.world.shard.as_mut().expect("shard ctx");
                    let mut added = false;
                    for &(v, origin, delta) in &window_deltas {
                        if v >= u && origin != d as u32 {
                            sh.pending_deltas.push(delta);
                            added = true;
                        }
                    }
                    if added {
                        sh.pending_deltas.sort_by_key(|d| (d.time, d.ord));
                    }
                }
            }
        }
    }

    let shards = cells
        .into_iter()
        .map(|c| c.into_inner().expect("shard lock"))
        .collect();
    (shards, run_deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Payload};

    /// Simple agent that sends `count` packets of `size` bytes to `dst` at
    /// fixed intervals and records every packet it receives.
    struct Blaster {
        dst: Dest,
        size: u32,
        count: u32,
        interval: f64,
        sent: u32,
        received: Vec<(f64, u32)>,
    }

    impl Blaster {
        fn new(dst: Dest, size: u32, count: u32, interval: f64) -> Self {
            Blaster {
                dst,
                size,
                count,
                interval,
                sent: 0,
                received: Vec::new(),
            }
        }
    }

    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut Context<'_>) {
            if self.count > 0 {
                ctx.schedule(0.0, 0);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            let pkt = Packet::new(ctx.addr(), self.dst, self.size, FlowId(1), Payload::empty());
            ctx.send(pkt);
            self.sent += 1;
            if self.sent < self.count {
                ctx.schedule(self.interval, 0);
            }
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            self.received.push((ctx.now().as_secs(), packet.size));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Agent that joins a multicast group and counts received packets.
    struct GroupListener {
        group: GroupId,
        received: u32,
    }

    impl Agent for GroupListener {
        fn start(&mut self, ctx: &mut Context<'_>) {
            ctx.join_group(self.group);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {
            self.received += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_sim() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        // 1 Mbyte/s, 10 ms delay.
        sim.add_duplex_link(a, b, 1_000_000.0, 0.01, QueueDiscipline::drop_tail(100));
        (sim, a, b)
    }

    #[test]
    fn unicast_delivery_has_correct_latency() {
        let (mut sim, a, b) = two_node_sim();
        let sink_addr = Address::new(b, Port(1));
        let sink = sim.add_agent(
            b,
            Port(1),
            Box::new(Blaster::new(
                Dest::Unicast(Address::new(a, Port(1))),
                100,
                0,
                1.0,
            )),
        );
        let _src = sim.add_agent(
            a,
            Port(1),
            Box::new(Blaster::new(Dest::Unicast(sink_addr), 1000, 1, 1.0)),
        );
        sim.run_until(SimTime::from_secs(1.0));
        let sink_ref: &Blaster = sim.agent(sink).unwrap();
        assert_eq!(sink_ref.received.len(), 1);
        // Latency = serialization (1000 B / 1 MB/s = 1 ms) + propagation 10 ms.
        let (t, size) = sink_ref.received[0];
        assert!((t - 0.011).abs() < 1e-9, "arrival at {t}");
        assert_eq!(size, 1000);
    }

    #[test]
    fn bottleneck_paces_packets_at_link_rate() {
        let (mut sim, a, b) = two_node_sim();
        let sink_addr = Address::new(b, Port(1));
        let sink = sim.add_agent(
            b,
            Port(1),
            Box::new(Blaster::new(
                Dest::Unicast(Address::new(a, Port(9))),
                100,
                0,
                1.0,
            )),
        );
        // Send 10 packets back to back; they serialize at 1 ms each.
        let _src = sim.add_agent(
            a,
            Port(1),
            Box::new(Blaster::new(Dest::Unicast(sink_addr), 1000, 10, 0.0)),
        );
        sim.run_until(SimTime::from_secs(1.0));
        let sink_ref: &Blaster = sim.agent(sink).unwrap();
        assert_eq!(sink_ref.received.len(), 10);
        for (i, (t, _)) in sink_ref.received.iter().enumerate() {
            let expected = 0.001 * (i as f64 + 1.0) + 0.01;
            assert!(
                (t - expected).abs() < 1e-9,
                "packet {i} arrived at {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn queue_overflow_drops_packets() {
        let mut sim = Simulator::new(2);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        // Tiny queue of 2 packets.
        sim.add_link(a, b, 1000.0, 0.001, QueueDiscipline::drop_tail(2));
        sim.add_link(b, a, 1000.0, 0.001, QueueDiscipline::drop_tail(2));
        let sink_addr = Address::new(b, Port(1));
        let sink = sim.add_agent(
            b,
            Port(1),
            Box::new(Blaster::new(
                Dest::Unicast(Address::new(a, Port(9))),
                100,
                0,
                1.0,
            )),
        );
        // 10 packets of 1000 B back to back on a 1 kB/s link: 1 in flight,
        // 2 queued, 7 dropped.
        let _src = sim.add_agent(
            a,
            Port(1),
            Box::new(Blaster::new(Dest::Unicast(sink_addr), 1000, 10, 0.0)),
        );
        sim.run_until(SimTime::from_secs(60.0));
        let sink_ref: &Blaster = sim.agent(sink).unwrap();
        assert_eq!(sink_ref.received.len(), 3);
        assert_eq!(sim.stats().counter("drops.link"), 7.0);
        assert_eq!(sim.link_stats(LinkId(0)).dropped_queue, 7);
    }

    #[test]
    fn multicast_fans_out_to_all_members() {
        let mut sim = Simulator::new(3);
        let src_node = sim.add_node("src");
        let router = sim.add_node("router");
        let r1 = sim.add_node("r1");
        let r2 = sim.add_node("r2");
        let r3 = sim.add_node("r3");
        let q = || QueueDiscipline::drop_tail(100);
        sim.add_duplex_link(src_node, router, 1e6, 0.005, q());
        for r in [r1, r2, r3] {
            sim.add_duplex_link(router, r, 1e6, 0.01, q());
        }
        let group = GroupId(7);
        let mut listener_ids = Vec::new();
        for r in [r1, r2, r3] {
            let id = sim.add_agent(r, Port(5), Box::new(GroupListener { group, received: 0 }));
            listener_ids.push(id);
        }
        let _src = sim.add_agent(
            src_node,
            Port(5),
            Box::new(Blaster::new(
                Dest::Multicast {
                    group,
                    port: Port(5),
                },
                500,
                4,
                0.1,
            )),
        );
        sim.run_until(SimTime::from_secs(2.0));
        for id in listener_ids {
            let l: &GroupListener = sim.agent(id).unwrap();
            assert_eq!(l.received, 4);
        }
        // The source link carried each packet exactly once (replication
        // happens at the router, not at the source).
        assert_eq!(sim.link_stats(LinkId(0)).delivered, 4);
    }

    #[test]
    fn multicast_leave_stops_delivery() {
        let mut sim = Simulator::new(4);
        let s = sim.add_node("s");
        let r = sim.add_node("r");
        sim.add_duplex_link(s, r, 1e6, 0.001, QueueDiscipline::drop_tail(10));
        let group = GroupId(1);
        let listener = sim.add_agent(r, Port(2), Box::new(GroupListener { group, received: 0 }));
        let _src = sim.add_agent(
            s,
            Port(2),
            Box::new(Blaster::new(
                Dest::Multicast {
                    group,
                    port: Port(2),
                },
                100,
                20,
                0.1,
            )),
        );
        sim.run_until(SimTime::from_secs(0.55));
        // Leave the group externally.
        sim.leave_group(listener, group);
        sim.run_until(SimTime::from_secs(3.0));
        let l: &GroupListener = sim.agent(listener).unwrap();
        // Only the packets sent during the first ~0.55 s arrived.
        assert!(
            l.received >= 5 && l.received <= 7,
            "received {}",
            l.received
        );
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct TimerAgent {
            fired: Vec<u64>,
            cancel_target: Option<TimerId>,
        }
        impl Agent for TimerAgent {
            fn start(&mut self, ctx: &mut Context<'_>) {
                ctx.schedule(0.3, 3);
                ctx.schedule(0.1, 1);
                let t = ctx.schedule(0.2, 2);
                self.cancel_target = Some(t);
                ctx.schedule(0.15, 99);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
                if token == 99 {
                    // Cancel token 2 before it fires.
                    let t = self.cancel_target.take().unwrap();
                    ctx.cancel(t);
                } else {
                    self.fired.push(token);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(5);
        let n = sim.add_node("n");
        let id = sim.add_agent(
            n,
            Port(1),
            Box::new(TimerAgent {
                fired: Vec::new(),
                cancel_target: None,
            }),
        );
        sim.run_until(SimTime::from_secs(1.0));
        let a: &TimerAgent = sim.agent(id).unwrap();
        assert_eq!(a.fired, vec![1, 3]);
    }

    #[test]
    fn run_until_advances_time_even_with_no_events() {
        let mut sim = Simulator::new(6);
        sim.run_until(SimTime::from_secs(5.0));
        assert_eq!(sim.now().as_secs(), 5.0);
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    fn lossy_link_drops_roughly_expected_fraction() {
        let mut sim = Simulator::new(7);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (ab, _) = sim.add_duplex_link(a, b, 1e7, 0.001, QueueDiscipline::drop_tail(1000));
        sim.set_link_loss(ab, LossModel::Bernoulli { p: 0.2 });
        let sink_addr = Address::new(b, Port(1));
        let sink = sim.add_agent(
            b,
            Port(1),
            Box::new(Blaster::new(
                Dest::Unicast(Address::new(a, Port(9))),
                100,
                0,
                1.0,
            )),
        );
        let _src = sim.add_agent(
            a,
            Port(1),
            Box::new(Blaster::new(Dest::Unicast(sink_addr), 1000, 2000, 0.001)),
        );
        sim.run_until(SimTime::from_secs(10.0));
        let got = sim.agent::<Blaster>(sink).unwrap().received.len() as f64;
        let frac = got / 2000.0;
        assert!(
            (0.75..=0.85).contains(&frac),
            "expected ≈80% delivery, got {frac}"
        );
        assert_eq!(
            sim.link_stats(ab).dropped_loss + sim.link_stats(ab).delivered,
            2000
        );
    }

    /// Runs a fixed lossy-link workload and returns how many packets got
    /// through.  With `extra_gear`, an unrelated link and a chatty agent are
    /// added too — per-link RNG streams mean their draws must not perturb
    /// the lossy link's drop pattern (before per-link streams, every offer
    /// anywhere advanced one global RNG).
    fn lossy_delivery_count(extra_gear: bool) -> usize {
        let mut sim = Simulator::new(77);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (ab, _) = sim.add_duplex_link(a, b, 1e7, 0.001, QueueDiscipline::drop_tail(1000));
        sim.set_link_loss(ab, LossModel::Bernoulli { p: 0.3 });
        if extra_gear {
            let c = sim.add_node("c");
            sim.add_duplex_link(a, c, 1e6, 0.002, QueueDiscipline::drop_tail(10));
            let c_sink = Address::new(c, Port(3));
            sim.add_agent(
                c,
                Port(3),
                Box::new(Blaster::new(Dest::Unicast(c_sink), 1, 0, 1.0)),
            );
            sim.add_agent(
                a,
                Port(3),
                Box::new(Blaster::new(Dest::Unicast(c_sink), 200, 50, 0.013)),
            );
        }
        let sink_addr = Address::new(b, Port(1));
        let sink = sim.add_agent(
            b,
            Port(1),
            Box::new(Blaster::new(
                Dest::Unicast(Address::new(a, Port(9))),
                100,
                0,
                1.0,
            )),
        );
        let _src = sim.add_agent(
            a,
            Port(1),
            Box::new(Blaster::new(Dest::Unicast(sink_addr), 1000, 500, 0.002)),
        );
        sim.run_until(SimTime::from_secs(5.0));
        sim.agent::<Blaster>(sink).unwrap().received.len()
    }

    #[test]
    fn link_loss_pattern_is_independent_of_unrelated_traffic() {
        let plain = lossy_delivery_count(false);
        let with_extra = lossy_delivery_count(true);
        assert!(
            plain > 300 && plain < 400,
            "≈70% of 500 expected, got {plain}"
        );
        assert_eq!(
            plain, with_extra,
            "adding unrelated links/agents must not perturb a link's loss pattern"
        );
    }

    /// Runs a congested RED-bottleneck workload and returns the sink's
    /// delivery log plus the bottleneck's counters.  With `extra_gear`, an
    /// unrelated link and a chatty agent are added — the per-link RNG
    /// streams (`rng::stream_seed`) mean the RED drop sequence must not
    /// shift, exactly like the Bernoulli loss-stream regression above.
    fn red_delivery_log(extra_gear: bool) -> (Vec<(f64, u32)>, LinkStats) {
        let mut sim = Simulator::new(78);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        // A tight gentle-RED queue on a slow link: the blaster overruns it,
        // so RED's probabilistic early drops are exercised for real.
        let (ab, _) = sim.add_duplex_link(a, b, 2e5, 0.002, QueueDiscipline::red_gentle(12));
        if extra_gear {
            let c = sim.add_node("c");
            sim.add_duplex_link(a, c, 1e6, 0.002, QueueDiscipline::red(10));
            let c_sink = Address::new(c, Port(3));
            sim.add_agent(
                c,
                Port(3),
                Box::new(Blaster::new(Dest::Unicast(c_sink), 1, 0, 1.0)),
            );
            sim.add_agent(
                a,
                Port(3),
                Box::new(Blaster::new(Dest::Unicast(c_sink), 200, 50, 0.013)),
            );
        }
        let sink_addr = Address::new(b, Port(1));
        let sink = sim.add_agent(
            b,
            Port(1),
            Box::new(Blaster::new(
                Dest::Unicast(Address::new(a, Port(9))),
                100,
                0,
                1.0,
            )),
        );
        let _src = sim.add_agent(
            a,
            Port(1),
            Box::new(Blaster::new(Dest::Unicast(sink_addr), 1000, 800, 0.002)),
        );
        sim.run_until(SimTime::from_secs(5.0));
        let log = sim.agent::<Blaster>(sink).unwrap().received.clone();
        (log, sim.link_stats(ab))
    }

    /// RED draws come from the link's private stream: adding unrelated
    /// links and agents must leave the drop sequence byte-identical.
    #[test]
    fn red_drop_pattern_is_independent_of_unrelated_traffic() {
        let (plain_log, plain_stats) = red_delivery_log(false);
        let (extra_log, extra_stats) = red_delivery_log(true);
        assert!(
            plain_stats.dropped_queue > 0,
            "the workload must overrun the RED queue: {plain_stats:?}"
        );
        assert_eq!(
            plain_log, extra_log,
            "adding unrelated links/agents must not perturb a RED link's drop pattern"
        );
        assert_eq!(plain_stats, extra_stats);
    }

    /// The heap and calendar schedulers must produce byte-identical RED and
    /// CoDel drop sequences — the scheduler-equivalence contract extended to
    /// the AQM disciplines.
    #[test]
    fn aqm_drop_sequences_are_scheduler_invariant() {
        let run = |kind: SchedulerKind, discipline: QueueDiscipline| {
            let mut sim = Simulator::with_scheduler(7, kind);
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            let (ab, _) = sim.add_duplex_link(a, b, 1e5, 0.003, discipline);
            let sink_addr = Address::new(b, Port(1));
            let sink = sim.add_agent(
                b,
                Port(1),
                Box::new(Blaster::new(
                    Dest::Unicast(Address::new(a, Port(9))),
                    100,
                    0,
                    1.0,
                )),
            );
            let _src = sim.add_agent(
                a,
                Port(1),
                Box::new(Blaster::new(Dest::Unicast(sink_addr), 900, 400, 0.004)),
            );
            sim.run_until(SimTime::from_secs(8.0));
            let log = sim.agent::<Blaster>(sink).unwrap().received.clone();
            (log, sim.link_stats(ab), sim.events_processed())
        };
        for discipline in [
            QueueDiscipline::red(8),
            QueueDiscipline::red_gentle(8),
            QueueDiscipline::codel(8),
        ] {
            let heap = run(SchedulerKind::Heap, discipline.clone());
            let calendar = run(SchedulerKind::Calendar, discipline.clone());
            assert!(
                heap.1.dropped_queue > 0,
                "{discipline:?}: the workload must make the discipline drop"
            );
            assert_eq!(
                heap, calendar,
                "schedulers diverged on a {discipline:?} bottleneck"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth must be a positive")]
    fn zero_bandwidth_link_is_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_link(a, b, 0.0, 0.01, QueueDiscipline::drop_tail(10));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be a positive")]
    fn nan_bandwidth_link_is_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_link(a, b, f64::NAN, 0.01, QueueDiscipline::drop_tail(10));
    }

    #[test]
    #[should_panic(expected = "delay must be a positive")]
    fn zero_delay_link_is_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_link(a, b, 1e6, 0.0, QueueDiscipline::drop_tail(10));
    }

    #[test]
    #[should_panic(expected = "delay must be a positive")]
    fn negative_runtime_delay_is_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let l = sim.add_link(a, b, 1e6, 0.01, QueueDiscipline::drop_tail(10));
        sim.set_link_delay(l, -0.5);
    }

    #[test]
    #[should_panic(expected = "loss probability must be a finite value in [0, 1]")]
    fn nan_loss_is_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let l = sim.add_link(a, b, 1e6, 0.01, QueueDiscipline::drop_tail(10));
        sim.set_link_loss(l, LossModel::Bernoulli { p: f64::NAN });
    }

    /// Regression: a node added *after* a multicast tree was cached must be
    /// able to join the group (trees are maintained in place, so a pending
    /// topology change has to invalidate them before the membership update;
    /// this used to index out of bounds in the tree's parent table).
    #[test]
    fn node_added_after_tree_build_can_join_group() {
        let mut sim = Simulator::new(12);
        let s = sim.add_node("s");
        let r1 = sim.add_node("r1");
        sim.add_duplex_link(s, r1, 1e6, 0.001, QueueDiscipline::drop_tail(10));
        let group = GroupId(2);
        let first = sim.add_agent(r1, Port(2), Box::new(GroupListener { group, received: 0 }));
        sim.add_agent(
            s,
            Port(2),
            Box::new(Blaster::new(
                Dest::Multicast {
                    group,
                    port: Port(2),
                },
                100,
                30,
                0.1,
            )),
        );
        // Run long enough that the distribution tree is built and cached.
        sim.run_until(SimTime::from_secs(0.55));
        // Grow the topology mid-run and subscribe an agent on the new node.
        let r2 = sim.add_node("r2");
        sim.add_duplex_link(s, r2, 1e6, 0.001, QueueDiscipline::drop_tail(10));
        let late = sim.add_agent(r2, Port(2), Box::new(GroupListener { group, received: 0 }));
        sim.join_group(late, group);
        sim.run_until(SimTime::from_secs(3.0));
        let l1: &GroupListener = sim.agent(first).unwrap();
        let l2: &GroupListener = sim.agent(late).unwrap();
        assert_eq!(l1.received, 30);
        assert!(
            l2.received >= 20,
            "late node must receive the remaining packets, got {}",
            l2.received
        );
    }

    #[test]
    fn multicast_fanout_shares_packet_data() {
        struct Capture {
            group: GroupId,
            got: Vec<Packet>,
        }
        impl Agent for Capture {
            fn start(&mut self, ctx: &mut Context<'_>) {
                ctx.join_group(self.group);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
                self.got.push(packet);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let build = |mode: FanoutMode| {
            let mut sim = Simulator::new(9);
            sim.set_fanout_mode(mode);
            let s = sim.add_node("s");
            let r = sim.add_node("r");
            sim.add_duplex_link(s, r, 1e6, 0.001, QueueDiscipline::drop_tail(10));
            let group = GroupId(4);
            let cap = sim.add_agent(
                r,
                Port(2),
                Box::new(Capture {
                    group,
                    got: Vec::new(),
                }),
            );
            sim.add_agent(
                s,
                Port(2),
                Box::new(Blaster::new(
                    Dest::Multicast {
                        group,
                        port: Port(2),
                    },
                    100,
                    2,
                    0.1,
                )),
            );
            sim.run_until(SimTime::from_secs(1.0));
            let c: &Capture = sim.agent(cap).unwrap();
            c.got.clone()
        };
        let shared = build(FanoutMode::Shared);
        let cloned = build(FanoutMode::CloneReference);
        assert_eq!(shared.len(), 2);
        assert_eq!(cloned.len(), 2);
        for (a, b) in shared.iter().zip(cloned.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
            assert_eq!(a.sent_at, b.sent_at);
        }
    }

    /// Regression for the unbounded `cancelled_timers` tombstone set: a
    /// churn-style agent that repeatedly schedules timers and cancels them —
    /// including *stale* cancels of timers that already fired, exactly what
    /// `TfmccReceiverAgent` does when a receiver leaves mid-round — must not
    /// grow the event core's cancellation state monotonically.
    #[test]
    fn cancellation_state_stays_bounded_under_churn() {
        struct ChurnAgent {
            live: Option<TimerId>,
            fired: TimerId,
            cycles: u64,
        }
        impl Agent for ChurnAgent {
            fn start(&mut self, ctx: &mut Context<'_>) {
                self.fired = ctx.schedule(0.0, 0);
                ctx.schedule(0.001, 1);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
                if token != 1 {
                    return;
                }
                self.cycles += 1;
                // Stale cancel: this timer fired long ago.  The historical
                // tombstone-only design leaked one set entry per call here.
                ctx.cancel(self.fired);
                // Live cancel: schedule a decoy far in the future and cancel
                // it before it can ever fire.
                if let Some(old) = self.live.take() {
                    ctx.cancel(old);
                }
                self.live = Some(ctx.schedule(1_000.0, 2));
                if self.cycles < 10_000 {
                    ctx.schedule(0.001, 1);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut sim = Simulator::with_scheduler(11, kind);
            let n = sim.add_node("n");
            sim.add_agent(
                n,
                Port(1),
                Box::new(ChurnAgent {
                    live: None,
                    fired: TimerId(u64::MAX),
                    cycles: 0,
                }),
            );
            sim.run_until(SimTime::from_secs(60.0));
            let diag = sim.scheduler_diagnostics();
            assert_eq!(diag.scheduler, kind);
            // 10 000 churn cycles with 20 000 cancels: the only surviving
            // state is the one decoy timer still pending (plus, on the heap,
            // its at-most-one drained-on-pop tombstone window).
            assert_eq!(diag.pending_timers, 1, "{kind:?}");
            assert!(
                diag.queued_events <= 2,
                "{kind:?}: queue grew to {} events",
                diag.queued_events
            );
            assert!(
                diag.queue_tombstones <= 1,
                "{kind:?}: cancellation left {} tombstones behind",
                diag.queue_tombstones
            );
        }
    }

    /// The calendar scheduler must reproduce the heap's behaviour exactly on
    /// a full simulation (the cross-topology guarantee lives in the
    /// `scheduler_equivalence` proptest; this is the cheap in-crate pin).
    #[test]
    fn schedulers_agree_on_a_full_simulation() {
        let run = |kind: SchedulerKind| {
            let mut sim = Simulator::with_scheduler(7, kind);
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            let (ab, _) = sim.add_duplex_link(a, b, 1e5, 0.003, QueueDiscipline::drop_tail(8));
            sim.set_link_loss(ab, LossModel::Bernoulli { p: 0.1 });
            let sink_addr = Address::new(b, Port(1));
            let sink = sim.add_agent(
                b,
                Port(1),
                Box::new(Blaster::new(
                    Dest::Unicast(Address::new(a, Port(9))),
                    100,
                    0,
                    1.0,
                )),
            );
            let _src = sim.add_agent(
                a,
                Port(1),
                Box::new(Blaster::new(Dest::Unicast(sink_addr), 900, 400, 0.004)),
            );
            sim.run_until(SimTime::from_secs(8.0));
            let log = sim.agent::<Blaster>(sink).unwrap().received.clone();
            (log, sim.events_processed())
        };
        let heap = run(SchedulerKind::Heap);
        let calendar = run(SchedulerKind::Calendar);
        assert_eq!(heap, calendar, "schedulers diverged on a lossy workload");
    }

    /// Switching schedulers mid-run migrates the queue without perturbing
    /// the simulation.
    #[test]
    fn mid_run_scheduler_switch_is_transparent() {
        let run = |switch: bool| {
            let mut sim = Simulator::with_scheduler(21, SchedulerKind::Heap);
            let (s, r) = {
                let s = sim.add_node("s");
                let r = sim.add_node("r");
                sim.add_duplex_link(s, r, 1e6, 0.002, QueueDiscipline::drop_tail(20));
                (s, r)
            };
            let sink_addr = Address::new(r, Port(1));
            let sink = sim.add_agent(
                r,
                Port(1),
                Box::new(Blaster::new(
                    Dest::Unicast(Address::new(s, Port(9))),
                    100,
                    0,
                    1.0,
                )),
            );
            sim.add_agent(
                s,
                Port(1),
                Box::new(Blaster::new(Dest::Unicast(sink_addr), 500, 200, 0.01)),
            );
            sim.run_until(SimTime::from_secs(1.0));
            if switch {
                sim.set_scheduler(SchedulerKind::Calendar);
                assert_eq!(sim.scheduler(), SchedulerKind::Calendar);
            }
            sim.run_until(SimTime::from_secs(5.0));
            sim.agent::<Blaster>(sink).unwrap().received.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn duplicate_port_binding_panics() {
        let mut sim = Simulator::new(8);
        let n = sim.add_node("n");
        let mk = || {
            Box::new(GroupListener {
                group: GroupId(0),
                received: 0,
            })
        };
        sim.add_agent(n, Port(1), mk());
        sim.add_agent(n, Port(1), mk());
    }
}
