//! Exercises every documented validation panic of the Population API — the
//! messages asserted here are part of the public surface of
//! [`SessionManager::add_population_session`] and
//! [`TfmccSessionBuilder::build_population`].

use netsim::prelude::*;
use tfmcc_agents::manager::{SessionManager, SessionSpec};
use tfmcc_agents::population::{FluidSpec, PopulationSpec};
use tfmcc_agents::session::{ReceiverSpec, TfmccSessionBuilder};
use tfmcc_model::population::Dist;

fn one_leg_star(sim: &mut Simulator) -> Star {
    star(
        sim,
        &StarConfig::default(),
        &[StarLeg::clean(1_250_000.0, 0.02)],
    )
}

fn fluid(node: NodeId, count: u64) -> FluidSpec {
    FluidSpec::new(
        node,
        count,
        Dist::Uniform {
            lo: 0.001,
            hi: 0.01,
        },
        Dist::Uniform { lo: 0.04, hi: 0.1 },
    )
}

#[test]
#[should_panic(expected = "a TFMCC session needs at least one receiver")]
fn empty_population_is_rejected() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    SessionManager::new().add_population_session(&mut sim, &SessionSpec::default(), st.sender, &[]);
}

#[test]
#[should_panic(expected = "at least one packet-level receiver")]
fn all_fluid_sessions_are_rejected() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    SessionManager::new().add_population_session(
        &mut sim,
        &SessionSpec::default(),
        st.sender,
        &[PopulationSpec::Fluid(fluid(st.receivers[0], 1000))],
    );
}

#[test]
#[should_panic(expected = "a fluid population must have count > 0")]
fn zero_count_fluid_is_rejected() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    SessionManager::new().add_population_session(
        &mut sim,
        &SessionSpec::default(),
        st.sender,
        &[
            PopulationSpec::packet(st.receivers[0]),
            PopulationSpec::Fluid(fluid(st.receivers[0], 0)),
        ],
    );
}

#[test]
#[should_panic(expected = "fluid population bins must be in 1..=64")]
fn out_of_range_bins_are_rejected() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    SessionManager::new().add_population_session(
        &mut sim,
        &SessionSpec::default(),
        st.sender,
        &[
            PopulationSpec::packet(st.receivers[0]),
            PopulationSpec::Fluid(fluid(st.receivers[0], 100).with_bins(65)),
        ],
    );
}

#[test]
#[should_panic(expected = "fluid loss distribution must stay within [0, 1)")]
fn out_of_range_loss_is_rejected() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    let mut f = fluid(st.receivers[0], 100);
    f.loss = Dist::Uniform { lo: 0.5, hi: 1.5 };
    SessionManager::new().add_population_session(
        &mut sim,
        &SessionSpec::default(),
        st.sender,
        &[
            PopulationSpec::packet(st.receivers[0]),
            PopulationSpec::Fluid(f),
        ],
    );
}

#[test]
#[should_panic(expected = "fluid rtt distribution must stay positive and finite")]
fn non_positive_rtt_is_rejected() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    let mut f = fluid(st.receivers[0], 100);
    f.rtt = Dist::Point(0.0);
    SessionManager::new().add_population_session(
        &mut sim,
        &SessionSpec::default(),
        st.sender,
        &[
            PopulationSpec::packet(st.receivers[0]),
            PopulationSpec::Fluid(f),
        ],
    );
}

#[test]
#[should_panic(expected = "at least one packet-level receiver")]
fn builder_applies_the_same_validation() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    TfmccSessionBuilder::default().build_population(
        &mut sim,
        st.sender,
        &[PopulationSpec::Fluid(fluid(st.receivers[0], 1000))],
    );
}

/// The deprecated per-receiver entry points still work and build the same
/// (pure packet-level) session as the unified surface.
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_build_sessions() {
    let mut sim = Simulator::new(7);
    let st = one_leg_star(&mut sim);
    let session = TfmccSessionBuilder::default().build(
        &mut sim,
        st.sender,
        &[ReceiverSpec::always(st.receivers[0])],
    );
    assert_eq!(session.receivers.len(), 1);
    assert!(session.fluid.is_empty());
}
