//! Fan-out microbench: the 10⁴-receiver multicast delivery workload run
//! with the zero-copy shared fan-out versus the clone-based reference path
//! (the seed implementation's behaviour).  The `fanout_churn/*` pair is the
//! headline before/after comparison; `fanout_static/*` isolates the
//! steady-state delivery path without membership churn.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netsim::prelude::FanoutMode;
use tfmcc_experiments::fanout_bench::{run_fanout_workload, STANDARD_RECEIVERS, STANDARD_SIM_SECS};

fn bench_fanout_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_churn_10k");
    group.bench_function("shared", |b| {
        b.iter(|| {
            black_box(run_fanout_workload(
                STANDARD_RECEIVERS,
                FanoutMode::Shared,
                STANDARD_SIM_SECS,
            ))
        })
    });
    group.bench_function("clone_reference", |b| {
        b.iter(|| {
            black_box(run_fanout_workload(
                STANDARD_RECEIVERS,
                FanoutMode::CloneReference,
                STANDARD_SIM_SECS,
            ))
        })
    });
    group.finish();
}

fn bench_fanout_static(c: &mut Criterion) {
    // Short simulated time: the churn group above is the headline
    // measurement (and sweep_bench writes the authoritative
    // BENCH_fanout.json); this pair only tracks the steady-state delivery
    // path, so it does not need to burn CI minutes.
    let mut group = c.benchmark_group("fanout_static_10k");
    group.bench_function("shared", |b| {
        b.iter(|| {
            black_box(run_fanout_workload(
                STANDARD_RECEIVERS,
                FanoutMode::Shared,
                0.5,
            ))
        })
    });
    group.bench_function("clone_reference", |b| {
        b.iter(|| {
            black_box(run_fanout_workload(
                STANDARD_RECEIVERS,
                FanoutMode::CloneReference,
                0.5,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fanout_churn, bench_fanout_static);
criterion_main!(benches);
