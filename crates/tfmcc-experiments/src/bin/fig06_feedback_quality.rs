//! Regenerates fig06_feedback_quality of the TFMCC paper.  Pass `--quick` for a reduced
//! run suitable for smoke testing; the default is the paper's scale.

use tfmcc_experiments::scale::Scale;

fn main() {
    let scale = Scale::from_args();
    let figure = tfmcc_experiments::feedback_figs::fig06_feedback_quality(scale);
    print!("{}", figure.to_csv());
}
