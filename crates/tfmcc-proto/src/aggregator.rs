//! Pluggable sender-side feedback aggregation.
//!
//! The TFMCC sender keeps per-receiver bookkeeping (most recent effective
//! rate, RTT, report timestamps) and derives three aggregates from it on the
//! hot path:
//!
//! * the **maximum RTT** over all known receivers, consulted on *every data
//!   packet* to size the feedback window ([`TfmccSender::on_tick`]);
//! * the **candidate CLR** (the receiver with the lowest finite calculated
//!   rate), consulted whenever the current limiting receiver leaves or times
//!   out;
//! * the **per-round suppression minimum** (the lowest-rate report of the
//!   current feedback round), echoed in every data packet.
//!
//! At 10⁵ receivers the original implementation's full scans (O(N) per data
//! packet for the maximum RTT, O(N) per CLR election) dominate the sender.
//! This module extracts the bookkeeping behind the [`FeedbackAggregator`]
//! trait with two implementations proven equivalent report-for-report by the
//! `aggregator_equivalence` property test:
//!
//! * [`ReferenceAggregator`] — the original scan-based path, kept as the
//!   executable specification;
//! * [`IncrementalAggregator`] — ordered indexes over RTTs and rates plus
//!   eagerly maintained counters: aggregate queries are O(1) (a `BTreeSet`
//!   end lookup) regardless of the receiver count, and each report costs
//!   O(log N) index maintenance instead of deferring O(N) scans to the
//!   per-packet path.
//!
//! The implementation is selected per sender ([`TfmccSender::with_aggregator`])
//! or process-wide through the `TFMCC_AGGREGATOR` environment variable; the
//! default is the incremental path.  `feedback_microbench` /
//! `BENCH_feedback.json` track the speedup (≥2× on the 10⁵-receiver feedback
//! workload).
//!
//! [`TfmccSender::on_tick`]: crate::sender::TfmccSender::on_tick
//! [`TfmccSender::with_aggregator`]: crate::sender::TfmccSender::with_aggregator

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hasher;

use crate::packets::{ReceiverId, SuppressionEcho};
use crate::step::{hash_f64, hash_opt_f64, StateFingerprint};

/// Which feedback-aggregation implementation a sender uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregatorKind {
    /// The original scan-based bookkeeping (O(N) aggregate queries); kept as
    /// the executable specification the incremental path is tested against.
    Reference,
    /// Ordered-index bookkeeping: O(1) aggregate queries, O(log N) updates.
    #[default]
    Incremental,
}

impl AggregatorKind {
    /// Reads the `TFMCC_AGGREGATOR` environment override (`reference` or
    /// `incremental`, case-insensitive).  Returns `None` when unset; unknown
    /// values warn on stderr and are ignored.
    pub fn from_env() -> Option<Self> {
        let value = std::env::var("TFMCC_AGGREGATOR").ok()?;
        match value.to_ascii_lowercase().as_str() {
            "reference" => Some(AggregatorKind::Reference),
            "incremental" => Some(AggregatorKind::Incremental),
            other => {
                eprintln!(
                    "warning: ignoring unknown TFMCC_AGGREGATOR value '{other}' (use 'reference' or 'incremental')"
                );
                None
            }
        }
    }

    /// The kind to use: the `TFMCC_AGGREGATOR` environment override when set,
    /// otherwise the default (incremental).
    pub fn resolve() -> Self {
        Self::from_env().unwrap_or_default()
    }
}

/// What the sender knows about one receiver.
#[derive(Debug, Clone)]
pub struct ReceiverInfo {
    /// Most recent effective calculated rate (bytes/second).
    pub rate: f64,
    /// RTT of this receiver (receiver-measured if available, otherwise the
    /// sender-side measurement), `None` if neither exists.
    pub rtt: Option<f64>,
    /// Whether the receiver itself has a valid RTT measurement.
    pub has_own_rtt: bool,
    /// Receiver-clock timestamp of its most recent report.
    pub last_report_timestamp: f64,
    /// Sender-clock time the most recent report arrived.
    pub last_report_at: f64,
    /// Number of receivers this entry stands for: 1 for an ordinary
    /// packet-level receiver, the bin population for a synthetic report
    /// injected by a fluid population.
    pub weight: u64,
}

/// The bookkeeping contract between [`TfmccSender`] and its aggregation
/// backend.  Both implementations must answer every query identically for
/// identical report sequences — the `aggregator_equivalence` property test
/// pins this.
///
/// [`TfmccSender`]: crate::sender::TfmccSender
pub trait FeedbackAggregator {
    /// Records (or replaces) the bookkeeping entry for `id`.
    fn upsert(&mut self, id: ReceiverId, info: ReceiverInfo);
    /// Removes `id`; returns whether it was known.
    fn remove(&mut self, id: ReceiverId) -> bool;
    /// The entry for `id`, if known.
    fn get(&self, id: ReceiverId) -> Option<&ReceiverInfo>;
    /// Number of known receivers.
    fn len(&self) -> usize;
    /// True when no receiver is known.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total receiver population: the sum of entry weights.  Equals
    /// [`len`](FeedbackAggregator::len) when every entry is an ordinary
    /// packet-level receiver; population-weighted reports raise it to the
    /// number of receivers the session actually stands for.
    fn population(&self) -> u64;
    /// Number of known receivers with a valid receiver-side RTT measurement.
    fn receivers_with_rtt(&self) -> usize;
    /// The maximum RTT over all known receivers, falling back to
    /// `initial_rtt` whenever any receiver lacks its own measurement (or none
    /// is known at all), floored at 1 ms.
    fn max_rtt(&self, initial_rtt: f64) -> f64;
    /// The CLR candidate: the receiver with the lowest finite rate (ties
    /// broken towards the lowest id), with its rate and RTT (falling back to
    /// `initial_rtt`).
    fn clr_candidate(&self, initial_rtt: f64) -> Option<(ReceiverId, f64, f64)>;
    /// Offers a report's rate to the current feedback round's suppression
    /// minimum (kept only if strictly lower than the current minimum).
    fn observe_round_rate(&mut self, id: ReceiverId, echo_rate: f64);
    /// The lowest-rate report of the current feedback round, if any.
    fn round_min(&self) -> Option<SuppressionEcho>;
    /// Clears the per-round suppression state at a round boundary.
    fn reset_round(&mut self);
    /// Which implementation this is.
    fn kind(&self) -> AggregatorKind;
}

/// Shared per-round suppression logic: keep the strictly lowest finite rate,
/// first-reported winner on ties (both implementations must agree exactly).
fn offer_round_min(slot: &mut Option<SuppressionEcho>, id: ReceiverId, echo_rate: f64) {
    if echo_rate.is_finite() && slot.map(|m| echo_rate < m.rate).unwrap_or(true) {
        *slot = Some(SuppressionEcho {
            receiver: id,
            rate: echo_rate,
        });
    }
}

/// The original scan-based bookkeeping: a flat map, with every aggregate
/// recomputed by a full pass when queried.
#[derive(Debug, Clone, Default)]
pub struct ReferenceAggregator {
    receivers: BTreeMap<ReceiverId, ReceiverInfo>,
    round_min: Option<SuppressionEcho>,
}

impl ReferenceAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FeedbackAggregator for ReferenceAggregator {
    fn upsert(&mut self, id: ReceiverId, info: ReceiverInfo) {
        self.receivers.insert(id, info);
    }

    fn remove(&mut self, id: ReceiverId) -> bool {
        self.receivers.remove(&id).is_some()
    }

    fn get(&self, id: ReceiverId) -> Option<&ReceiverInfo> {
        self.receivers.get(&id)
    }

    fn len(&self) -> usize {
        self.receivers.len()
    }

    fn population(&self) -> u64 {
        self.receivers.values().map(|r| r.weight).sum()
    }

    fn receivers_with_rtt(&self) -> usize {
        self.receivers.values().filter(|r| r.has_own_rtt).count()
    }

    fn max_rtt(&self, initial_rtt: f64) -> f64 {
        let mut max = 0.0_f64;
        let mut any_without = self.receivers.is_empty();
        for info in self.receivers.values() {
            match info.rtt {
                Some(r) if info.has_own_rtt => max = max.max(r),
                Some(r) => {
                    // Sender-side measurement only: usable but keep the
                    // conservative floor as well.
                    max = max.max(r);
                    any_without = true;
                }
                None => any_without = true,
            }
        }
        if any_without {
            max = max.max(initial_rtt);
        }
        max.max(1e-3)
    }

    fn clr_candidate(&self, initial_rtt: f64) -> Option<(ReceiverId, f64, f64)> {
        self.receivers
            .iter()
            .filter(|(_, info)| info.rate.is_finite())
            .min_by(|a, b| {
                a.1.rate
                    .partial_cmp(&b.1.rate)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(b.0))
            })
            .map(|(id, info)| (*id, info.rate, info.rtt.unwrap_or(initial_rtt)))
    }

    fn observe_round_rate(&mut self, id: ReceiverId, echo_rate: f64) {
        offer_round_min(&mut self.round_min, id, echo_rate);
    }

    fn round_min(&self) -> Option<SuppressionEcho> {
        self.round_min
    }

    fn reset_round(&mut self) {
        self.round_min = None;
    }

    fn kind(&self) -> AggregatorKind {
        AggregatorKind::Reference
    }
}

/// Order-preserving bit mapping for `f64` index keys (standard total-order
/// trick; works for every finite value, positive or negative).  `-0.0` is
/// normalized to `+0.0` first: IEEE comparison (the reference path) treats
/// the two as equal, so they must share one key or the implementations
/// would tie-break differently.
fn f64_key(v: f64) -> u64 {
    debug_assert!(!v.is_nan(), "NaN cannot be indexed");
    let bits = (v + 0.0).to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Ordered-index bookkeeping: the RTTs and finite rates of all known
/// receivers live in `BTreeSet` indexes keyed by their order-preserving bit
/// patterns, and the "how many lack an own RTT measurement" counts are kept
/// eagerly, so [`max_rtt`](FeedbackAggregator::max_rtt) and
/// [`clr_candidate`](FeedbackAggregator::clr_candidate) are end lookups
/// instead of O(N) scans.  Each report costs two O(log N) index updates.
#[derive(Debug, Clone, Default)]
pub struct IncrementalAggregator {
    receivers: BTreeMap<ReceiverId, ReceiverInfo>,
    /// `(f64_key(rtt), id)` for every receiver with a known RTT.
    rtt_index: BTreeSet<(u64, ReceiverId)>,
    /// `(f64_key(rate), id)` for every receiver with a finite rate.
    rate_index: BTreeSet<(u64, ReceiverId)>,
    /// Receivers with a valid receiver-side RTT measurement.
    own_rtt_count: usize,
    /// Receivers *without* one (no RTT at all, or sender-side only).
    without_own_rtt_count: usize,
    /// Sum of entry weights, maintained eagerly.
    population: u64,
    round_min: Option<SuppressionEcho>,
}

impl IncrementalAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    fn unindex(&mut self, id: ReceiverId, info: &ReceiverInfo) {
        if let Some(rtt) = info.rtt {
            self.rtt_index.remove(&(f64_key(rtt), id));
        }
        if info.rate.is_finite() {
            self.rate_index.remove(&(f64_key(info.rate), id));
        }
        if info.has_own_rtt {
            self.own_rtt_count -= 1;
        } else {
            self.without_own_rtt_count -= 1;
        }
        self.population -= info.weight;
    }
}

impl FeedbackAggregator for IncrementalAggregator {
    fn upsert(&mut self, id: ReceiverId, info: ReceiverInfo) {
        if let Some(old) = self.receivers.get(&id) {
            let old = old.clone();
            self.unindex(id, &old);
        }
        if let Some(rtt) = info.rtt {
            self.rtt_index.insert((f64_key(rtt), id));
        }
        if info.rate.is_finite() {
            self.rate_index.insert((f64_key(info.rate), id));
        }
        if info.has_own_rtt {
            self.own_rtt_count += 1;
        } else {
            self.without_own_rtt_count += 1;
        }
        self.population += info.weight;
        self.receivers.insert(id, info);
    }

    fn remove(&mut self, id: ReceiverId) -> bool {
        let Some(info) = self.receivers.remove(&id) else {
            return false;
        };
        self.unindex(id, &info);
        true
    }

    fn get(&self, id: ReceiverId) -> Option<&ReceiverInfo> {
        self.receivers.get(&id)
    }

    fn len(&self) -> usize {
        self.receivers.len()
    }

    fn population(&self) -> u64 {
        self.population
    }

    fn receivers_with_rtt(&self) -> usize {
        self.own_rtt_count
    }

    fn max_rtt(&self, initial_rtt: f64) -> f64 {
        let mut max = match self.rtt_index.last() {
            Some(&(key, id)) => {
                // The index key is order-preserving, but read the exact value
                // back from the entry so no bit pattern round-trips.
                let _ = key;
                self.receivers[&id]
                    .rtt
                    .expect("indexed receivers have RTTs")
            }
            None => 0.0,
        };
        if self.receivers.is_empty() || self.without_own_rtt_count > 0 {
            max = max.max(initial_rtt);
        }
        max.max(1e-3)
    }

    fn clr_candidate(&self, initial_rtt: f64) -> Option<(ReceiverId, f64, f64)> {
        let &(_, id) = self.rate_index.first()?;
        let info = &self.receivers[&id];
        Some((id, info.rate, info.rtt.unwrap_or(initial_rtt)))
    }

    fn observe_round_rate(&mut self, id: ReceiverId, echo_rate: f64) {
        offer_round_min(&mut self.round_min, id, echo_rate);
    }

    fn round_min(&self) -> Option<SuppressionEcho> {
        self.round_min
    }

    fn reset_round(&mut self) {
        self.round_min = None;
    }

    fn kind(&self) -> AggregatorKind {
        AggregatorKind::Incremental
    }
}

impl StateFingerprint for ReceiverInfo {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        hash_f64(h, self.rate);
        hash_opt_f64(h, self.rtt);
        h.write_u8(self.has_own_rtt as u8);
        hash_f64(h, self.last_report_timestamp);
        hash_f64(h, self.last_report_at);
        h.write_u64(self.weight);
    }
}

/// Hashes the bookkeeping shared by both implementations in a canonical
/// (id-sorted) order — the map is ordered, so plain iteration is canonical.
/// The incremental path's indexes and counters are pure functions of this
/// map, so they need no hashing of their own — and the two implementations
/// fingerprint identically for identical contents.
fn fingerprint_bookkeeping<H: Hasher>(
    h: &mut H,
    receivers: &BTreeMap<ReceiverId, ReceiverInfo>,
    round_min: Option<SuppressionEcho>,
) {
    h.write_usize(receivers.len());
    for (id, info) in receivers {
        h.write_u64(id.0);
        info.fingerprint(h);
    }
    match round_min {
        Some(echo) => {
            h.write_u8(1);
            h.write_u64(echo.receiver.0);
            hash_f64(h, echo.rate);
        }
        None => h.write_u8(0),
    }
}

impl StateFingerprint for ReferenceAggregator {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        fingerprint_bookkeeping(h, &self.receivers, self.round_min);
    }
}

impl StateFingerprint for IncrementalAggregator {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        fingerprint_bookkeeping(h, &self.receivers, self.round_min);
    }
}

impl StateFingerprint for Aggregator {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        h.write_u8(match self.kind() {
            AggregatorKind::Reference => 0,
            AggregatorKind::Incremental => 1,
        });
        match self {
            Aggregator::Reference(a) => a.fingerprint(h),
            Aggregator::Incremental(a) => a.fingerprint(h),
        }
    }
}

/// The aggregator a [`TfmccSender`](crate::sender::TfmccSender) holds:
/// a closed enum (rather than a boxed trait object) so the sender stays
/// `Clone` and `Debug`; dispatch still goes through [`FeedbackAggregator`].
#[derive(Debug, Clone)]
pub enum Aggregator {
    /// The scan-based reference path.
    Reference(ReferenceAggregator),
    /// The ordered-index incremental path.
    Incremental(IncrementalAggregator),
}

impl Aggregator {
    /// Creates an empty aggregator of the given kind.
    pub fn new(kind: AggregatorKind) -> Self {
        match kind {
            AggregatorKind::Reference => Aggregator::Reference(ReferenceAggregator::new()),
            AggregatorKind::Incremental => Aggregator::Incremental(IncrementalAggregator::new()),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Aggregator::Reference($inner) => $body,
            Aggregator::Incremental($inner) => $body,
        }
    };
}

impl FeedbackAggregator for Aggregator {
    fn upsert(&mut self, id: ReceiverId, info: ReceiverInfo) {
        dispatch!(self, a => a.upsert(id, info))
    }
    fn remove(&mut self, id: ReceiverId) -> bool {
        dispatch!(self, a => a.remove(id))
    }
    fn get(&self, id: ReceiverId) -> Option<&ReceiverInfo> {
        dispatch!(self, a => a.get(id))
    }
    fn len(&self) -> usize {
        dispatch!(self, a => a.len())
    }
    fn population(&self) -> u64 {
        dispatch!(self, a => a.population())
    }
    fn receivers_with_rtt(&self) -> usize {
        dispatch!(self, a => a.receivers_with_rtt())
    }
    fn max_rtt(&self, initial_rtt: f64) -> f64 {
        dispatch!(self, a => a.max_rtt(initial_rtt))
    }
    fn clr_candidate(&self, initial_rtt: f64) -> Option<(ReceiverId, f64, f64)> {
        dispatch!(self, a => a.clr_candidate(initial_rtt))
    }
    fn observe_round_rate(&mut self, id: ReceiverId, echo_rate: f64) {
        dispatch!(self, a => a.observe_round_rate(id, echo_rate))
    }
    fn round_min(&self) -> Option<SuppressionEcho> {
        dispatch!(self, a => a.round_min())
    }
    fn reset_round(&mut self) {
        dispatch!(self, a => a.reset_round())
    }
    fn kind(&self) -> AggregatorKind {
        dispatch!(self, a => a.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(rate: f64, rtt: Option<f64>, own: bool) -> ReceiverInfo {
        ReceiverInfo {
            rate,
            rtt,
            has_own_rtt: own,
            last_report_timestamp: 0.0,
            last_report_at: 0.0,
            weight: 1,
        }
    }

    fn both() -> [Aggregator; 2] {
        [
            Aggregator::new(AggregatorKind::Reference),
            Aggregator::new(AggregatorKind::Incremental),
        ]
    }

    #[test]
    fn f64_key_is_order_preserving() {
        let values = [-10.5, -1e-12, 0.0, 1e-12, 0.05, 0.5, 1.0, 1e9];
        for w in values.windows(2) {
            assert!(f64_key(w[0]) < f64_key(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn empty_aggregators_fall_back_to_initial_rtt() {
        for a in both() {
            assert_eq!(a.len(), 0);
            assert!(a.is_empty());
            assert_eq!(a.max_rtt(0.5), 0.5);
            assert!(a.clr_candidate(0.5).is_none());
            assert!(a.round_min().is_none());
        }
    }

    #[test]
    fn aggregates_match_between_implementations() {
        for mut a in both() {
            a.upsert(ReceiverId(1), info(50_000.0, Some(0.08), true));
            a.upsert(ReceiverId(2), info(f64::INFINITY, Some(0.30), false));
            a.upsert(ReceiverId(3), info(30_000.0, Some(0.05), true));
            assert_eq!(a.len(), 3);
            assert_eq!(a.receivers_with_rtt(), 2);
            // Receiver 2 lacks an own measurement: the 0.5 s initial RTT
            // stays in force and dominates its 0.3 s sender-side sample.
            assert_eq!(a.max_rtt(0.5), 0.5);
            assert_eq!(a.max_rtt(0.01), 0.30);
            let (id, rate, rtt) = a.clr_candidate(0.5).unwrap();
            assert_eq!((id, rate, rtt), (ReceiverId(3), 30_000.0, 0.05));
        }
    }

    #[test]
    fn upsert_replaces_and_remove_unindexes() {
        for mut a in both() {
            a.upsert(ReceiverId(1), info(50_000.0, Some(0.08), true));
            a.upsert(ReceiverId(1), info(90_000.0, Some(0.02), true));
            assert_eq!(a.len(), 1);
            assert_eq!(a.max_rtt(0.001), 0.02);
            assert_eq!(a.clr_candidate(0.5).unwrap().1, 90_000.0);
            assert!(a.remove(ReceiverId(1)));
            assert!(!a.remove(ReceiverId(1)));
            assert!(a.clr_candidate(0.5).is_none());
            assert_eq!(a.max_rtt(0.5), 0.5);
        }
    }

    #[test]
    fn clr_candidate_breaks_rate_ties_towards_lowest_id() {
        for mut a in both() {
            a.upsert(ReceiverId(9), info(10_000.0, Some(0.05), true));
            a.upsert(ReceiverId(2), info(10_000.0, Some(0.07), true));
            a.upsert(ReceiverId(5), info(10_000.0, Some(0.06), true));
            assert_eq!(a.clr_candidate(0.5).unwrap().0, ReceiverId(2));
        }
    }

    #[test]
    fn negative_zero_rates_tie_with_positive_zero() {
        // IEEE comparison says -0.0 == 0.0, so both implementations must
        // fall through to the id tie-break rather than ordering by sign bit.
        for mut a in both() {
            a.upsert(ReceiverId(5), info(-0.0, Some(0.05), true));
            a.upsert(ReceiverId(2), info(0.0, Some(0.05), true));
            assert_eq!(a.clr_candidate(0.5).unwrap().0, ReceiverId(2));
            // Removal must find the index entry despite the sign change.
            assert!(a.remove(ReceiverId(5)));
            assert!(a.remove(ReceiverId(2)));
            assert!(a.clr_candidate(0.5).is_none());
        }
    }

    #[test]
    fn round_minimum_keeps_first_on_ties_and_resets() {
        for mut a in both() {
            a.observe_round_rate(ReceiverId(1), f64::INFINITY);
            assert!(a.round_min().is_none(), "infinite rates are not echoed");
            a.observe_round_rate(ReceiverId(1), 40_000.0);
            a.observe_round_rate(ReceiverId(2), 40_000.0);
            assert_eq!(a.round_min().unwrap().receiver, ReceiverId(1));
            a.observe_round_rate(ReceiverId(3), 39_999.0);
            assert_eq!(a.round_min().unwrap().receiver, ReceiverId(3));
            a.reset_round();
            assert!(a.round_min().is_none());
        }
    }

    #[test]
    fn population_sums_weights_across_upserts_and_removals() {
        for mut a in both() {
            assert_eq!(a.population(), 0);
            a.upsert(ReceiverId(1), info(50_000.0, Some(0.08), true));
            let mut heavy = info(30_000.0, Some(0.05), true);
            heavy.weight = 125_000;
            a.upsert(ReceiverId(2), heavy.clone());
            assert_eq!(a.len(), 2);
            assert_eq!(a.population(), 125_001);
            // Replacing an entry replaces its weight, not adds to it.
            heavy.weight = 100;
            a.upsert(ReceiverId(2), heavy);
            assert_eq!(a.population(), 101);
            assert!(a.remove(ReceiverId(2)));
            assert_eq!(a.population(), 1);
            assert!(a.remove(ReceiverId(1)));
            assert_eq!(a.population(), 0);
        }
    }

    #[test]
    fn kind_round_trips() {
        assert_eq!(
            Aggregator::new(AggregatorKind::Reference).kind(),
            AggregatorKind::Reference
        );
        assert_eq!(
            Aggregator::new(AggregatorKind::Incremental).kind(),
            AggregatorKind::Incremental
        );
    }
}
