//! Figure 22 (beyond the paper): TFMCC under massive receiver churn, on the
//! parallel sweep runner.  Receiver sets sweep up to 10⁵ at paper scale.
//!
//! Shared CLI: `--quick` / `--paper` select the scale (overridden by the
//! `TFMCC_SCALE` environment variable), `--threads N` sizes the sweep
//! executor (results are byte-identical for any N), `--out FILE` writes the
//! figure as deterministic JSON and `--bench-out FILE` writes the run's
//! timing trajectory.

fn main() {
    tfmcc_experiments::cli::figure_main(tfmcc_experiments::churn_figs::fig22_churn);
}
