//! Standalone feedback-suppression machinery and Monte-Carlo round
//! simulation (paper Section 2.5, Figures 1–6).
//!
//! The full TFMCC protocol exercises feedback suppression inside complete
//! packet-level simulations, but the paper analyses the mechanism in
//! isolation: `n` receivers, each with a rate ratio, draw biased exponential
//! timers over a window `T`; a response suppresses later timers once it has
//! propagated (one network delay after it was sent).  This crate reproduces
//! that isolated analysis:
//!
//! * [`round::FeedbackRound`] simulates one feedback round and reports how
//!   many responses were sent, when the first one arrived and how close the
//!   best reported value came to the true minimum;
//! * [`cdf`] computes the timer CDFs plotted in Figure 1;
//! * the timer and cancellation logic itself is re-used from
//!   [`tfmcc_proto::feedback::FeedbackPlanner`], so the numbers measured here
//!   describe exactly the code the protocol runs.

// Enforced by tfmcc-lint rule U001: pure math/protocol logic, no unsafe.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod cdf;
pub mod round;

pub use aggregate::{
    aggregate_round, aggregate_timers, expected_min_uniform, round_min_rate, AggregateBin,
    AggregateResponse,
};
pub use cdf::{timer_cdf, TimerCdfPoint};
pub use round::{FeedbackRound, RoundOutcome, RoundReceiver};

pub use tfmcc_proto::feedback::{BiasMethod, FeedbackPlanner};
