//! Criterion benchmarks for the TFMCC reproduction (see the `benches/` directory).
