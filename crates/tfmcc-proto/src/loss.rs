//! Loss-event measurement (paper Section 2.3, Appendices A and B).
//!
//! The receiver aggregates packet losses into *loss events* (one or more
//! packets lost within one RTT), tracks the number of packets between
//! consecutive loss events (*loss intervals*) and computes the loss event
//! rate as the inverse of a weighted average over the most recent intervals.
//!
//! The module also implements the loss-history initialisation of Appendix B
//! (deriving a synthetic first interval from the receive rate at the first
//! loss) and the Appendix A/B adjustment of that synthetic interval once the
//! receiver obtains its first real RTT measurement.

use std::collections::VecDeque;
use std::hash::Hasher;

use tfmcc_model::throughput::mathis_loss_rate;

use crate::config::TfmccConfig;
use crate::step::{hash_f64, hash_opt_f64, StateFingerprint};

/// Result of processing one arriving data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossUpdate {
    /// A new loss event started while processing this packet.
    pub new_loss_event: bool,
    /// This was the very first loss event of the session; the caller should
    /// initialise the history via [`LossHistory::initialize_first_interval`].
    pub first_loss_event: bool,
    /// Number of packets detected as lost while processing this packet.
    pub packets_lost: u64,
}

/// Per-receiver loss-event history.
#[derive(Debug, Clone)]
pub struct LossHistory {
    history_len: usize,
    weights: Vec<f64>,
    packet_size: u32,
    /// Closed loss intervals, most recent first, in packets.
    intervals: VecDeque<f64>,
    /// Packets received since the start of the most recent loss event.
    open_interval: f64,
    /// Time at which the most recent loss event started.
    last_loss_event_at: Option<f64>,
    /// Next expected sequence number.
    expected_seq: Option<u64>,
    /// Arrival time of the most recently received in-order packet.
    last_arrival: Option<f64>,
    /// Number of intervals pushed since the synthetic first interval was
    /// created (None if no synthetic interval exists / it has aged out).
    synthetic_age: Option<usize>,
    /// Whether the synthetic interval was computed while the receiver was
    /// still using the configured initial RTT.
    synthetic_used_initial_rtt: bool,
    /// Counters.
    total_received: u64,
    total_lost: u64,
}

impl LossHistory {
    /// Creates an empty history using the weights and history length from
    /// `config`.
    pub fn new(config: &TfmccConfig) -> Self {
        LossHistory {
            history_len: config.loss_history_len,
            weights: TfmccConfig::loss_interval_weights(config.loss_history_len),
            packet_size: config.packet_size,
            // The ring never holds more than `history_len` intervals
            // (`push_interval` evicts), so this one allocation at
            // construction is the last one the loss path ever makes.
            intervals: VecDeque::with_capacity(config.loss_history_len + 1),
            open_interval: 0.0,
            last_loss_event_at: None,
            expected_seq: None,
            last_arrival: None,
            synthetic_age: None,
            synthetic_used_initial_rtt: false,
            total_received: 0,
            total_lost: 0,
        }
    }

    /// True once at least one loss event has been recorded.
    pub fn has_loss(&self) -> bool {
        !self.intervals.is_empty() || self.last_loss_event_at.is_some()
    }

    /// Total packets received.
    pub fn packets_received(&self) -> u64 {
        self.total_received
    }

    /// Total packets detected as lost.
    pub fn packets_lost(&self) -> u64 {
        self.total_lost
    }

    /// Raw loss fraction (lost / (lost + received)), for reporting only.
    pub fn raw_loss_fraction(&self) -> f64 {
        let total = self.total_lost + self.total_received;
        if total == 0 {
            0.0
        } else {
            self.total_lost as f64 / total as f64
        }
    }

    /// Processes an arriving data packet with sequence number `seqno` at time
    /// `now`, aggregating any detected losses into loss events using `rtt`
    /// as the aggregation window.
    pub fn on_packet(&mut self, seqno: u64, now: f64, rtt: f64) -> LossUpdate {
        let mut update = LossUpdate::default();
        let expected = match self.expected_seq {
            None => {
                // First packet of the session: start counting from here.
                self.expected_seq = Some(seqno + 1);
                self.last_arrival = Some(now);
                self.total_received += 1;
                self.open_interval += 1.0;
                return update;
            }
            Some(e) => e,
        };
        if seqno < expected {
            // Late or duplicate packet; it was already counted as lost.
            return update;
        }
        let gap = seqno - expected;
        if gap > 0 {
            let last_time = self.last_arrival.unwrap_or(now);
            for i in 0..gap {
                // Interpolate the loss time between the surrounding arrivals.
                let frac = (i + 1) as f64 / (gap + 1) as f64;
                let loss_time = last_time + frac * (now - last_time);
                self.total_lost += 1;
                let starts_new_event = match self.last_loss_event_at {
                    None => true,
                    Some(t) => loss_time - t > rtt,
                };
                if starts_new_event {
                    update.new_loss_event = true;
                    if self.last_loss_event_at.is_none() && self.intervals.is_empty() {
                        // Very first loss event: the packets counted so far do
                        // not reflect the loss rate (Appendix B); the caller
                        // initialises the history instead.
                        update.first_loss_event = true;
                    } else {
                        self.push_interval(self.open_interval);
                    }
                    self.open_interval = 0.0;
                    self.last_loss_event_at = Some(loss_time);
                }
            }
            update.packets_lost = gap;
        }
        self.total_received += 1;
        self.open_interval += 1.0;
        self.expected_seq = Some(seqno + 1);
        self.last_arrival = Some(now);
        update
    }

    fn push_interval(&mut self, interval: f64) {
        self.intervals.push_front(interval.max(1.0));
        if self.intervals.len() > self.history_len {
            self.intervals.pop_back();
        }
        if let Some(age) = self.synthetic_age.as_mut() {
            *age += 1;
            if *age >= self.history_len {
                self.synthetic_age = None;
            }
        }
    }

    /// Initialises the loss history after the first loss event (Appendix B).
    ///
    /// `receive_rate` is the rate at which data was arriving when the first
    /// loss occurred (≈ the bottleneck bandwidth; slowstart overshoots by at
    /// most a factor of two, hence the halving), `rtt` the RTT estimate in
    /// use, and `using_initial_rtt` whether that estimate is still the
    /// configured initial value (in which case the interval is adjusted again
    /// once a real measurement arrives).
    pub fn initialize_first_interval(
        &mut self,
        receive_rate: f64,
        rtt: f64,
        using_initial_rtt: bool,
    ) {
        let rate = (receive_rate / 2.0).max(f64::from(self.packet_size) / rtt);
        let p = mathis_loss_rate(f64::from(self.packet_size), rtt, rate).max(1e-8);
        let interval = (1.0 / p).max(1.0);
        self.intervals.clear();
        self.intervals.push_front(interval);
        self.synthetic_age = Some(0);
        self.synthetic_used_initial_rtt = using_initial_rtt;
    }

    /// Adjusts the synthetic first interval when the receiver obtains its
    /// first real RTT measurement (Appendix B): the interval computed with an
    /// overestimated initial RTT is too large by `(rtt_initial/rtt)²` under
    /// the simplified TCP equation.
    pub fn remodel_for_measured_rtt(&mut self, initial_rtt: f64, measured_rtt: f64) {
        if !self.synthetic_used_initial_rtt {
            return;
        }
        self.synthetic_used_initial_rtt = false;
        let Some(age) = self.synthetic_age else {
            return;
        };
        // The synthetic interval is the oldest of the `age + 1` intervals
        // that exist since it was pushed; it sits `age` positions from the
        // front.
        if let Some(slot) = self.intervals.get_mut(age) {
            let factor = (measured_rtt / initial_rtt).powi(2);
            *slot = (*slot * factor).max(1.0);
        }
    }

    /// Weighted average loss interval in packets (paper Section 2.3),
    /// including the open interval when that increases the average.
    ///
    /// Returns `None` until the first loss event has been recorded.
    pub fn average_loss_interval(&self) -> Option<f64> {
        if self.intervals.is_empty() {
            return None;
        }
        let closed = self.weighted_average(None);
        let with_open = self.weighted_average(Some(self.open_interval));
        Some(closed.max(with_open))
    }

    /// Weighted average over the closed intervals, optionally treating
    /// `open` as the most recent interval (shifting the rest by one).
    ///
    /// This runs (twice) on the receiver's per-packet path whenever the loss
    /// event rate is evaluated, so it iterates the ring in place — no
    /// scratch `Vec` — accumulating in the same order the historical
    /// collect-then-sum implementation did, which keeps the floating-point
    /// results bit-identical.
    fn weighted_average(&self, open: Option<f64>) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (v, w) in open
            .into_iter()
            .chain(self.intervals.iter().copied())
            .take(self.history_len)
            .zip(self.weights.iter())
        {
            num += v * w;
            den += w;
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Loss event rate `p` (inverse of the average loss interval), or 0 while
    /// no loss has been observed.
    pub fn loss_event_rate(&self) -> f64 {
        match self.average_loss_interval() {
            Some(avg) if avg > 0.0 => (1.0 / avg).min(1.0),
            _ => 0.0,
        }
    }

    /// The closed intervals, most recent first (for diagnostics and tests).
    pub fn intervals(&self) -> impl Iterator<Item = f64> + '_ {
        self.intervals.iter().copied()
    }

    /// Packets received since the most recent loss event started.
    pub fn open_interval(&self) -> f64 {
        self.open_interval
    }
}

impl StateFingerprint for LossHistory {
    /// Hashes everything that influences future loss-rate computation.  The
    /// `weights` table is a pure function of `history_len` and the
    /// `total_received` / `total_lost` counters are observational
    /// ([`raw_loss_fraction`](Self::raw_loss_fraction) only), so both are
    /// excluded.
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        h.write_usize(self.history_len);
        h.write_u32(self.packet_size);
        h.write_usize(self.intervals.len());
        for v in &self.intervals {
            hash_f64(h, *v);
        }
        hash_f64(h, self.open_interval);
        hash_opt_f64(h, self.last_loss_event_at);
        match self.expected_seq {
            Some(s) => {
                h.write_u8(1);
                h.write_u64(s);
            }
            None => h.write_u8(0),
        }
        hash_opt_f64(h, self.last_arrival);
        match self.synthetic_age {
            Some(a) => {
                h.write_u8(1);
                h.write_usize(a);
            }
            None => h.write_u8(0),
        }
        h.write_u8(self.synthetic_used_initial_rtt as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> LossHistory {
        LossHistory::new(&TfmccConfig::default())
    }

    /// Feeds `n` consecutive packets starting at `seq`, one per `dt` seconds.
    fn feed(h: &mut LossHistory, seq: &mut u64, t: &mut f64, n: u64, dt: f64, rtt: f64) {
        for _ in 0..n {
            h.on_packet(*seq, *t, rtt);
            *seq += 1;
            *t += dt;
        }
    }

    #[test]
    fn no_loss_means_zero_rate() {
        let mut h = history();
        let (mut seq, mut t) = (0u64, 0.0);
        feed(&mut h, &mut seq, &mut t, 100, 0.01, 0.1);
        assert!(!h.has_loss());
        assert_eq!(h.loss_event_rate(), 0.0);
        assert_eq!(h.average_loss_interval(), None);
        assert_eq!(h.packets_received(), 100);
        assert_eq!(h.packets_lost(), 0);
    }

    #[test]
    fn single_gap_is_first_loss_event() {
        let mut h = history();
        let (mut seq, mut t) = (0u64, 0.0);
        feed(&mut h, &mut seq, &mut t, 10, 0.01, 0.1);
        // Skip one packet.
        seq += 1;
        let upd = h.on_packet(seq, t, 0.1);
        assert!(upd.new_loss_event);
        assert!(upd.first_loss_event);
        assert_eq!(upd.packets_lost, 1);
        assert!(h.has_loss());
    }

    #[test]
    fn losses_within_one_rtt_form_one_event() {
        let mut h = history();
        let (mut seq, mut t) = (0u64, 0.0);
        feed(&mut h, &mut seq, &mut t, 10, 0.001, 0.5);
        h.initialize_first_interval(100_000.0, 0.5, false);
        // Lose packets 10, 12, 14 within a few milliseconds — one event.
        let mut events = 0;
        for present in [11u64, 13, 15] {
            let upd = h.on_packet(present, t, 0.5);
            t += 0.001;
            if upd.new_loss_event {
                events += 1;
            }
        }
        // First loss already initialised; the additional gaps fall within the
        // same RTT so no further events start.
        assert_eq!(events, 1);
        assert_eq!(h.packets_lost(), 3);
    }

    #[test]
    fn losses_farther_apart_than_rtt_form_separate_events() {
        let mut h = history();
        let rtt = 0.05;
        let (mut seq, mut t) = (0u64, 0.0);
        feed(&mut h, &mut seq, &mut t, 10, 0.01, rtt);
        // First loss.
        seq += 1;
        h.on_packet(seq, t, rtt);
        h.initialize_first_interval(100_000.0, rtt, false);
        seq += 1;
        t += 0.01;
        // 50 good packets, then another loss well beyond one RTT.
        feed(&mut h, &mut seq, &mut t, 50, 0.01, rtt);
        seq += 1; // skip
        let upd = h.on_packet(seq, t, rtt);
        assert!(upd.new_loss_event);
        assert!(!upd.first_loss_event);
        // The closed interval pushed should be about 51 packets.
        let first_interval = h.intervals().next().unwrap();
        assert!(
            (45.0..=55.0).contains(&first_interval),
            "interval {first_interval}"
        );
    }

    #[test]
    fn average_uses_weights_and_open_interval_rule() {
        let mut h = history();
        // Construct a known set of closed intervals by direct pushes.
        for v in [10.0, 20.0, 30.0] {
            h.push_interval(v);
        }
        // intervals (recent first): [30, 20, 10]; weights 5,5,5 -> avg = 20.
        let avg = h.average_loss_interval().unwrap();
        assert!((avg - 20.0).abs() < 1e-9, "avg {avg}");
        // A long open interval raises the average when included.
        h.open_interval = 100.0;
        let avg2 = h.average_loss_interval().unwrap();
        assert!(avg2 > avg);
        // A short open interval must not lower it.
        h.open_interval = 1.0;
        let avg3 = h.average_loss_interval().unwrap();
        assert!((avg3 - avg).abs() < 1e-9);
    }

    #[test]
    fn loss_event_rate_tracks_periodic_loss() {
        let mut h = history();
        let rtt = 0.01;
        let (mut seq, mut t) = (0u64, 0.0);
        // Lose every 100th packet over a long run.
        let mut first = true;
        for _ in 0..60 {
            feed(&mut h, &mut seq, &mut t, 99, 0.001, rtt);
            seq += 1; // drop one
            let upd = h.on_packet(seq, t, rtt);
            t += 0.001;
            seq += 1;
            if upd.first_loss_event && first {
                h.initialize_first_interval(1_000_000.0, rtt, false);
                first = false;
            }
        }
        let p = h.loss_event_rate();
        assert!(
            (0.008..=0.012).contains(&p),
            "expected ≈1% loss event rate, got {p}"
        );
    }

    #[test]
    fn history_is_bounded() {
        let mut h = history();
        for i in 0..100 {
            h.push_interval(i as f64 + 1.0);
        }
        assert_eq!(h.intervals().count(), 8);
    }

    #[test]
    fn initialization_uses_inverse_equation() {
        let mut h = history();
        let rtt = 0.05;
        // Receive rate 1 Mbit/s = 125000 B/s at first loss; half = 62500 B/s.
        h.initialize_first_interval(125_000.0, rtt, false);
        let p = h.loss_event_rate();
        let expected = mathis_loss_rate(1000.0, rtt, 62_500.0);
        assert!((p - expected).abs() < 1e-9, "p {p} vs expected {expected}");
    }

    #[test]
    fn remodel_shrinks_synthetic_interval() {
        let mut h = history();
        h.initialize_first_interval(125_000.0, 0.5, true);
        let before = h.intervals().next().unwrap();
        h.remodel_for_measured_rtt(0.5, 0.05);
        let after = h.intervals().next().unwrap();
        // Factor (0.05/0.5)^2 = 0.01.
        assert!(
            (after - before * 0.01).abs() < 1e-6 || after == 1.0,
            "before {before} after {after}"
        );
        assert!(after < before);
        // Remodelling twice has no further effect.
        h.remodel_for_measured_rtt(0.5, 0.01);
        let again = h.intervals().next().unwrap();
        assert_eq!(after, again);
    }

    #[test]
    fn remodel_ignores_interval_once_aged_out() {
        let mut h = history();
        h.initialize_first_interval(125_000.0, 0.5, true);
        for _ in 0..10 {
            h.push_interval(50.0);
        }
        // The synthetic interval has been pushed out of the history.
        let before: Vec<f64> = h.intervals().collect();
        h.remodel_for_measured_rtt(0.5, 0.05);
        let after: Vec<f64> = h.intervals().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn late_packets_are_ignored() {
        let mut h = history();
        let rtt = 0.05;
        h.on_packet(0, 0.0, rtt);
        h.on_packet(5, 0.1, rtt); // 1..4 lost
        let lost_before = h.packets_lost();
        let upd = h.on_packet(2, 0.15, rtt); // late arrival
        assert_eq!(upd.packets_lost, 0);
        assert_eq!(h.packets_lost(), lost_before);
    }

    #[test]
    fn raw_loss_fraction_reflects_counts() {
        let mut h = history();
        let rtt = 0.05;
        h.on_packet(0, 0.0, rtt);
        h.on_packet(1, 0.01, rtt);
        h.on_packet(4, 0.02, rtt); // 2 lost
        assert_eq!(h.packets_lost(), 2);
        assert_eq!(h.packets_received(), 3);
        assert!((h.raw_loss_fraction() - 0.4).abs() < 1e-12);
    }
}
