//! Run-level progress and timing: the material `BENCH_*.json` trajectories
//! are produced from.

use crate::json::Json;

/// Timing record of one executed sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Name of the sweep the point belongs to.
    pub sweep: String,
    /// Point index within the sweep.
    pub index: usize,
    /// The derived seed the point ran with.
    pub seed: u64,
    /// Wall-clock seconds the point took.
    pub secs: f64,
    /// Worker thread (0-based) that executed the point.
    pub worker: usize,
}

/// Everything a [`crate::SweepRunner`] executed: thread count, total wall
/// clock and the per-point records in point order.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Configured worker-thread count.
    pub threads: usize,
    /// Wall-clock seconds since the runner was created.
    pub wall_secs: f64,
    /// Per-point timing records.
    pub records: Vec<PointRecord>,
}

impl RunReport {
    /// Total compute time summed over points (≈ `wall_secs · threads` when
    /// the sweep parallelises well).
    pub fn busy_secs(&self) -> f64 {
        self.records.iter().map(|r| r.secs).sum()
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads".into(), Json::num(self.threads as f64)),
            ("wall_secs".into(), Json::num(self.wall_secs)),
            ("busy_secs".into(), Json::num(self.busy_secs())),
            ("points".into(), Json::num(self.records.len() as f64)),
            (
                "records".into(),
                Json::Arr(
                    self.records
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("sweep".into(), Json::str(&r.sweep)),
                                ("index".into(), Json::num(r.index as f64)),
                                ("seed".into(), Json::str(format!("{:#018x}", r.seed))),
                                ("secs".into(), Json::num(r.secs)),
                                ("worker".into(), Json::num(r.worker as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders a `BENCH_*.json` trajectory document: the named benchmark plus
    /// this report, ready to upload as a CI artifact.
    pub fn to_bench_json(&self, name: &str) -> String {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str(name)),
            ("report".into(), self.to_json()),
        ]);
        let mut s = doc.render();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            threads: 2,
            wall_secs: 1.5,
            records: vec![
                PointRecord {
                    sweep: "s".into(),
                    index: 0,
                    seed: 0xABCD,
                    secs: 0.5,
                    worker: 0,
                },
                PointRecord {
                    sweep: "s".into(),
                    index: 1,
                    seed: 0x1234,
                    secs: 1.0,
                    worker: 1,
                },
            ],
        }
    }

    #[test]
    fn busy_time_sums_points() {
        assert!((report().busy_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bench_json_contains_name_and_records() {
        let s = report().to_bench_json("sweep_fig07");
        assert!(s.starts_with('{') && s.ends_with("}\n"));
        assert!(s.contains(r#""name":"sweep_fig07""#));
        assert!(s.contains(r#""threads":2"#));
        assert!(s.contains(r#""seed":"0x000000000000abcd""#));
    }
}
