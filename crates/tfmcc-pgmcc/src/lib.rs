//! PGMCC — pragmatic general multicast congestion control (Rizzo, SIGCOMM
//! 2000), the single-rate comparator discussed in Section 5 of the TFMCC
//! paper.
//!
//! PGMCC selects the receiver with the worst network conditions as the group
//! representative (the *acker*) using the simplified TCP throughput model,
//! then runs a TCP-like window-based congestion control loop between the
//! sender and the acker: the acker acknowledges every packet, the window
//! opens per ACK and halves on loss, producing TCP's characteristic sawtooth.
//! Other receivers send occasional reports carrying their loss rate and RTT
//! so the sender can re-elect the acker when conditions change.
//!
//! The implementation here is intentionally at the same level of abstraction
//! as the paper's description: enough fidelity to compare smoothness and
//! fairness against TFMCC (the sawtooth versus equation-driven rate), not a
//! full PGM transport.

// Enforced by tfmcc-lint rule U001: pure math/protocol logic, no unsafe.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod acker;
pub mod receiver;
pub mod sender;

pub use acker::AckerTracker;
pub use receiver::PgmccReceiverAgent;
pub use sender::{PgmccSenderAgent, PgmccSenderStats};

/// Protocol messages exchanged by the PGMCC agents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PgmccMessage {
    /// Multicast data packet.
    Data {
        /// Sequence number.
        seq: u64,
        /// Sender timestamp for RTT measurement.
        timestamp: f64,
        /// Identifier of the current acker (receiver index), if any.
        acker: Option<u64>,
    },
    /// Acknowledgement from the acker (one per received data packet).
    Ack {
        /// Identifier of the acking receiver.
        receiver: u64,
        /// Highest in-order sequence number received plus one.
        cumulative: u64,
        /// Most recent sequence number received (for duplicate detection).
        latest: u64,
        /// Total number of sequence holes the acker has observed so far.
        /// The packet-level model never retransmits, so the cumulative
        /// point skips holes; this counter is how loss still reaches the
        /// sender's window (one halving per window of new holes).
        lost_total: u64,
        /// Echo of the data packet's timestamp.
        echo_timestamp: f64,
        /// The receiver's smoothed loss rate estimate.
        loss_rate: f64,
    },
    /// Occasional report from a non-acker receiver.
    Report {
        /// Identifier of the reporting receiver.
        receiver: u64,
        /// Echo of the most recent data timestamp (for sender-side RTT).
        echo_timestamp: f64,
        /// The receiver's smoothed loss rate estimate.
        loss_rate: f64,
    },
}

/// Wire size of ACK and report packets in bytes.
pub const CONTROL_PACKET_SIZE: u32 = 40;
