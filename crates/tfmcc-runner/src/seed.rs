//! Deterministic per-point seed derivation.
//!
//! Every sweep point gets its own RNG seed derived from the sweep's base
//! seed and the point's index.  The derivation is a pure function, so a
//! sweep produces identical results for any thread count and any execution
//! order, and two points of the same sweep never share a seed stream.

/// Derives the seed for point `index` of a sweep with the given `base` seed.
///
/// Uses the splitmix64 finalizer over `base + (index + 1) · φ64` (the 64-bit
/// golden-ratio constant).  splitmix64 is a bijection of the mixed input, so
/// distinct indices of the same sweep always map to distinct seeds.
///
/// This is the same derivation as `netsim::rng::stream_seed` (the simulator
/// uses it for per-link RNG streams); the two are kept byte-identical by a
/// cross-crate agreement test below rather than a dependency edge, so the
/// generic executor stays buildable without the simulator.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn seeds_are_distinct_within_a_sweep() {
        let mut seen = BTreeSet::new();
        for index in 0..10_000u64 {
            assert!(
                seen.insert(derive_seed(7, index)),
                "seed collision at index {index}"
            );
        }
    }

    #[test]
    fn seeds_are_stable_across_releases() {
        // Snapshot values: these must never change, or published experiment
        // results stop being reproducible.
        assert_eq!(derive_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(derive_seed(7, 0), 0x63CB_E1E4_5932_0DD7);
        assert_eq!(derive_seed(7, 1), 0x044C_3CD7_F43C_661C);
        assert_eq!(derive_seed(909, 42), 0x6FCD_E433_A9AA_1B3A);
    }

    #[test]
    fn different_bases_give_different_streams() {
        for index in 0..100u64 {
            assert_ne!(derive_seed(1, index), derive_seed(2, index));
        }
    }

    #[test]
    fn agrees_with_netsim_stream_seed() {
        // The workspace has exactly one stream-derivation contract; if one
        // side's constants ever change, this cross-crate check goes red even
        // when each crate's own snapshots were updated.
        for base in [0u64, 7, 909, u64::MAX] {
            for index in [0u64, 1, 2, 1000, u64::MAX / 2] {
                assert_eq!(
                    derive_seed(base, index),
                    netsim::rng::stream_seed(base, index)
                );
            }
        }
    }
}
