//! Feedback-aggregation microbench: the sender-side feedback workload
//! (receiver reports + data pacing + CLR elections) run with the scan-based
//! reference aggregator versus the ordered-index incremental one.  The
//! `feedback_10k/*` pair is the Criterion-tracked comparison at 10⁴ known
//! receivers; the authoritative 10⁵-receiver trajectory (and the ≥2×
//! regression gate) lives in the `BENCH_feedback.json` artifact written by
//! `sweep_bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tfmcc_experiments::feedback_bench::run_feedback_workload;
use tfmcc_proto::aggregator::AggregatorKind;

/// Criterion-sized workload: large enough that the O(N) reference scans
/// dominate, small enough for the single-iteration CI smoke.
const RECEIVERS: usize = 10_000;
const OPS: u64 = 2_000;

fn bench_feedback_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_10k");
    group.bench_function("incremental", |b| {
        b.iter(|| {
            black_box(run_feedback_workload(
                RECEIVERS,
                AggregatorKind::Incremental,
                OPS,
            ))
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            black_box(run_feedback_workload(
                RECEIVERS,
                AggregatorKind::Reference,
                OPS,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_feedback_aggregation);
criterion_main!(benches);
