//! Step-function traits and state fingerprinting for model checking.
//!
//! [`TfmccSender`] and [`TfmccReceiver`] are sans-I/O state machines, but
//! until this module their step functions were inherent methods only — any
//! harness that wanted to drive them generically (the bounded model checker
//! in `tfmcc-mc`, a future fuzz driver) had to name the concrete types.
//! This module makes the seam explicit:
//!
//! * [`SenderStep`] / [`ReceiverStep`] — the complete "one input, one
//!   output" contract an adapter needs to drive either endpoint without
//!   `netsim`: feed a packet or a clock reading, get back packets and timer
//!   deadlines.  Any harness written against these traits runs the real
//!   protocol code.
//! * [`StateFingerprint`] — a deterministic structural hash over the
//!   *semantic* state of an endpoint (every field that influences future
//!   behaviour; accumulated statistics are excluded).  Explicit-state model
//!   checkers deduplicate explored states by this fingerprint, so it must
//!   be stable across runs and identical for states that behave
//!   identically.  Floating-point fields hash their exact bit patterns —
//!   two states are "the same" only when they are bit-for-bit the same.
//!
//! The trait implementations delegate to the inherent methods; the
//! fingerprint implementations live next to each type's private fields (see
//! `sender.rs`, `receiver.rs`, `loss.rs`, `rtt.rs`, `rate_meter.rs`,
//! `aggregator.rs`, `feedback.rs`).
//!
//! [`TfmccSender`]: crate::sender::TfmccSender
//! [`TfmccReceiver`]: crate::receiver::TfmccReceiver

use std::hash::Hasher;

use crate::packets::{DataPacket, FeedbackPacket};
use crate::receiver::TfmccReceiver;
use crate::sender::TfmccSender;

/// The sender's step functions: everything an adapter (simulator binding,
/// UDP transport, model checker) needs to drive a TFMCC sender.
pub trait SenderStep {
    /// Processes a receiver report arriving at local time `now`.
    fn on_feedback(&mut self, now: f64, fb: &FeedbackPacket);
    /// Advances timers and rounds to local time `now` without sending.
    fn on_tick(&mut self, now: f64);
    /// Builds the header of the next data packet to transmit at `now`.
    fn next_data(&mut self, now: f64) -> DataPacket;
    /// Interval between data packets at the current rate, in seconds.
    fn packet_interval(&self) -> f64;
}

impl SenderStep for TfmccSender {
    fn on_feedback(&mut self, now: f64, fb: &FeedbackPacket) {
        TfmccSender::on_feedback(self, now, fb);
    }
    fn on_tick(&mut self, now: f64) {
        TfmccSender::on_tick(self, now);
    }
    fn next_data(&mut self, now: f64) -> DataPacket {
        TfmccSender::next_data(self, now)
    }
    fn packet_interval(&self) -> f64 {
        TfmccSender::packet_interval(self)
    }
}

/// The receiver's step functions: the complete driving contract for a TFMCC
/// receiver (data in, feedback and timer deadlines out).
pub trait ReceiverStep {
    /// Processes an arriving data packet; may return feedback to send
    /// immediately (the CLR reports without suppression).
    fn on_data(&mut self, now: f64, data: &DataPacket) -> Option<FeedbackPacket>;
    /// Fires the pending feedback timer; returns the report if it was still
    /// armed for the current round.
    fn on_timer(&mut self, now: f64) -> Option<FeedbackPacket>;
    /// The deadline of the pending feedback timer, if any.
    fn next_timer(&self) -> Option<f64>;
    /// Builds the explicit leave report.
    fn leave(&mut self, now: f64) -> FeedbackPacket;
}

impl ReceiverStep for TfmccReceiver {
    fn on_data(&mut self, now: f64, data: &DataPacket) -> Option<FeedbackPacket> {
        TfmccReceiver::on_data(self, now, data)
    }
    fn on_timer(&mut self, now: f64) -> Option<FeedbackPacket> {
        TfmccReceiver::on_timer(self, now)
    }
    fn next_timer(&self) -> Option<f64> {
        TfmccReceiver::next_timer(self)
    }
    fn leave(&mut self, now: f64) -> FeedbackPacket {
        TfmccReceiver::leave(self, now)
    }
}

/// Deterministic structural hashing of protocol state.
///
/// Implementations must feed every field that influences future behaviour
/// into `h`, in a fixed order, using exact bit patterns for floating-point
/// values ([`hash_f64`]).  Purely observational state (accumulated
/// statistics counters) is excluded so that states that will behave
/// identically hash identically.  Unordered containers must be hashed in a
/// canonical (sorted) order.
pub trait StateFingerprint {
    /// Feeds this value's semantic state into `h`.
    fn fingerprint<H: Hasher>(&self, h: &mut H);
}

/// Hashes an `f64` by its exact bit pattern (`-0.0` and `0.0` hash
/// differently; callers normalise first if they consider them equal).
pub fn hash_f64<H: Hasher>(h: &mut H, v: f64) {
    h.write_u64(v.to_bits());
}

/// Hashes an `Option<f64>` with a presence discriminant.
pub fn hash_opt_f64<H: Hasher>(h: &mut H, v: Option<f64>) {
    match v {
        Some(x) => {
            h.write_u8(1);
            hash_f64(h, x);
        }
        None => h.write_u8(0),
    }
}

impl StateFingerprint for DataPacket {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        h.write_u64(self.seqno);
        hash_f64(h, self.timestamp);
        hash_f64(h, self.current_rate);
        hash_f64(h, self.max_rtt);
        h.write_u64(self.feedback_round);
        h.write_u8(self.slowstart as u8);
        match self.clr {
            Some(id) => {
                h.write_u8(1);
                h.write_u64(id.0);
            }
            None => h.write_u8(0),
        }
        match &self.rtt_echo {
            Some(echo) => {
                h.write_u8(1);
                h.write_u64(echo.receiver.0);
                hash_f64(h, echo.echo_timestamp);
                hash_f64(h, echo.echo_delay);
            }
            None => h.write_u8(0),
        }
        match &self.suppression {
            Some(supp) => {
                h.write_u8(1);
                h.write_u64(supp.receiver.0);
                hash_f64(h, supp.rate);
            }
            None => h.write_u8(0),
        }
        h.write_u32(self.size);
    }
}

impl StateFingerprint for FeedbackPacket {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        h.write_u64(self.receiver.0);
        hash_f64(h, self.timestamp);
        hash_f64(h, self.echo_timestamp);
        hash_f64(h, self.echo_delay);
        hash_f64(h, self.calculated_rate);
        hash_f64(h, self.loss_event_rate);
        hash_f64(h, self.receive_rate);
        hash_f64(h, self.rtt);
        h.write_u8(self.has_rtt_measurement as u8);
        h.write_u64(self.feedback_round);
        h.write_u8(self.leaving as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TfmccConfig;
    use crate::packets::ReceiverId;

    fn fp<T: StateFingerprint>(value: &T) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        value.fingerprint(&mut h);
        h.finish()
    }

    #[test]
    fn traits_drive_the_state_machines() {
        let config = TfmccConfig::default();
        let mut sender: Box<dyn SenderStep> = Box::new(TfmccSender::new(config.clone()));
        let mut receiver = TfmccReceiver::new(ReceiverId(1), config);
        let data = sender.next_data(0.0);
        let dyn_receiver: &mut dyn ReceiverStep = &mut receiver;
        let fb = dyn_receiver.on_data(0.05, &data);
        assert!(fb.is_some() || dyn_receiver.next_timer().is_some());
        assert!(sender.packet_interval() > 0.0);
        let leave = dyn_receiver.leave(0.1);
        assert!(leave.leaving);
        sender.on_feedback(0.1, &leave);
        sender.on_tick(0.2);
    }

    #[test]
    fn identical_endpoints_fingerprint_identically() {
        let config = TfmccConfig::default();
        let a = TfmccSender::new(config.clone());
        let b = TfmccSender::new(config.clone());
        assert_eq!(fp(&a), fp(&b));
        let ra = TfmccReceiver::new(ReceiverId(7), config.clone());
        let rb = TfmccReceiver::new(ReceiverId(7), config.clone());
        assert_eq!(fp(&ra), fp(&rb));
        // A different id seeds a different RNG: distinct fingerprints.
        let rc = TfmccReceiver::new(ReceiverId(8), config);
        assert_ne!(fp(&ra), fp(&rc));
    }

    #[test]
    fn fingerprint_tracks_behavioural_state() {
        let config = TfmccConfig::default();
        let mut a = TfmccSender::new(config.clone());
        let b = TfmccSender::new(config);
        let before = fp(&a);
        assert_eq!(before, fp(&b));
        let _ = a.next_data(0.0);
        // Sending advanced the sequence number (and clock bookkeeping).
        assert_ne!(fp(&a), fp(&b));
    }

    #[test]
    fn clone_preserves_fingerprint() {
        let config = TfmccConfig::default();
        let mut r = TfmccReceiver::new(ReceiverId(3), config.clone());
        let mut s = TfmccSender::new(config);
        let mut now = 0.0;
        for _ in 0..20 {
            let d = s.next_data(now);
            let _ = r.on_data(now + 0.01, &d);
            now += 0.02;
        }
        assert_eq!(fp(&r), fp(&r.clone()));
        assert_eq!(fp(&s), fp(&s.clone()));
    }
}
