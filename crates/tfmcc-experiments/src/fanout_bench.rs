//! The multicast fan-out microbench workload, shared between the Criterion
//! bench (`bench/benches/fanout_microbench.rs`) and the `BENCH_fanout.json`
//! artifact written by `sweep_bench`.
//!
//! The workload is a 10⁴-receiver star behind congested tail circuits: a
//! CBR source multicasts at 4× the per-leg capacity while a tenth of the
//! receivers continuously toggle their group membership.  Run once in
//! [`FanoutMode::Shared`] (the zero-copy fan-out) and once in
//! [`FanoutMode::CloneReference`] (the seed's clone-based path, including
//! its per-send member-set clone and rebuild-from-scratch trees), the pair
//! of timings is the before/after measurement for the zero-copy refactor.

use std::time::Instant;

use netsim::prelude::*;

/// Receiver count of the standard workload.
pub const STANDARD_RECEIVERS: usize = 10_000;

/// Simulated seconds of the standard workload.
pub const STANDARD_SIM_SECS: f64 = 2.0;

/// Runs the fan-out workload and returns `(wall_seconds, packets_delivered,
/// events_processed)`.
pub fn run_fanout_workload(n: usize, mode: FanoutMode, sim_secs: f64) -> (f64, u64, u64) {
    let mut sim = Simulator::new(4242);
    sim.set_fanout_mode(mode);
    // Congested 100 kbit/s tail circuits with tiny queues: the fan-out and
    // membership machinery dominate, not payload serialization.
    let legs: Vec<StarLeg> = (0..n)
        .map(|i| {
            StarLeg::clean(12_500.0, 0.01 + 0.0005 * (i % 20) as f64)
                .with_queue(QueueDiscipline::drop_tail(4))
        })
        .collect();
    let star = star(&mut sim, &StarConfig::default(), &legs);
    let group = GroupId(1);
    let mut sinks = Vec::with_capacity(n);
    for (i, &node) in star.receivers.iter().enumerate() {
        let mut sink = GroupSink::new(group, 1.0);
        if i % 10 == 1 {
            // A tenth of the receivers churn on sub-second staggered cycles.
            sink = sink.churning(0.1 + 0.02 * (i % 7) as f64);
        }
        sinks.push(sim.add_agent(node, Port(5), Box::new(sink)));
    }
    // 500 kbit/s offered into 100 kbit/s legs: every send exercises the full
    // 10⁴-link replication fan-out.
    sim.add_agent(
        star.sender,
        Port(5),
        Box::new(CbrSource::new(
            Dest::Multicast {
                group,
                port: Port(5),
            },
            FlowId(1),
            1000,
            500_000.0,
            0.0,
        )),
    );
    let started = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let wall = started.elapsed().as_secs_f64();
    let delivered: u64 = sinks
        .iter()
        .map(|&s| sim.agent::<GroupSink>(s).unwrap().packets())
        .sum();
    (wall, delivered, sim.events_processed())
}

/// The paired measurement: the same workload in both fan-out modes.
#[derive(Debug, Clone, Copy)]
pub struct FanoutMeasurement {
    /// Receiver count of the workload.
    pub receivers: usize,
    /// Simulated seconds per run.
    pub sim_secs: f64,
    /// Wall seconds of the zero-copy shared fan-out.
    pub shared_secs: f64,
    /// Wall seconds of the clone-based reference fan-out.
    pub clone_secs: f64,
    /// Packets delivered to receivers (identical in both modes).
    pub delivered: u64,
}

impl FanoutMeasurement {
    /// Shared-mode delivery throughput divided by clone-mode throughput.
    pub fn speedup(&self) -> f64 {
        self.clone_secs / self.shared_secs.max(1e-12)
    }
}

/// Measures the workload at receiver count `n` in both modes, verifying the
/// two modes delivered identical packet counts.
pub fn measure_fanout(n: usize, sim_secs: f64) -> FanoutMeasurement {
    let (shared_secs, shared_delivered, shared_events) =
        run_fanout_workload(n, FanoutMode::Shared, sim_secs);
    let (clone_secs, clone_delivered, clone_events) =
        run_fanout_workload(n, FanoutMode::CloneReference, sim_secs);
    assert_eq!(
        shared_delivered, clone_delivered,
        "fan-out modes disagree on delivered packets"
    );
    assert_eq!(
        shared_events, clone_events,
        "fan-out modes disagree on event counts"
    );
    FanoutMeasurement {
        receivers: n,
        sim_secs,
        shared_secs,
        clone_secs,
        delivered: shared_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down measurement: the two modes must agree on delivery.
    /// Wall-clock ordering is only sanity-checked very loosely — timing
    /// assertions in unit tests go red on loaded machines; the real ≥2×
    /// claim lives in the bench-smoke `BENCH_fanout.json` artifact.
    #[test]
    fn fanout_modes_agree() {
        let m = measure_fanout(2000, 1.0);
        assert!(m.delivered > 0, "workload delivered nothing");
        assert!(
            m.speedup() > 0.5,
            "zero-copy fan-out catastrophically slower than the clone reference: {:.2}x",
            m.speedup()
        );
    }
}
