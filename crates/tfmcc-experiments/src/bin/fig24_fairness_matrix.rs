//! Figure 24 (beyond the paper): the cross-protocol fairness matrix —
//! TFMCC, PGMCC, TFRC and TCP in every pairing plus a four-way melee over
//! an AQM bottleneck, and the fig19 robustness shape at 10⁵ receivers.
//!
//! Shared CLI: `--quick` / `--paper` select the scale (overridden by the
//! `TFMCC_SCALE` environment variable), `--threads N` sizes the sweep
//! executor (results are byte-identical for any N), `--queue KIND` selects
//! the bottleneck queue discipline (`drop-tail`, `red`, `gentle-red` or
//! `codel`; overridden by `TFMCC_QUEUE`, default gentle-red), `--out FILE`
//! writes the figure as deterministic JSON and `--bench-out FILE` writes
//! the run's timing trajectory.

fn main() {
    tfmcc_experiments::cli::figure_main(tfmcc_experiments::fairness_matrix::fig24_fairness_matrix);
}
