//! Figure 23 (beyond the paper): inter-TFMCC fairness — K competing TFMCC
//! sessions over a shared bottleneck, on the parallel sweep runner.
//! Receiver populations total 10⁵ at paper scale.
//!
//! Shared CLI: `--quick` / `--paper` select the scale (overridden by the
//! `TFMCC_SCALE` environment variable), `--threads N` sizes the sweep
//! executor (results are byte-identical for any N), `--sessions K` pins the
//! session-count sweep to a single K (overridden by `TFMCC_SESSIONS`),
//! `--out FILE` writes the figure as deterministic JSON and
//! `--bench-out FILE` writes the run's timing trajectory.

fn main() {
    tfmcc_experiments::cli::figure_main(tfmcc_experiments::intersession_figs::fig23_intertfmcc);
}
