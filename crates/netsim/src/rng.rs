//! Deterministic seed-stream derivation.
//!
//! Every link owns its own RNG stream derived from the simulation seed and
//! the link's id, so the loss/RED draws of one link never depend on how many
//! other links or agents exist or in which order they act.  Adding an
//! unrelated link or agent to a scenario therefore leaves every existing
//! link's loss pattern untouched — the property the golden-output regression
//! tests pin down.

/// Derives the seed of `stream` from a root seed.
///
/// Uses the splitmix64 finalizer over `root + (stream + 1) · φ64` (the
/// 64-bit golden-ratio constant); splitmix64 is a bijection of the mixed
/// input, so distinct streams of the same root never collide.  The same
/// derivation (with the sweep-point index as the stream) is used by
/// `tfmcc-runner` for per-point seeds.
pub fn stream_seed(root: u64, stream: u64) -> u64 {
    let mut z = root.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn streams_are_distinct() {
        let mut seen = BTreeSet::new();
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(stream_seed(42, stream)),
                "stream collision at {stream}"
            );
        }
    }

    #[test]
    fn derivation_is_stable() {
        // Pinned snapshot: changing these values silently changes every
        // link's loss pattern and breaks published results.
        assert_eq!(stream_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(stream_seed(7, 0), 0x63CB_E1E4_5932_0DD7);
        assert_eq!(stream_seed(7, 1), 0x044C_3CD7_F43C_661C);
    }

    #[test]
    fn different_roots_give_different_streams() {
        for stream in 0..100u64 {
            assert_ne!(stream_seed(1, stream), stream_seed(2, stream));
        }
    }
}
