//! Packets, addresses and flow identifiers.
//!
//! The simulator is protocol-agnostic: a [`Packet`] carries routing metadata
//! (source address, destination, size, flow id) plus an opaque, cheaply
//! cloneable [`Payload`] that the protocol agents downcast to their own
//! header types.
//!
//! # Zero-copy representation
//!
//! A [`Packet`] is a thin handle (`Arc<PacketData>`): cloning it — which the
//! multicast fan-out does once per out-link and once per local subscriber —
//! is a single reference-count bump, no matter how many receivers a group
//! has.  The header fields are reached through `Deref`, so `packet.size`,
//! `packet.src` etc. read as before.  The simulator stamps `id`/`src`/
//! `sent_at` exactly once, at send time, while it still holds the only
//! reference (a free copy-on-write via [`Arc::make_mut`]); after that the
//! packet is immutable all the way to every receiver.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::time::SimTime;

/// Identifier of a node (host or router) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifier of an agent (protocol endpoint) attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// Identifier of a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Identifier of a flow, used for statistics attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A port number distinguishing multiple agents on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

/// A (node, port) pair identifying a protocol endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Address {
    /// Node the endpoint lives on.
    pub node: NodeId,
    /// Port the endpoint is bound to on that node.
    pub port: Port,
}

impl Address {
    /// Convenience constructor.
    pub fn new(node: NodeId, port: Port) -> Self {
        Self { node, port }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port.0)
    }
}

/// Destination of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Deliver to a single endpoint, forwarding hop by hop.
    Unicast(Address),
    /// Deliver to every member of a multicast group subscribed on `port`,
    /// replicating along the group's distribution tree.
    Multicast {
        /// Multicast group to fan out to.
        group: GroupId,
        /// Port the receivers are subscribed on.
        port: Port,
    },
}

/// Opaque protocol payload: an `Arc` to any `Send + Sync` value.
///
/// Cloning is cheap (reference count bump) which matters because multicast
/// forwarding clones packets at every branching point of the distribution
/// tree.
#[derive(Clone)]
pub struct Payload(Arc<dyn Any + Send + Sync>);

impl Payload {
    /// Wraps a protocol header/body value.
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        Payload(Arc::new(value))
    }

    /// An empty payload for pure filler traffic.
    pub fn empty() -> Self {
        Payload(Arc::new(()))
    }

    /// Attempts to view the payload as a `T`.
    pub fn downcast_ref<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// True if the payload is of type `T`.
    pub fn is<T: Any + Send + Sync>(&self) -> bool {
        self.0.is::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload(..)")
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

/// The header fields and payload of a packet.
///
/// Reached through [`Packet`]'s `Deref`; exists as its own type so the
/// simulator can share one allocation between all replicas of a multicast
/// packet.
#[derive(Debug, Clone)]
pub struct PacketData {
    /// Unique id assigned by the simulator when the packet is first sent.
    pub id: u64,
    /// Sending endpoint.
    pub src: Address,
    /// Destination endpoint or multicast group.
    pub dst: Dest,
    /// Size on the wire in bytes (headers included), used for serialization
    /// delay and queue accounting.
    pub size: u32,
    /// Flow this packet belongs to, for statistics.
    pub flow: FlowId,
    /// Simulation time at which the packet left the sending agent.
    pub sent_at: SimTime,
    /// Protocol payload.
    pub payload: Payload,
}

/// A packet in flight: a shared handle to one immutable [`PacketData`].
#[derive(Debug, Clone)]
pub struct Packet {
    data: Arc<PacketData>,
}

impl Deref for Packet {
    type Target = PacketData;
    fn deref(&self) -> &PacketData {
        &self.data
    }
}

impl Packet {
    /// Builds a packet ready to hand to [`crate::sim::Context::send`].
    ///
    /// `id` and `sent_at` are filled in by the simulator.
    pub fn new(src: Address, dst: Dest, size: u32, flow: FlowId, payload: Payload) -> Self {
        Packet {
            data: Arc::new(PacketData {
                id: 0,
                src,
                dst,
                size,
                flow,
                sent_at: SimTime::ZERO,
                payload,
            }),
        }
    }

    /// Stamps the send-time header fields.  Called by the simulator exactly
    /// once, before the packet enters the network; at that point the handle
    /// is still unique, so the copy-on-write is free.
    pub(crate) fn stamp(&mut self, id: u64, src: Address, sent_at: SimTime) {
        let data = Arc::make_mut(&mut self.data);
        data.id = id;
        data.src = src;
        data.sent_at = sent_at;
    }

    /// A copy with its own `PacketData` allocation (the payload `Arc` is
    /// still shared, as it always was).
    ///
    /// This is what every per-receiver clone cost before the zero-copy
    /// refactor; the clone-based reference fan-out path uses it so benches
    /// and equivalence tests can compare against the historical behaviour.
    pub fn deep_clone(&self) -> Packet {
        Packet {
            data: Arc::new(PacketData::clone(&self.data)),
        }
    }

    /// True if both handles point at the same `PacketData` allocation —
    /// i.e. the fan-out shared this packet instead of copying it.
    pub fn shares_data_with(&self, other: &Packet) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcasts_to_original_type() {
        #[derive(Debug, PartialEq)]
        struct Header {
            seq: u32,
        }
        let p = Payload::new(Header { seq: 7 });
        assert!(p.is::<Header>());
        assert_eq!(p.downcast_ref::<Header>().unwrap().seq, 7);
        assert!(p.downcast_ref::<u32>().is_none());
    }

    #[test]
    fn payload_clone_shares_value() {
        let p = Payload::new(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(q.downcast_ref::<Vec<u8>>().unwrap(), &vec![1, 2, 3]);
    }

    #[test]
    fn packet_construction_defaults() {
        let src = Address::new(NodeId(0), Port(1));
        let dst = Dest::Unicast(Address::new(NodeId(1), Port(2)));
        let pkt = Packet::new(src, dst, 1000, FlowId(3), Payload::empty());
        assert_eq!(pkt.id, 0);
        assert_eq!(pkt.size, 1000);
        assert_eq!(pkt.flow, FlowId(3));
        assert_eq!(pkt.src, src);
    }

    #[test]
    fn clone_shares_deep_clone_copies() {
        let src = Address::new(NodeId(0), Port(1));
        let mut pkt = Packet::new(src, Dest::Unicast(src), 100, FlowId(1), Payload::empty());
        pkt.stamp(42, src, SimTime::from_secs(1.5));
        let shared = pkt.clone();
        assert!(pkt.shares_data_with(&shared));
        let copied = pkt.deep_clone();
        assert!(!pkt.shares_data_with(&copied));
        assert_eq!(copied.id, 42);
        assert_eq!(copied.sent_at, SimTime::from_secs(1.5));
    }

    #[test]
    fn stamp_after_clone_does_not_alias() {
        let src = Address::new(NodeId(0), Port(1));
        let mut pkt = Packet::new(src, Dest::Unicast(src), 100, FlowId(1), Payload::empty());
        let before = pkt.clone();
        pkt.stamp(7, src, SimTime::from_secs(2.0));
        // Copy-on-write: the earlier clone still sees the unstamped header.
        assert_eq!(before.id, 0);
        assert_eq!(pkt.id, 7);
    }

    #[test]
    fn address_display() {
        let a = Address::new(NodeId(4), Port(9));
        assert_eq!(format!("{a}"), "n4:9");
    }
}
