//! Runner determinism, end to end: the same sweep must produce byte-identical
//! JSON results no matter how many worker threads execute it, and per-point
//! seeds must be distinct and stable.

use tfmcc_experiments::scaling_figs::fig07_scaling;
use tfmcc_experiments::{Scale, SweepRunner};
use tfmcc_runner::Sweep;

#[test]
fn fig07_json_is_byte_identical_for_1_and_8_threads() {
    let serial = fig07_scaling(&SweepRunner::new(1), Scale::Quick)
        .to_json()
        .render();
    let parallel = fig07_scaling(&SweepRunner::new(8), Scale::Quick)
        .to_json()
        .render();
    assert_eq!(serial, parallel);
    // And the CSV rendering (what the binaries print) matches too.
    let serial_csv = fig07_scaling(&SweepRunner::new(1), Scale::Quick).to_csv();
    let parallel_csv = fig07_scaling(&SweepRunner::new(8), Scale::Quick).to_csv();
    assert_eq!(serial_csv, parallel_csv);
}

#[test]
fn per_point_seeds_are_distinct_and_stable() {
    let sweep = Sweep::new("stability", 7, vec![(); 256]);
    let seeds: Vec<u64> = (0..sweep.len()).map(|i| sweep.seed_for(i)).collect();
    // Distinct.
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), seeds.len(), "seed collision in sweep");
    // Stable: pinned snapshot of the first seeds (splitmix64 over base 7).
    assert_eq!(seeds[0], 0x63CB_E1E4_5932_0DD7);
    assert_eq!(seeds[1], 0x044C_3CD7_F43C_661C);
    // Independent sweeps with the same base and index agree.
    let again = Sweep::new("other-name", 7, vec![0u8; 8]);
    assert_eq!(again.seed_for(3), seeds[3]);
}
