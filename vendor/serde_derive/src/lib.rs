//! Derive macros for the vendored `serde` marker traits.
//!
//! Each derive emits an empty impl of the corresponding marker trait for the
//! annotated type.  Only the forms the workspace actually uses are handled:
//! plain (non-generic) structs and enums, which is verified by the emitted
//! impl failing to compile otherwise.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
fn type_ident(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tree in input.clone() {
        if let TokenTree::Ident(ident) = tree {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

/// Derives the vendored `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_ident(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_ident(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
