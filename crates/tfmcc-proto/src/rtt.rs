//! Receiver-side round-trip-time estimation (paper Section 2.4).
//!
//! A receiver starts from a configured initial RTT (500 ms by default) or,
//! when synchronized clocks are available, from twice the measured one-way
//! delay plus the synchronization error.  Real measurements arrive whenever
//! the sender echoes one of the receiver's reports; between measurements the
//! estimate is updated from one-way delay changes observed on every data
//! packet (Section 2.4.3), with clock skew cancelling out.

use std::hash::Hasher;

use serde::{Deserialize, Serialize};

use crate::config::TfmccConfig;
use crate::step::{hash_f64, hash_opt_f64, StateFingerprint};

/// Smallest RTT the estimator will report, guarding divisions elsewhere.
pub const MIN_RTT: f64 = 1e-4;

/// Receiver-side RTT estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttEstimator {
    estimate: f64,
    has_measurement: bool,
    beta_clr: f64,
    beta_non_clr: f64,
    beta_one_way: f64,
    /// One-way delay from receiver to sender inferred at the last real
    /// measurement (includes clock skew, which cancels in later adjustments).
    owd_receiver_to_sender: Option<f64>,
    /// Estimate value at the time of the last real measurement, used to
    /// detect significant drift from one-way adjustments.
    estimate_at_last_measurement: f64,
}

impl RttEstimator {
    /// Creates an estimator initialised to the configured initial RTT.
    pub fn new(config: &TfmccConfig) -> Self {
        RttEstimator {
            estimate: config.initial_rtt,
            has_measurement: false,
            beta_clr: config.rtt_beta_clr,
            beta_non_clr: config.rtt_beta_non_clr,
            beta_one_way: config.rtt_beta_one_way,
            owd_receiver_to_sender: None,
            estimate_at_last_measurement: config.initial_rtt,
        }
    }

    /// Current RTT estimate in seconds.
    pub fn current(&self) -> f64 {
        self.estimate.max(MIN_RTT)
    }

    /// True once at least one real (echo-based) measurement has been made.
    pub fn has_measurement(&self) -> bool {
        self.has_measurement
    }

    /// Initialises the estimate from synchronized clocks (GPS/NTP,
    /// Section 2.4.1): RTT ≈ 2 · (one-way delay + worst-case sync error).
    ///
    /// This replaces the configured initial value but does not count as a
    /// real measurement.
    pub fn init_from_synchronized_clocks(&mut self, one_way_delay: f64, sync_error: f64) {
        if self.has_measurement {
            return;
        }
        self.estimate = (2.0 * (one_way_delay + sync_error)).max(MIN_RTT);
        self.estimate_at_last_measurement = self.estimate;
    }

    /// Incorporates a real RTT measurement.
    ///
    /// * `sample` — instantaneous RTT from the echoed report,
    /// * `is_clr` — whether this receiver currently is the CLR (selects the
    ///   EWMA weight: 0.05 for the CLR, 0.5 otherwise),
    /// * `one_way_sender_to_receiver` — the forward one-way delay observed on
    ///   the data packet carrying the echo (includes clock skew), used to
    ///   derive the reverse one-way delay for later adjustments.
    pub fn on_measurement(&mut self, sample: f64, is_clr: bool, one_way_sender_to_receiver: f64) {
        let sample = sample.max(MIN_RTT);
        if !self.has_measurement {
            self.estimate = sample;
            self.has_measurement = true;
        } else {
            let beta = if is_clr {
                self.beta_clr
            } else {
                self.beta_non_clr
            };
            self.estimate = beta * sample + (1.0 - beta) * self.estimate;
        }
        self.owd_receiver_to_sender = Some(sample - one_way_sender_to_receiver);
        self.estimate_at_last_measurement = self.estimate;
    }

    /// Updates the estimate from the forward one-way delay of a data packet
    /// received between real measurements (Section 2.4.3).
    ///
    /// Returns the updated estimate, or `None` if no real measurement exists
    /// yet (one-way adjustments need the reverse delay from a measurement).
    pub fn on_one_way_sample(&mut self, one_way_sender_to_receiver: f64) -> Option<f64> {
        let owd_back = self.owd_receiver_to_sender?;
        let sample = (owd_back + one_way_sender_to_receiver).max(MIN_RTT);
        self.estimate = self.beta_one_way * sample + (1.0 - self.beta_one_way) * self.estimate;
        Some(self.current())
    }

    /// Ratio of the current estimate to the estimate at the last real
    /// measurement — a value far from 1.0 indicates the RTT has drifted and a
    /// fresh measurement is desirable.
    pub fn drift_ratio(&self) -> f64 {
        if self.estimate_at_last_measurement <= 0.0 {
            1.0
        } else {
            self.estimate / self.estimate_at_last_measurement
        }
    }
}

impl StateFingerprint for RttEstimator {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        hash_f64(h, self.estimate);
        h.write_u8(self.has_measurement as u8);
        hash_f64(h, self.beta_clr);
        hash_f64(h, self.beta_non_clr);
        hash_f64(h, self.beta_one_way);
        hash_opt_f64(h, self.owd_receiver_to_sender);
        hash_f64(h, self.estimate_at_last_measurement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> RttEstimator {
        RttEstimator::new(&TfmccConfig::default())
    }

    #[test]
    fn starts_at_initial_rtt_without_measurement() {
        let e = estimator();
        assert_eq!(e.current(), 0.5);
        assert!(!e.has_measurement());
    }

    #[test]
    fn first_measurement_replaces_initial_value() {
        let mut e = estimator();
        e.on_measurement(0.08, false, 0.04);
        assert!(e.has_measurement());
        assert!((e.current() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn clr_smoothing_is_heavier_than_non_clr() {
        let mut clr = estimator();
        let mut other = estimator();
        clr.on_measurement(0.1, true, 0.05);
        other.on_measurement(0.1, false, 0.05);
        clr.on_measurement(0.2, true, 0.1);
        other.on_measurement(0.2, false, 0.1);
        // CLR: 0.05*0.2 + 0.95*0.1 = 0.105;  non-CLR: 0.5*0.2 + 0.5*0.1 = 0.15.
        assert!((clr.current() - 0.105).abs() < 1e-9);
        assert!((other.current() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn one_way_adjustment_requires_prior_measurement() {
        let mut e = estimator();
        assert!(e.on_one_way_sample(0.05).is_none());
        e.on_measurement(0.1, false, 0.05);
        assert!(e.on_one_way_sample(0.06).is_some());
    }

    #[test]
    fn one_way_adjustment_tracks_forward_delay_increase() {
        let mut e = estimator();
        // Measurement: RTT 100 ms, forward delay 50 ms (so reverse 50 ms).
        e.on_measurement(0.1, true, 0.05);
        // Forward delay jumps to 150 ms: instantaneous RTT becomes 200 ms.
        let mut last = e.current();
        for _ in 0..200 {
            last = e.on_one_way_sample(0.15).unwrap();
        }
        assert!(
            (0.18..=0.2001).contains(&last),
            "estimate should converge toward 200 ms, got {last}"
        );
        assert!(e.drift_ratio() > 1.5);
    }

    #[test]
    fn clock_skew_cancels_in_one_way_adjustments() {
        // Receiver clock is 1000 s ahead of the sender clock: forward one-way
        // delays appear as ~1000.05 s.  The adjustment must still produce the
        // true RTT because the skew enters the forward and reverse delays with
        // opposite signs.
        let skew = 1000.0;
        let mut e = estimator();
        e.on_measurement(0.1, false, skew + 0.05);
        // Reverse delay stored is 0.1 - (skew + 0.05) = -999.95 (meaningless
        // alone, fine in combination).
        let adjusted = e.on_one_way_sample(skew + 0.05).unwrap();
        assert!((adjusted - 0.1).abs() < 1e-9, "got {adjusted}");
    }

    #[test]
    fn synchronized_clock_initialisation() {
        let mut e = estimator();
        e.init_from_synchronized_clocks(0.03, 0.025);
        assert!((e.current() - 0.11).abs() < 1e-12);
        assert!(!e.has_measurement());
        // A later real measurement overrides it entirely.
        e.on_measurement(0.06, false, 0.03);
        assert!((e.current() - 0.06).abs() < 1e-12);
        // And synchronized init is ignored afterwards.
        e.init_from_synchronized_clocks(0.5, 0.5);
        assert!((e.current() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn estimate_never_below_minimum() {
        let mut e = estimator();
        e.on_measurement(0.0, false, 0.0);
        assert!(e.current() >= MIN_RTT);
    }
}
