//! Golden-output regression test: the quick-scale Figure 23 (inter-TFMCC
//! fairness) JSON is pinned byte for byte.
//!
//! The pinned file was captured when the multi-session `SessionManager`
//! landed (incremental feedback aggregation as the default sender path).
//! Any future change to the simulator core, the protocol, the session
//! layer, or the JSON rendering that alters this output must be deliberate:
//! regenerate with
//!
//! ```text
//! cargo run --release -p tfmcc-experiments --bin fig23_intertfmcc -- \
//!     --quick --threads 2 --out crates/tfmcc-experiments/tests/golden/fig23_quick.json
//! ```

use std::sync::Mutex;

use tfmcc_experiments::intersession_figs::fig23_intertfmcc;
use tfmcc_experiments::{Scale, SweepRunner};

const GOLDEN: &str = include_str!("golden/fig23_quick.json");

/// Serializes the two tests: both run full simulations whose scheduler is
/// chosen through the process-global `TFMCC_SCHEDULER` variable (and the
/// session count through `TFMCC_SESSIONS`).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn render_fig23() -> String {
    std::env::remove_var("TFMCC_SESSIONS");
    let fig = fig23_intertfmcc(&SweepRunner::new(2), Scale::Quick);
    let mut rendered = fig.to_json().render();
    rendered.push('\n');
    rendered
}

#[test]
fn fig23_quick_json_matches_golden() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("TFMCC_SCHEDULER");
    assert_eq!(
        render_fig23(),
        GOLDEN,
        "fig23 --quick output drifted from the pinned golden file"
    );
}

/// The calendar-queue scheduler must reproduce the pinned golden byte for
/// byte — the determinism contract of `netsim::events` applied to the
/// multi-session workload.
#[test]
fn fig23_quick_json_matches_golden_under_calendar_scheduler() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::set_var("TFMCC_SCHEDULER", "calendar");
    let rendered = render_fig23();
    std::env::remove_var("TFMCC_SCHEDULER");
    assert_eq!(
        rendered, GOLDEN,
        "fig23 --quick output under the calendar scheduler drifted from the pinned golden file"
    );
}
