//! Fixture tests: one known-bad snippet per rule, plus the negative space
//! (allowed layers, strings/comments, suppression semantics).  Every rule id
//! the linter ships must be caught here — if a rule rots, this file fails.

use tfmcc_lint::lint_source;

/// Shorthand: lint `src` as if it lived at `path`, return `(rule, line)`
/// pairs.
fn lint(path: &str, src: &str) -> Vec<(String, usize)> {
    let (findings, _) = lint_source(path, src);
    findings
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

// ---------------------------------------------------------------- D001 ----

#[test]
fn d001_hashmap_in_sim_visible_crate() {
    let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n";
    let got = lint("crates/netsim/src/sim.rs", src);
    assert_eq!(
        got,
        vec![("D001".to_string(), 1), ("D001".to_string(), 2)],
        "{got:?}"
    );
}

#[test]
fn d001_hashset_in_sim_visible_crate() {
    let got = lint(
        "crates/tfmcc-proto/src/aggregator.rs",
        "use std::collections::HashSet;\n",
    );
    assert_eq!(got, vec![("D001".to_string(), 1)]);
}

#[test]
fn d001_does_not_apply_outside_sim_visible_crates() {
    let src = "use std::collections::HashMap;\n";
    assert!(lint("crates/tfmcc-runner/src/exec.rs", src).is_empty());
    assert!(lint("crates/tfmcc-experiments/src/cli.rs", src).is_empty());
}

#[test]
fn d001_ignores_strings_comments_and_derive_hash() {
    let src = r##"
        // A HashMap would be wrong here.
        /* HashMap in block comment */
        #[derive(Hash, PartialEq)]
        struct K(u64);
        const NAME: &str = "HashMap";
        const RAW: &str = r#"HashSet"#;
    "##;
    assert!(lint("crates/netsim/src/sim.rs", src).is_empty());
}

// ---------------------------------------------------------------- D002 ----

#[test]
fn d002_instant_now_outside_timing_layer() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    let got = lint("crates/tfmcc-proto/src/sender.rs", src);
    assert_eq!(got, vec![("D002".to_string(), 1)]);
}

#[test]
fn d002_systemtime_outside_timing_layer() {
    let got = lint("crates/netsim/src/sim.rs", "use std::time::SystemTime;\n");
    assert_eq!(got, vec![("D002".to_string(), 1)]);
}

#[test]
fn d002_timing_layer_is_exempt() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert!(lint("crates/tfmcc-runner/src/exec.rs", src).is_empty());
    assert!(lint("crates/bench/benches/microbench.rs", src).is_empty());
    assert!(lint("examples/scale_probe.rs", src).is_empty());
    assert!(lint("crates/tfmcc-mc/src/bin/mc_check.rs", src).is_empty());
    assert!(lint("crates/tfmcc-mc/examples/tune.rs", src).is_empty());
}

#[test]
fn d002_instant_type_without_now_is_fine() {
    // Holding an `Instant` handed in by the timing layer is fine; *reading*
    // the wall clock is not.
    let src = "fn f(t: std::time::Instant) -> f64 { t.elapsed().as_secs_f64() }\n";
    assert!(lint("crates/tfmcc-proto/src/sender.rs", src).is_empty());
}

// ---------------------------------------------------------------- D003 ----

#[test]
fn d003_entropy_rng_is_banned_everywhere() {
    for path in [
        "crates/netsim/src/sim.rs",
        "crates/tfmcc-runner/src/exec.rs",
        "examples/quickstart.rs",
        "tests/integration.rs",
    ] {
        for bad in [
            "let mut r = rand::thread_rng();\n",
            "let r = SmallRng::from_entropy();\n",
            "let r = SmallRng::from_os_rng();\n",
            "use rand::rngs::OsRng;\n",
        ] {
            let got = lint(path, bad);
            assert_eq!(got, vec![("D003".to_string(), 1)], "{path}: {bad}");
        }
    }
}

#[test]
fn d003_seeded_rng_is_fine() {
    let src = "let mut r = SmallRng::seed_from_u64(stream_seed(root, 7));\n";
    assert!(lint("crates/netsim/src/sim.rs", src).is_empty());
}

// ---------------------------------------------------------------- D004 ----

#[test]
fn d004_float_keys_in_ordered_containers() {
    let cases = [
        "struct S { m: BTreeMap<f64, u64> }\n",
        "struct S { s: BTreeSet<(f64, u64)> }\n",
        "struct S { h: BinaryHeap<f32> }\n",
        "let s = BTreeSet::<f64>::new();\n",
    ];
    for src in cases {
        let got = lint("crates/tfmcc-agents/src/manager.rs", src);
        assert_eq!(got, vec![("D004".to_string(), 1)], "{src}");
    }
}

#[test]
fn d004_bit_keyed_indexes_are_fine() {
    let src = "struct S { idx: BTreeSet<(u64, ReceiverId)> }\n";
    assert!(lint("crates/tfmcc-proto/src/aggregator.rs", src).is_empty());
}

// ---------------------------------------------------------------- U001 ----

#[test]
fn u001_unsafe_without_safety_comment() {
    let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
    let got = lint("crates/netsim/src/sim.rs", src);
    assert_eq!(got, vec![("U001".to_string(), 1)]);
}

#[test]
fn u001_safety_comment_satisfies() {
    let src = "// SAFETY: guarded by the match above.\nfn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
    assert!(lint("crates/netsim/src/sim.rs", src).is_empty());
}

#[test]
fn u001_safety_comment_too_far_away_does_not_count() {
    let src = "// SAFETY: stale\n\n\n\n\nfn f() { unsafe { core::mem::zeroed::<u8>() } }\n";
    let got = lint("crates/netsim/src/sim.rs", src);
    assert_eq!(got, vec![("U001".to_string(), 6)]);
}

#[test]
fn u001_pure_crate_must_forbid_unsafe() {
    let got = lint("crates/tfmcc-model/src/lib.rs", "//! Pure math.\n");
    assert_eq!(got, vec![("U001".to_string(), 1)]);
    let ok = "//! Pure math.\n#![forbid(unsafe_code)]\n";
    assert!(lint("crates/tfmcc-model/src/lib.rs", ok).is_empty());
}

#[test]
fn u001_forbid_requirement_only_applies_to_lib_rs() {
    // Other modules of the pure crates inherit the crate-level forbid.
    assert!(lint("crates/tfmcc-model/src/throughput.rs", "fn f() {}\n").is_empty());
}

// ----------------------------------------------------- suppression / L001 ----

#[test]
fn reasoned_pragma_suppresses_same_line() {
    let src =
        "use std::collections::HashMap; // tfmcc-lint: allow(D001, reason = \"test fixture\")\n";
    let (findings, suppressed) = lint_source("crates/netsim/src/sim.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn reasoned_pragma_suppresses_next_line() {
    let src = "// tfmcc-lint: allow(D001, reason = \"membership probe, order never escapes\")\nuse std::collections::HashMap;\n";
    let (findings, suppressed) = lint_source("crates/netsim/src/sim.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn pragma_does_not_reach_two_lines_down() {
    let src =
        "// tfmcc-lint: allow(D001, reason = \"scope check\")\n\nuse std::collections::HashMap;\n";
    let got = lint("crates/netsim/src/sim.rs", src);
    assert_eq!(got, vec![("D001".to_string(), 3)]);
}

#[test]
fn pragma_only_suppresses_its_own_rule() {
    let src =
        "// tfmcc-lint: allow(D002, reason = \"wrong rule\")\nuse std::collections::HashMap;\n";
    let got = lint("crates/netsim/src/sim.rs", src);
    assert_eq!(got, vec![("D001".to_string(), 2)]);
}

#[test]
fn reasonless_pragma_is_an_error_and_does_not_suppress() {
    let src = "// tfmcc-lint: allow(D001)\nuse std::collections::HashMap;\n";
    let (findings, suppressed) = lint_source("crates/netsim/src/sim.rs", src);
    assert_eq!(suppressed, 0);
    // Sorted by position: the bad pragma (line 1) precedes the un-suppressed
    // finding it failed to cover (line 2).
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["L001", "D001"], "{findings:?}");
}

#[test]
fn unknown_rule_pragma_is_an_error() {
    let src = "// tfmcc-lint: allow(D042, reason = \"no such rule\")\n";
    let got = lint("crates/netsim/src/sim.rs", src);
    assert_eq!(got, vec![("L001".to_string(), 1)]);
}

#[test]
fn empty_reason_pragma_is_an_error() {
    let src = "// tfmcc-lint: allow(D001, reason = \"\")\nuse std::collections::HashMap;\n";
    let (findings, suppressed) = lint_source("crates/netsim/src/sim.rs", src);
    assert_eq!(suppressed, 0);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["L001", "D001"], "{findings:?}");
}

// ------------------------------------------------------------- spans ----

#[test]
fn findings_carry_accurate_spans() {
    let src = "\n\n    let m: HashMap<u64, u64> = HashMap::new();\n";
    let (findings, _) = lint_source("crates/netsim/src/sim.rs", src);
    assert_eq!(findings.len(), 2);
    assert_eq!((findings[0].line, findings[0].column), (3, 12));
    assert_eq!((findings[1].line, findings[1].column), (3, 32));
}

#[test]
fn multiple_rules_in_one_file_all_fire() {
    let src = "use std::collections::HashMap;\nlet t = Instant::now();\nlet r = thread_rng();\n";
    let got = lint("crates/tfmcc-feedback/src/round.rs", src);
    let rules: Vec<&str> = got.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(rules, vec!["D001", "D002", "D003"], "{got:?}");
}
