//! Quickstart: one TFMCC sender, three receivers, a single bottleneck.
//!
//! Builds the smallest meaningful multicast session in the simulator, runs it
//! for two simulated minutes and prints how the sending rate converges to the
//! bottleneck bandwidth, which receiver is the CLR, and the feedback volume.
//!
//! Run with `cargo run --example quickstart`.

use tfmcc::prelude::*;

fn main() {
    let mut sim = Simulator::new(7);

    // Topology: sender -> router -> three receivers, the slowest behind a
    // 1 Mbit/s link.
    let sender_node = sim.add_node("sender");
    let router = sim.add_node("router");
    sim.add_duplex_link(
        sender_node,
        router,
        12_500_000.0,
        0.005,
        QueueDiscipline::drop_tail(200),
    );
    let mut receiver_nodes = Vec::new();
    for (i, bw) in [1_250_000.0, 625_000.0, 125_000.0].iter().enumerate() {
        let r = sim.add_node(&format!("receiver-{i}"));
        sim.add_duplex_link(router, r, *bw, 0.02, QueueDiscipline::drop_tail(40));
        receiver_nodes.push(r);
    }

    // One call wires the whole TFMCC session.
    let specs: Vec<ReceiverSpec> = receiver_nodes
        .iter()
        .map(|&n| ReceiverSpec::always(n))
        .collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        sender_node,
        &PopulationSpec::packets(&specs),
    );

    // Run and report every 20 simulated seconds.
    println!("time_s,sending_rate_kbit,clr,slowstart");
    for step in 1..=6 {
        let t = step as f64 * 20.0;
        sim.run_until(SimTime::from_secs(t));
        let sender = session.sender_agent(&sim).protocol();
        println!(
            "{t:.0},{:.0},{:?},{}",
            sender.current_rate() * 8.0 / 1000.0,
            sender.clr(),
            sender.in_slowstart()
        );
    }

    println!();
    for (i, _) in receiver_nodes.iter().enumerate() {
        let agent = session.receiver_agent(&sim, i);
        println!(
            "receiver {}: avg {:.0} kbit/s over 60-120 s, loss event rate {:.4}, rtt {:.0} ms, feedback sent {}",
            i + 1,
            agent.meter().average_between(60.0, 120.0) * 8.0 / 1000.0,
            agent.protocol().loss_event_rate(),
            agent.protocol().rtt() * 1000.0,
            agent.protocol().stats().feedback_sent,
        );
    }
    println!(
        "\nThe slowest receiver (1 Mbit/s tail) limits the whole group: the CLR should be receiver 3 \
         and the sending rate should settle near 1 Mbit/s."
    );
}
