//! Preset tuning aid: prints exhaustive state counts and wall time for a
//! grid of candidate budgets, so preset sizes can be chosen empirically.
//!
//! Run with `cargo run --release -p tfmcc-mc --example tune`.

use std::time::Instant;

use tfmcc_mc::{explore, Limits, McConfig, McModel, Strategy};

fn main() {
    let base = McConfig::preset("smoke3").unwrap();
    let mut grid: Vec<(String, McConfig)> = Vec::new();
    for &max_time in &[0.1, 0.12, 0.15] {
        for &data in &[1u32] {
            for &in_flight in &[3usize, 4] {
                let mut c = base.clone();
                c.max_time = max_time;
                c.data_budget = data;
                c.max_in_flight = in_flight;
                grid.push((format!("T={max_time} data={data} fly={in_flight}"), c));
            }
        }
    }
    for (label, config) in grid {
        let model = McModel::new(config);
        let start = Instant::now();
        let out = explore(
            &model,
            Strategy::Dfs,
            Limits {
                max_states: 2_000_000,
                max_depth: usize::MAX,
            },
        );
        println!(
            "{label}: states={} dedup={} depth={} truncated={} violation={} {:.2}s",
            out.states_explored,
            out.dedup_hits,
            out.max_depth_seen,
            out.truncated,
            out.violation.is_some(),
            start.elapsed().as_secs_f64()
        );
    }
}
