//! The event-core microbench workload, shared between the Criterion bench
//! (`bench/benches/event_core_microbench.rs`) and the `BENCH_events.json`
//! trajectory written by `sweep_bench`.
//!
//! The workload replays the event-queue access pattern of a 10⁵-receiver
//! churn simulation directly against the [`EventQueue`] implementations: a
//! *hold model* with `pending` concurrent events (one outstanding
//! timer/arrival per receiver — the steady state of `fig22_churn` at
//! paper scale), where every pop schedules a replacement a short random
//! hold time ahead, and a quarter of the operations also schedule a
//! far-future decoy timer that is cancelled a few operations later (the
//! suppression-timer churn of TFMCC receivers).  With 10⁵ events in the
//! queue this is exactly the regime where the calendar queue's amortized
//! O(1) schedule/pop beats the binary heap's O(log n) sift.
//!
//! Both schedulers run the identical operation sequence; a checksum over
//! the popped `(seq)` stream asserts they popped the same events in the
//! same order, so the benchmark doubles as an equivalence check.

use std::time::Instant;

use netsim::events::{EventQueue, SchedulerKind};
use netsim::time::SimTime;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Concurrent event count of the standard workload (one outstanding event
/// per receiver of the 10⁵-receiver churn scenario).
pub const STANDARD_PENDING: usize = 100_000;

/// Pop/schedule operations of the standard workload.
pub const STANDARD_OPS: u64 = 1_000_000;

/// Runs the hold-model workload and returns `(wall_seconds, checksum)`.
/// The checksum folds every popped sequence number and is identical across
/// schedulers (asserted by [`measure_event_core`]).
pub fn run_event_workload(pending: usize, ops: u64, kind: SchedulerKind) -> (f64, u64) {
    let mut queue = kind.build::<u64>();
    let mut rng = SmallRng::seed_from_u64(0xEC0DE);
    let mut seq = 0u64;
    let schedule = |q: &mut dyn EventQueue<u64>, at: f64, seq: &mut u64| -> (f64, u64) {
        let s = *seq;
        *seq += 1;
        q.schedule(SimTime::from_secs(at), s, s);
        (at, s)
    };
    // Prefill: `pending` events inside one hold window — the steady state
    // of the model, where every receiver has exactly one outstanding
    // near-term timer or arrival.
    for _ in 0..pending {
        let at = rng.gen_range(0.0..0.01);
        schedule(queue.as_mut(), at, &mut seq);
    }
    let mut checksum = 0u64;
    let mut decoys: Vec<(f64, u64)> = Vec::with_capacity(16);
    let started = Instant::now();
    for op in 0..ops {
        let (time, s, _) = queue.pop().expect("hold model never empties");
        let now = time.as_secs();
        checksum = checksum.wrapping_mul(0x100_0000_01B3).wrapping_add(s);
        // Replacement: a short random hold keeps the queue at `pending`.
        let hold = rng.gen_range(1e-5..0.01);
        schedule(queue.as_mut(), now + hold, &mut seq);
        if op % 4 == 0 {
            // Decoy timer far in the future, cancelled a few ops later —
            // never popped, exercising tombstones / in-place removal.
            let decoy = schedule(queue.as_mut(), now + 50.0, &mut seq);
            decoys.push(decoy);
            if decoys.len() > 8 {
                let (at, s) = decoys.remove(0);
                queue.cancel(SimTime::from_secs(at), s);
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();
    (wall, checksum)
}

/// The paired measurement: the same workload under both schedulers.
#[derive(Debug, Clone, Copy)]
pub struct EventCoreMeasurement {
    /// Concurrent events held in the queue.
    pub pending: usize,
    /// Pop/schedule operations timed.
    pub ops: u64,
    /// Wall seconds under the binary-heap scheduler.
    pub heap_secs: f64,
    /// Wall seconds under the calendar-queue scheduler.
    pub calendar_secs: f64,
}

impl EventCoreMeasurement {
    /// Calendar event throughput divided by heap event throughput.
    pub fn speedup(&self) -> f64 {
        self.heap_secs / self.calendar_secs.max(1e-12)
    }

    /// Events per wall second under the heap scheduler.
    pub fn heap_events_per_sec(&self) -> f64 {
        self.ops as f64 / self.heap_secs.max(1e-12)
    }

    /// Events per wall second under the calendar scheduler.
    pub fn calendar_events_per_sec(&self) -> f64 {
        self.ops as f64 / self.calendar_secs.max(1e-12)
    }
}

/// Measures the workload at `pending` concurrent events under both
/// schedulers, asserting they popped identical event sequences.
pub fn measure_event_core(pending: usize, ops: u64) -> EventCoreMeasurement {
    let (heap_secs, heap_sum) = run_event_workload(pending, ops, SchedulerKind::Heap);
    let (calendar_secs, calendar_sum) = run_event_workload(pending, ops, SchedulerKind::Calendar);
    assert_eq!(
        heap_sum, calendar_sum,
        "schedulers popped different event sequences"
    );
    EventCoreMeasurement {
        pending,
        ops,
        heap_secs,
        calendar_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down measurement: the two schedulers must agree on the pop
    /// sequence.  Wall-clock ordering is only sanity-checked loosely —
    /// timing assertions in unit tests flake on loaded machines; the real
    /// ≥1.5× claim lives in the bench-smoke `BENCH_events.json` artifact.
    #[test]
    fn schedulers_agree_on_the_bench_workload() {
        let m = measure_event_core(5_000, 20_000);
        assert_eq!(m.pending, 5_000);
        assert!(m.heap_secs > 0.0 && m.calendar_secs > 0.0);
        assert!(
            m.speedup() > 0.2,
            "calendar queue catastrophically slower than the heap: {:.2}x",
            m.speedup()
        );
    }
}
