//! Closed-form quantities for *aggregate receiver populations* — the math
//! behind the hybrid packet/fluid simulation tier.
//!
//! A fluid population stands in for `count` receivers whose loss-event rates
//! and round-trip times follow given marginal distributions.  Instead of
//! simulating each receiver, the population is quantized into a small number
//! of *rate bins*: bin `k` takes the `(k + ½)/Q` quantile of both marginals
//! (a comonotone coupling — the lossiest receivers are also assumed to have
//! the longest RTTs, which is the conservative pairing for the minimum
//! calculated rate that drives TFMCC) and computes its calculated rate from
//! the TCP throughput equation ([`crate::padhye_throughput`], paper Eq. 1).
//!
//! From the quantized bins everything the sender-side feedback machinery
//! needs is available in closed form:
//!
//! * the distribution of calculated rates across the population
//!   ([`PopulationProfile::quantize`]),
//! * the probability that the population contains a CLR candidate — a
//!   receiver whose calculated rate undercuts a given threshold
//!   ([`clr_candidacy_probability`]),
//! * the expected number of un-suppressed feedback responses the population
//!   would contribute to a feedback round
//!   ([`expected_population_responses`], reusing the Figure-4 suppression
//!   integral).
//!
//! All rates are bytes per second, times are seconds, loss-event rates are
//! dimensionless fractions in `[0, 1)`.

use crate::feedback_expectation::expected_responses;
use crate::throughput::padhye_throughput;

/// A one-dimensional marginal distribution, described by its quantile
/// function.  Deliberately small: the hybrid tier needs deterministic
/// quantiles, not sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Every receiver shares the same value.
    Point(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Exponential with the given mean, shifted by `offset` (quantile
    /// `offset − mean·ln(1−q)`).  Useful for long-tailed RTT populations.
    Exponential {
        /// Additive offset (the distribution's minimum).
        offset: f64,
        /// Mean of the exponential part.
        mean: f64,
    },
}

impl Dist {
    /// The `q`-quantile of the distribution, `q` in `[0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile level must be in [0, 1)");
        match *self {
            Dist::Point(v) => v,
            Dist::Uniform { lo, hi } => lo + q * (hi - lo),
            Dist::Exponential { offset, mean } => offset - mean * (1.0 - q).ln(),
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Point(v) => v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { offset, mean } => offset + mean,
        }
    }

    /// Smallest value the distribution can produce.
    pub fn min(&self) -> f64 {
        match *self {
            Dist::Point(v) => v,
            Dist::Uniform { lo, .. } => lo,
            Dist::Exponential { offset, .. } => offset,
        }
    }

    /// Panics (naming the offending parameter) unless the distribution's
    /// parameters are finite and ordered.
    pub fn validate(&self, what: &str) {
        match *self {
            Dist::Point(v) => {
                assert!(v.is_finite(), "{what}: point value must be finite, got {v}");
            }
            Dist::Uniform { lo, hi } => {
                assert!(
                    lo.is_finite() && hi.is_finite() && lo <= hi,
                    "{what}: uniform bounds must be finite with lo <= hi, got [{lo}, {hi}]"
                );
            }
            Dist::Exponential { offset, mean } => {
                assert!(
                    offset.is_finite() && mean.is_finite() && mean >= 0.0,
                    "{what}: exponential needs finite offset and mean >= 0, \
                     got offset {offset}, mean {mean}"
                );
            }
        }
    }
}

/// The aggregate description of a fluid receiver population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationProfile {
    /// Number of receivers the population stands for.
    pub count: u64,
    /// Marginal distribution of per-receiver loss-event rates, in `[0, 1)`.
    pub loss: Dist,
    /// Marginal distribution of per-receiver RTTs, in seconds (positive).
    pub rtt: Dist,
    /// Number of quantile bins the population is quantized into.
    pub bins: usize,
}

/// One quantized slice of a population: `count` receivers modeled at the
/// bin's quantile loss rate and RTT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateBin {
    /// Receivers this bin stands for.
    pub count: u64,
    /// Loss-event rate at the bin's quantile.
    pub loss_rate: f64,
    /// RTT at the bin's quantile, seconds.
    pub rtt: f64,
    /// Calculated (TCP-equation) rate of the bin, bytes/s.
    pub rate: f64,
}

impl PopulationProfile {
    /// Validates the profile, panicking with a message naming the offending
    /// field.  The panics are part of the documented API surface (see the
    /// `population_api` test).
    pub fn validate(&self) {
        assert!(self.count > 0, "a fluid population must have count > 0");
        assert!(
            (1..=64).contains(&self.bins),
            "fluid population bins must be in 1..=64, got {}",
            self.bins
        );
        self.loss.validate("fluid loss distribution");
        self.rtt.validate("fluid rtt distribution");
        // Check the quantile range actually produced, not just parameters.
        for k in 0..self.bins {
            let q = (k as f64 + 0.5) / self.bins as f64;
            let p = self.loss.quantile(q);
            assert!(
                (0.0..1.0).contains(&p),
                "fluid loss distribution must stay within [0, 1), \
                 quantile {q:.3} gives {p}"
            );
            let rtt = self.rtt.quantile(q);
            assert!(
                rtt.is_finite() && rtt > 0.0,
                "fluid rtt distribution must stay positive and finite, \
                 quantile {q:.3} gives {rtt}"
            );
        }
    }

    /// Quantizes the population into [`RateBin`]s for the given packet size,
    /// ordered by ascending quantile (so descending calculated rate never
    /// holds in general, but the comonotone coupling makes the *last* bin
    /// the lowest-rate one).  Receiver counts differ by at most one across
    /// bins and sum exactly to `count`.
    pub fn quantize(&self, packet_size: f64) -> Vec<RateBin> {
        self.validate();
        let bins = self.bins.min(self.count as usize).max(1);
        let base = self.count / bins as u64;
        let extra = (self.count % bins as u64) as usize;
        (0..bins)
            .map(|k| {
                let q = (k as f64 + 0.5) / bins as f64;
                let loss_rate = self.loss.quantile(q);
                let rtt = self.rtt.quantile(q);
                let rate = if loss_rate <= 0.0 {
                    // Lossless receivers are limited by the sender, not the
                    // equation; treat their calculated rate as unbounded.
                    f64::INFINITY
                } else {
                    padhye_throughput(packet_size, rtt, loss_rate)
                };
                RateBin {
                    count: base + u64::from(k < extra),
                    loss_rate,
                    rtt,
                    rate,
                }
            })
            .collect()
    }
}

/// Fraction of a quantized population whose calculated rate is strictly
/// below `threshold` (the population's rate CDF evaluated at `threshold`).
pub fn rate_cdf(bins: &[RateBin], threshold: f64) -> f64 {
    let total: u64 = bins.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    let below: u64 = bins
        .iter()
        .filter(|b| b.rate < threshold)
        .map(|b| b.count)
        .sum();
    below as f64 / total as f64
}

/// Probability that at least one receiver of the population is a CLR
/// candidate, i.e. has a calculated rate below `threshold`:
/// `1 − (1 − F(threshold))^count`.
pub fn clr_candidacy_probability(bins: &[RateBin], threshold: f64) -> f64 {
    let total: u64 = bins.iter().map(|b| b.count).sum();
    let f = rate_cdf(bins, threshold);
    1.0 - (1.0 - f).powf(total as f64)
}

/// Expected number of un-suppressed feedback responses a population of `n`
/// would contribute to one feedback round, using the Figure-4 suppression
/// integral with window `t_max` and suppression propagation delay `delay`
/// (both in the same unit).
pub fn expected_population_responses(n: u64, n_estimate: f64, t_max: f64, delay: f64) -> f64 {
    expected_responses(n, n_estimate, t_max, delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(count: u64, bins: usize) -> PopulationProfile {
        PopulationProfile {
            count,
            loss: Dist::Uniform {
                lo: 0.001,
                hi: 0.01,
            },
            rtt: Dist::Uniform { lo: 0.04, hi: 0.12 },
            bins,
        }
    }

    #[test]
    fn quantile_functions_match_definitions() {
        assert_eq!(Dist::Point(3.0).quantile(0.7), 3.0);
        assert_eq!(Dist::Uniform { lo: 1.0, hi: 3.0 }.quantile(0.5), 2.0);
        let e = Dist::Exponential {
            offset: 1.0,
            mean: 2.0,
        };
        assert!((e.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!(e.quantile(0.9) > e.quantile(0.5));
        assert_eq!(e.mean(), 3.0);
    }

    #[test]
    fn bin_counts_sum_exactly() {
        for (count, bins) in [(10u64, 4usize), (1_000_000, 8), (3, 8), (7, 7)] {
            let q = profile(count, bins).quantize(1000.0);
            assert_eq!(q.iter().map(|b| b.count).sum::<u64>(), count);
            assert!(q.iter().all(|b| b.count > 0));
            // Counts are balanced to within one receiver.
            let min = q.iter().map(|b| b.count).min().unwrap();
            let max = q.iter().map(|b| b.count).max().unwrap();
            assert!(max - min <= 1, "count {count} bins {bins}: {min}..{max}");
        }
    }

    #[test]
    fn comonotone_coupling_makes_last_bin_slowest() {
        let q = profile(10_000, 8).quantize(1000.0);
        for w in q.windows(2) {
            assert!(w[1].loss_rate >= w[0].loss_rate);
            assert!(w[1].rtt >= w[0].rtt);
            assert!(w[1].rate <= w[0].rate);
        }
    }

    #[test]
    fn lossless_bins_have_unbounded_rate() {
        let p = PopulationProfile {
            count: 100,
            loss: Dist::Point(0.0),
            rtt: Dist::Point(0.1),
            bins: 4,
        };
        let q = p.quantize(1000.0);
        assert!(q.iter().all(|b| b.rate.is_infinite()));
    }

    #[test]
    fn candidacy_probability_monotone_in_threshold_and_count() {
        let q = profile(1000, 8).quantize(1000.0);
        let slow = q.last().unwrap().rate;
        let fast = q.first().unwrap().rate;
        let p_low = clr_candidacy_probability(&q, slow * 1.01);
        let p_high = clr_candidacy_probability(&q, fast * 1.01);
        assert!(p_low <= p_high);
        assert!((clr_candidacy_probability(&q, fast * 2.0) - 1.0).abs() < 1e-9);
        assert_eq!(clr_candidacy_probability(&q, slow * 0.5), 0.0);

        let big = profile(100_000, 8).quantize(1000.0);
        let small = profile(10, 8).quantize(1000.0);
        let t = q[4].rate;
        assert!(clr_candidacy_probability(&big, t) >= clr_candidacy_probability(&small, t));
    }

    #[test]
    fn rate_cdf_is_a_cdf() {
        let q = profile(1000, 8).quantize(1000.0);
        assert_eq!(rate_cdf(&q, 0.0), 0.0);
        assert_eq!(rate_cdf(&q, f64::INFINITY), 1.0);
        let mid = rate_cdf(&q, q[4].rate);
        assert!((0.0..=1.0).contains(&mid));
    }

    #[test]
    #[should_panic(expected = "count > 0")]
    fn zero_count_panics() {
        profile(0, 8).validate();
    }

    #[test]
    #[should_panic(expected = "bins must be in 1..=64")]
    fn zero_bins_panics() {
        profile(10, 0).validate();
    }

    #[test]
    #[should_panic(expected = "loss distribution must stay within [0, 1)")]
    fn out_of_range_loss_panics() {
        PopulationProfile {
            count: 10,
            loss: Dist::Uniform { lo: 0.5, hi: 1.5 },
            rtt: Dist::Point(0.1),
            bins: 4,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rtt distribution must stay positive")]
    fn non_positive_rtt_panics() {
        PopulationProfile {
            count: 10,
            loss: Dist::Point(0.01),
            rtt: Dist::Point(0.0),
            bins: 4,
        }
        .validate();
    }

    #[test]
    fn population_responses_reuse_suppression_integral() {
        let a = expected_population_responses(1000, 10_000.0, 4.0, 1.0);
        let b = crate::expected_responses(1000, 10_000.0, 4.0, 1.0);
        assert_eq!(a, b);
        assert!((1.0..=20.0).contains(&a));
    }
}
