//! Worst-case scenario search: simulated annealing over the churn / loss /
//! RTT / session-count / queue-discipline grids, looking for the
//! configurations with the *worst* inter-session fairness (lowest Jain
//! index) and the *slowest* CLR recovery after a departure.
//!
//! The bounded model checker (`tfmcc-mc`) proves small configurations
//! exhaustively; this driver covers the complementary regime — full
//! simulations, too large to enumerate — by searching the parameter space
//! instead of sweeping it uniformly.  Each annealing iteration proposes
//! [`CANDIDATES`] random neighbours of the current point (one grid dimension
//! mutated each), evaluates them in parallel on the [`SweepRunner`], greedily
//! picks the worst, and accepts or rejects it with the Metropolis rule under
//! a geometrically cooling temperature.  All randomness derives from the
//! base seed, and candidates are evaluated through the sweep runner in point
//! order, so the search is byte-identical for any thread count.
//!
//! Every simulation carries its own seed inside the [`Scenario`], so any
//! point the search visits can be written out as a `tfmcc-replay-v1` file
//! ([`to_replay`]) and re-executed bit-exactly later ([`replay_scenario`]) —
//! that is how worst cases found here become regression tests.  Set
//! `TFMCC_REPLAY_DIR` to make the search binary write the two worst-case
//! replays there.

use netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tfmcc_agents::manager::{SessionManager, SessionSpec};
use tfmcc_agents::population::PopulationSpec;
use tfmcc_agents::session::ReceiverSpec;
use tfmcc_mc::replay::Replay;
use tfmcc_runner::{Sweep, SweepRunner};

use crate::output::{Figure, Series};
use crate::scale::Scale;

/// Neighbour candidates proposed (and evaluated in parallel) per annealing
/// iteration.  A constant — not the thread count — so results do not depend
/// on the executor.
pub const CANDIDATES: usize = 4;

/// Geometric cooling factor per iteration.
const COOLING: f64 = 0.85;

/// Session-count grid.
const SESSIONS: &[usize] = &[1, 2, 3];
/// Receivers-per-session grid.
const RECEIVERS: &[usize] = &[2, 4, 6];
/// Bottleneck Bernoulli loss grid (both directions, so receiver reports and
/// leave announcements are droppable too).
const LOSS: &[f64] = &[0.0, 0.005, 0.01, 0.02, 0.05];
/// Bottleneck one-way propagation delay grid (seconds).
const DELAY: &[f64] = &[0.01, 0.02, 0.05, 0.1];
/// Churn grid: `(on_secs, off_secs)` duty cycles for the churning half of
/// each receiver population; `None` = static membership.
const CHURN: &[Option<(f64, f64)>] = &[None, Some((8.0, 4.0)), Some((4.0, 4.0)), Some((2.0, 2.0))];
/// Bottleneck queue-discipline grid: classic drop-tail plus the two AQM
/// variants from `netsim::queue`, so the search can probe whether
/// probabilistic early drops (gentle RED) or sojourn-based drops (CoDel)
/// open new worst cases.  Names match the `TFMCC_QUEUE` vocabulary.
const QUEUES: &[&str] = &["drop-tail", "gentle-red", "codel"];

/// Materialises a grid queue name as a bottleneck discipline (all at the
/// same 100-packet limit the search always used for drop-tail).
fn queue_discipline(name: &str) -> QueueDiscipline {
    match name {
        "gentle-red" => QueueDiscipline::red_gentle(100),
        "codel" => QueueDiscipline::codel(100),
        _ => QueueDiscipline::drop_tail(100),
    }
}

/// One point of the search space: grid indices plus the simulation seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Index into the session-count grid.
    pub sessions_idx: usize,
    /// Index into the receivers-per-session grid.
    pub receivers_idx: usize,
    /// Index into the loss grid.
    pub loss_idx: usize,
    /// Index into the delay grid.
    pub delay_idx: usize,
    /// Index into the churn grid.
    pub churn_idx: usize,
    /// Index into the queue-discipline grid.
    pub queue_idx: usize,
    /// The simulation seed (recorded in replays).
    pub seed: u64,
}

impl Scenario {
    /// Number of competing sessions.
    pub fn sessions(&self) -> usize {
        SESSIONS[self.sessions_idx]
    }
    /// Receivers per session.
    pub fn receivers(&self) -> usize {
        RECEIVERS[self.receivers_idx]
    }
    /// Bottleneck loss probability.
    pub fn loss(&self) -> f64 {
        LOSS[self.loss_idx]
    }
    /// Bottleneck one-way delay (seconds).
    pub fn delay(&self) -> f64 {
        DELAY[self.delay_idx]
    }
    /// Churn duty cycle, if any.
    pub fn churn(&self) -> Option<(f64, f64)> {
        CHURN[self.churn_idx]
    }
    /// Bottleneck queue-discipline name (`TFMCC_QUEUE` vocabulary).
    pub fn queue_name(&self) -> &'static str {
        QUEUES[self.queue_idx]
    }

    /// One-line human-readable description.
    pub fn describe(&self) -> String {
        format!(
            "K={} R={} loss={} delay={}s churn={:?} queue={} seed={}",
            self.sessions(),
            self.receivers(),
            self.loss(),
            self.delay(),
            self.churn(),
            self.queue_name(),
            self.seed
        )
    }
}

/// Deterministic metrics of one evaluated scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOutcome {
    /// Jain fairness index over the sessions' mean throughputs.
    pub jain: f64,
    /// Slowest observed CLR recovery (seconds a sender sat CLR-less after a
    /// departure before re-electing), worst over the sessions.
    pub clr_recovery: f64,
    /// Lowest per-session mean throughput (bytes/second).
    pub min_throughput: f64,
    /// Total CLR changes across the sessions.
    pub clr_changes: u64,
}

/// Runs one full simulation of `scenario` for `duration` seconds and
/// returns its metrics.  Pure: same scenario + duration → bit-identical
/// outcome.
pub fn evaluate_scenario(scenario: &Scenario, duration: f64) -> ScenarioOutcome {
    let k = scenario.sessions();
    let receivers = scenario.receivers();
    let mut sim = Simulator::new(scenario.seed);
    let left = sim.add_node("left");
    let right = sim.add_node("right");
    let (lr, rl) = sim.add_duplex_link(
        left,
        right,
        1_000_000.0, // 8 Mbit/s shared bottleneck
        scenario.delay(),
        queue_discipline(scenario.queue_name()),
    );
    if scenario.loss() > 0.0 {
        // Lossy in both directions: data packets on the way out, receiver
        // reports and leave announcements on the way back.
        sim.set_link_loss(lr, LossModel::Bernoulli { p: scenario.loss() });
        sim.set_link_loss(rl, LossModel::Bernoulli { p: scenario.loss() });
    }
    let mut manager = SessionManager::new();
    for session in 0..k {
        let sender = sim.add_node(&format!("s{session}"));
        sim.add_duplex_link(
            sender,
            left,
            1_250_000.0,
            0.005,
            QueueDiscipline::drop_tail(60),
        );
        let specs: Vec<ReceiverSpec> = (0..receivers)
            .map(|i| {
                let node = sim.add_node(&format!("r{session}_{i}"));
                sim.add_duplex_link(
                    right,
                    node,
                    1_250_000.0,
                    0.005 + 0.002 * (i % 5) as f64,
                    QueueDiscipline::drop_tail(60),
                );
                // Odd receivers churn (when the scenario churns at all);
                // receiver 0 always stays so every session keeps a member.
                match scenario.churn() {
                    Some((on, off)) if i % 2 == 1 => ReceiverSpec::always(node).churning(on, off),
                    _ => ReceiverSpec::always(node),
                }
            })
            .collect();
        manager.add_population_session(
            &mut sim,
            &SessionSpec::default().starting_at(session as f64 * 2.0),
            sender,
            &PopulationSpec::packets(&specs),
        );
    }
    sim.run_until(SimTime::from_secs(duration));

    let from = (duration * 0.3).max(k as f64 * 2.0 + 2.0);
    let to = duration - 1.0;
    let report = manager.report(&sim, from, to.max(from + 1.0));
    ScenarioOutcome {
        jain: report.jain_index(),
        clr_recovery: report
            .sessions
            .iter()
            .map(|s| s.sender_stats.max_clr_recovery_secs)
            .fold(0.0, f64::max),
        min_throughput: report.min_throughput(),
        clr_changes: report
            .sessions
            .iter()
            .map(|s| s.sender_stats.clr_changes)
            .sum(),
    }
}

/// What the search minimises.  Lower = "worse" for the protocol = better
/// for the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimise the Jain fairness index.
    WorstJain,
    /// Maximise the CLR recovery time (minimises its negation).
    SlowestClrRecovery,
}

impl Objective {
    /// Stable identifier for logs and replay files.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::WorstJain => "worst-jain",
            Objective::SlowestClrRecovery => "slowest-clr-recovery",
        }
    }

    fn score(&self, outcome: &ScenarioOutcome) -> f64 {
        match self {
            Objective::WorstJain => outcome.jain,
            Objective::SlowestClrRecovery => -outcome.clr_recovery,
        }
    }
}

/// One accepted-or-rejected annealing step, for the sweep log.
#[derive(Debug, Clone)]
pub struct SearchStep {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// The best candidate proposed this iteration.
    pub candidate: Scenario,
    /// Its metrics.
    pub outcome: ScenarioOutcome,
    /// Whether the Metropolis rule accepted it as the new current point.
    pub accepted: bool,
    /// Temperature at this step.
    pub temperature: f64,
}

/// Result of one annealing run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The objective searched.
    pub objective: Objective,
    /// The worst scenario found (by the objective).
    pub worst: Scenario,
    /// Its metrics.
    pub worst_outcome: ScenarioOutcome,
    /// The per-iteration log.
    pub log: Vec<SearchStep>,
}

/// Runs the simulated-annealing search for `objective`.
///
/// Deterministic in `(base_seed, duration, iterations)`; the thread count of
/// `runner` only affects wall time.
pub fn anneal(
    runner: &SweepRunner,
    objective: Objective,
    base_seed: u64,
    duration: f64,
    iterations: usize,
) -> SearchResult {
    let mut rng = SmallRng::seed_from_u64(base_seed);
    let mut current = Scenario {
        sessions_idx: SESSIONS.len() / 2,
        receivers_idx: RECEIVERS.len() / 2,
        loss_idx: LOSS.len() / 2,
        delay_idx: DELAY.len() / 2,
        churn_idx: CHURN.len() / 2,
        queue_idx: 0, // start from the classic drop-tail bottleneck
        seed: rng.gen::<u64>(),
    };
    let initial_outcome = evaluate_scenario(&current, duration);
    let mut current_score = objective.score(&initial_outcome);
    let mut worst = current;
    let mut worst_outcome = initial_outcome;
    let mut worst_score = current_score;
    let mut temperature = 1.0;
    let mut log = Vec::with_capacity(iterations);

    for iteration in 1..=iterations {
        // Propose CANDIDATES neighbours: mutate one grid dimension each and
        // re-seed the simulation, all from the search RNG.
        let candidates: Vec<Scenario> = (0..CANDIDATES)
            .map(|_| {
                let mut next = current;
                match rng.gen_range(0..6u32) {
                    0 => next.sessions_idx = rng.gen_range(0..SESSIONS.len()),
                    1 => next.receivers_idx = rng.gen_range(0..RECEIVERS.len()),
                    2 => next.loss_idx = rng.gen_range(0..LOSS.len()),
                    3 => next.delay_idx = rng.gen_range(0..DELAY.len()),
                    4 => next.churn_idx = rng.gen_range(0..CHURN.len()),
                    _ => next.queue_idx = rng.gen_range(0..QUEUES.len()),
                }
                next.seed = rng.gen::<u64>();
                next
            })
            .collect();
        let sweep = Sweep::new(
            format!("{}-{iteration}", objective.name()),
            base_seed ^ iteration as u64,
            candidates,
        );
        let outcomes = runner.run(&sweep, |pt| evaluate_scenario(pt.value, duration));

        // Greedily take the worst candidate of the batch...
        let (best_idx, best_outcome) = outcomes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                objective
                    .score(a)
                    .partial_cmp(&objective.score(b))
                    .expect("scores are never NaN")
            })
            .expect("CANDIDATES > 0");
        let candidate = sweep.points()[best_idx];
        let candidate_score = objective.score(best_outcome);

        // ...then Metropolis-accept it against the current point.
        let accepted = candidate_score < current_score
            || rng.gen::<f64>() < ((current_score - candidate_score) / temperature).exp();
        if accepted {
            current = candidate;
            current_score = candidate_score;
        }
        if candidate_score < worst_score {
            worst = candidate;
            worst_outcome = *best_outcome;
            worst_score = candidate_score;
        }
        log.push(SearchStep {
            iteration,
            candidate,
            outcome: *best_outcome,
            accepted,
            temperature,
        });
        temperature *= COOLING;
    }

    SearchResult {
        objective,
        worst,
        worst_outcome,
        log,
    }
}

/// Serialises a searched scenario (plus its expected metrics) as a
/// `tfmcc-replay-v1` file of kind `scenario`.
pub fn to_replay(
    objective: Objective,
    scenario: &Scenario,
    duration: f64,
    outcome: &ScenarioOutcome,
) -> Replay {
    let mut r = Replay::new("scenario");
    r.set("objective", objective.name());
    r.set("seed", &scenario.seed.to_string());
    r.set("sessions", &scenario.sessions().to_string());
    r.set("receivers", &scenario.receivers().to_string());
    r.set_f64_bits("loss", scenario.loss());
    r.set_f64_bits("delay", scenario.delay());
    match scenario.churn() {
        Some((on, off)) => {
            r.set_f64_bits("churn_on", on);
            r.set_f64_bits("churn_off", off);
        }
        None => r.set("churn", "none"),
    }
    r.set("queue", scenario.queue_name());
    r.set_f64_bits("duration", duration);
    r.set_f64_bits("expected_jain", outcome.jain);
    r.set_f64_bits("expected_recovery", outcome.clr_recovery);
    r
}

/// Re-executes a `scenario` replay and checks the recorded metrics
/// bit-exactly.  Returns the re-measured outcome, or a message naming the
/// first divergence.
pub fn replay_scenario(replay: &Replay) -> Result<ScenarioOutcome, String> {
    if replay.get("kind") != Some("scenario") {
        return Err("not a scenario replay".into());
    }
    let grid_index = |grid: &[f64], value: f64, what: &str| -> Result<usize, String> {
        grid.iter()
            .position(|g| g.to_bits() == value.to_bits())
            .ok_or_else(|| format!("{what} {value} is not on the search grid"))
    };
    let sessions: usize = replay
        .require("sessions")?
        .parse()
        .map_err(|e| format!("sessions: {e}"))?;
    let receivers: usize = replay
        .require("receivers")?
        .parse()
        .map_err(|e| format!("receivers: {e}"))?;
    let churn = match replay.get("churn") {
        Some("none") => None,
        _ => Some((
            replay.require_f64_bits("churn_on")?,
            replay.require_f64_bits("churn_off")?,
        )),
    };
    let scenario = Scenario {
        sessions_idx: SESSIONS
            .iter()
            .position(|&s| s == sessions)
            .ok_or_else(|| format!("session count {sessions} is not on the search grid"))?,
        receivers_idx: RECEIVERS
            .iter()
            .position(|&r| r == receivers)
            .ok_or_else(|| format!("receiver count {receivers} is not on the search grid"))?,
        loss_idx: grid_index(LOSS, replay.require_f64_bits("loss")?, "loss")?,
        delay_idx: grid_index(DELAY, replay.require_f64_bits("delay")?, "delay")?,
        churn_idx: CHURN
            .iter()
            .position(|&c| c == churn)
            .ok_or_else(|| format!("churn {churn:?} is not on the search grid"))?,
        // Replays recorded before the queue-discipline grid existed carry no
        // `queue` key; they were all drop-tail.
        queue_idx: {
            let queue = replay.get("queue").unwrap_or("drop-tail");
            QUEUES
                .iter()
                .position(|&q| q == queue)
                .ok_or_else(|| format!("queue '{queue}' is not on the search grid"))?
        },
        seed: replay
            .require("seed")?
            .parse()
            .map_err(|e| format!("seed: {e}"))?,
    };
    let duration = replay.require_f64_bits("duration")?;
    let outcome = evaluate_scenario(&scenario, duration);
    let expected_jain = replay.require_f64_bits("expected_jain")?;
    if outcome.jain.to_bits() != expected_jain.to_bits() {
        return Err(format!(
            "Jain index diverged from the recording: expected {expected_jain}, got {}",
            outcome.jain
        ));
    }
    let expected_recovery = replay.require_f64_bits("expected_recovery")?;
    if outcome.clr_recovery.to_bits() != expected_recovery.to_bits() {
        return Err(format!(
            "CLR recovery diverged from the recording: expected {expected_recovery}, got {}",
            outcome.clr_recovery
        ));
    }
    Ok(outcome)
}

/// The scenario-search "figure": runs both annealing objectives, reports
/// their trajectories and worst cases, and — when `TFMCC_REPLAY_DIR` is set
/// — writes the two worst-case replay files there.
pub fn scenario_search(runner: &SweepRunner, scale: Scale) -> Figure {
    let duration = scale.pick(20.0, 120.0);
    let iterations = scale.pick(4, 24);
    let base_seed = 0x5ca1ab1e;

    let mut fig = Figure::new(
        "scenario_search",
        "Worst-case scenario search: annealing over churn/loss/RTT/session/queue grids",
        "iteration",
        "objective value",
    );
    let mut notes = Vec::new();
    for objective in [Objective::WorstJain, Objective::SlowestClrRecovery] {
        let result = anneal(runner, objective, base_seed, duration, iterations);
        let series_points = result
            .log
            .iter()
            .map(|s| {
                let y = match objective {
                    Objective::WorstJain => s.outcome.jain,
                    Objective::SlowestClrRecovery => s.outcome.clr_recovery,
                };
                (s.iteration as f64, y)
            })
            .collect();
        fig.push_series(Series::new(objective.name(), series_points));
        notes.push(format!(
            "{}: {} -> jain={:.4} recovery={:.3}s ({} CLR changes)",
            objective.name(),
            result.worst.describe(),
            result.worst_outcome.jain,
            result.worst_outcome.clr_recovery,
            result.worst_outcome.clr_changes,
        ));
        if let Ok(dir) = std::env::var("TFMCC_REPLAY_DIR") {
            let replay = to_replay(objective, &result.worst, duration, &result.worst_outcome);
            let path = std::path::Path::new(&dir).join(format!("{}.replay", objective.name()));
            if let Err(err) = std::fs::write(&path, replay.render()) {
                eprintln!("warning: cannot write {}: {err}", path.display());
            }
        }
    }
    fig.note(notes.join("; "));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfmcc_runner::SweepRunner;

    fn tiny() -> Scenario {
        Scenario {
            sessions_idx: 1, // 2 sessions
            receivers_idx: 0,
            loss_idx: 2, // 1% loss
            delay_idx: 1,
            churn_idx: 2, // 4s on / 4s off
            queue_idx: 0, // drop-tail
            seed: 7,
        }
    }

    #[test]
    fn evaluation_is_bit_reproducible() {
        let a = evaluate_scenario(&tiny(), 15.0);
        let b = evaluate_scenario(&tiny(), 15.0);
        assert_eq!(a.jain.to_bits(), b.jain.to_bits());
        assert_eq!(a.clr_recovery.to_bits(), b.clr_recovery.to_bits());
        assert_eq!(a.clr_changes, b.clr_changes);
        assert!(a.jain > 0.0 && a.jain <= 1.0 + 1e-12);
        assert!(a.clr_recovery >= 0.0);
    }

    #[test]
    fn churn_produces_clr_vacancies_to_recover_from() {
        let out = evaluate_scenario(&tiny(), 15.0);
        // With churning receivers some departures must hit the CLR, so the
        // recovery metric is actually exercised.
        assert!(
            out.clr_changes > 0,
            "churn at 1% loss should force CLR changes"
        );
    }

    #[test]
    fn replay_round_trips_bit_exactly() {
        let scenario = tiny();
        let outcome = evaluate_scenario(&scenario, 15.0);
        let replay = to_replay(Objective::WorstJain, &scenario, 15.0, &outcome);
        let parsed = Replay::parse(&replay.render()).unwrap();
        let replayed = replay_scenario(&parsed).expect("replay must match bit-exactly");
        assert_eq!(replayed.jain.to_bits(), outcome.jain.to_bits());

        // A forged expectation must be caught.
        let mut forged = to_replay(Objective::WorstJain, &scenario, 15.0, &outcome);
        forged.set_f64_bits("expected_jain", outcome.jain + 0.25);
        let err = replay_scenario(&forged).unwrap_err();
        assert!(err.contains("Jain index diverged"), "{err}");
    }

    #[test]
    fn aqm_points_evaluate_and_replay_round_trip() {
        // A gentle-RED bottleneck point: still bit-reproducible, and the
        // replay carries the queue name so it re-executes on the same
        // discipline.  No random loss and no churn, so congestion alone
        // fills the queue deep enough for RED's early drops to matter.
        let scenario = Scenario {
            loss_idx: 0,
            churn_idx: 0,
            queue_idx: 1, // gentle-red
            ..tiny()
        };
        let a = evaluate_scenario(&scenario, 15.0);
        let b = evaluate_scenario(&scenario, 15.0);
        assert_eq!(a.jain.to_bits(), b.jain.to_bits());
        let drop_tail = evaluate_scenario(
            &Scenario {
                queue_idx: 0,
                ..scenario
            },
            15.0,
        );
        assert_ne!(
            (a.jain.to_bits(), a.min_throughput.to_bits()),
            (drop_tail.jain.to_bits(), drop_tail.min_throughput.to_bits()),
            "the queue dimension must actually reach the bottleneck"
        );
        let replay = to_replay(Objective::WorstJain, &scenario, 15.0, &a);
        assert_eq!(replay.get("queue"), Some("gentle-red"));
        let parsed = Replay::parse(&replay.render()).unwrap();
        let replayed = replay_scenario(&parsed).expect("AQM replay must match bit-exactly");
        assert_eq!(replayed.jain.to_bits(), a.jain.to_bits());
    }

    #[test]
    fn replays_without_a_queue_key_default_to_drop_tail() {
        // Replays recorded before the queue grid existed must keep
        // re-executing unchanged.
        let outcome = evaluate_scenario(&tiny(), 15.0);
        let replay = to_replay(Objective::WorstJain, &tiny(), 15.0, &outcome);
        let legacy: String = replay
            .render()
            .lines()
            .filter(|line| !line.starts_with("queue="))
            .map(|line| format!("{line}\n"))
            .collect();
        let parsed = Replay::parse(&legacy).unwrap();
        assert_eq!(parsed.get("queue"), None);
        let replayed = replay_scenario(&parsed).expect("legacy replay must still match");
        assert_eq!(replayed.jain.to_bits(), outcome.jain.to_bits());
    }

    #[test]
    fn anneal_is_thread_count_invariant() {
        let serial = anneal(&SweepRunner::new(1), Objective::WorstJain, 99, 10.0, 2);
        let parallel = anneal(&SweepRunner::new(4), Objective::WorstJain, 99, 10.0, 2);
        assert_eq!(serial.worst, parallel.worst);
        assert_eq!(
            serial.worst_outcome.jain.to_bits(),
            parallel.worst_outcome.jain.to_bits()
        );
        assert_eq!(serial.log.len(), 2);
        for (a, b) in serial.log.iter().zip(&parallel.log) {
            assert_eq!(a.candidate, b.candidate);
            assert_eq!(a.accepted, b.accepted);
        }
    }
}
