//! Reusable evaluation topologies.
//!
//! The TFMCC paper's experiments use three families of topology:
//!
//! * a **single-bottleneck dumbbell** (paper Figure 8): `n` senders and `n`
//!   receivers attached by fast access links to two routers joined by one
//!   bottleneck link;
//! * a **star**: one sender behind a router with an individual (possibly
//!   lossy, possibly slow) link per receiver — used for the responsiveness
//!   experiments (Sections 4.2–4.3) and the tail-circuit scenario of
//!   Figure 10;
//! * simple **two-node** point-to-point setups for unit tests and unicast
//!   baselines.
//!
//! The builders here create the nodes/links and return the node ids so that
//! agents can be attached by the caller.

use crate::link::LossModel;
use crate::packet::{LinkId, NodeId};
use crate::queue::QueueDiscipline;
use crate::sim::Simulator;

/// Handle to a dumbbell topology (paper Figure 8).
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// Router on the sender side.
    pub left_router: NodeId,
    /// Router on the receiver side.
    pub right_router: NodeId,
    /// Sender hosts, one per flow.
    pub senders: Vec<NodeId>,
    /// Receiver hosts, one per flow.
    pub receivers: Vec<NodeId>,
    /// Bottleneck link in the sender→receiver direction.
    pub bottleneck_forward: LinkId,
    /// Bottleneck link in the receiver→sender direction.
    pub bottleneck_reverse: LinkId,
}

/// Parameters of a dumbbell topology.
#[derive(Debug, Clone)]
pub struct DumbbellConfig {
    /// Number of sender/receiver host pairs.
    pub pairs: usize,
    /// Bottleneck bandwidth in bytes/second.
    pub bottleneck_bandwidth: f64,
    /// Bottleneck one-way propagation delay in seconds.
    pub bottleneck_delay: f64,
    /// Bottleneck queue discipline.
    pub bottleneck_queue: QueueDiscipline,
    /// Access-link bandwidth in bytes/second (should exceed the bottleneck).
    pub access_bandwidth: f64,
    /// Access-link one-way delay in seconds.
    pub access_delay: f64,
}

impl Default for DumbbellConfig {
    fn default() -> Self {
        DumbbellConfig {
            pairs: 2,
            bottleneck_bandwidth: 1_000_000.0, // 8 Mbit/s
            bottleneck_delay: 0.02,
            bottleneck_queue: QueueDiscipline::drop_tail(50),
            access_bandwidth: 12_500_000.0, // 100 Mbit/s
            access_delay: 0.002,
        }
    }
}

/// Builds a dumbbell topology in `sim`.
pub fn dumbbell(sim: &mut Simulator, cfg: &DumbbellConfig) -> Dumbbell {
    assert!(cfg.pairs >= 1, "a dumbbell needs at least one pair");
    let left_router = sim.add_node("router-left");
    let right_router = sim.add_node("router-right");
    let (bottleneck_forward, bottleneck_reverse) = sim.add_duplex_link(
        left_router,
        right_router,
        cfg.bottleneck_bandwidth,
        cfg.bottleneck_delay,
        cfg.bottleneck_queue.clone(),
    );
    let mut senders = Vec::with_capacity(cfg.pairs);
    let mut receivers = Vec::with_capacity(cfg.pairs);
    for i in 0..cfg.pairs {
        let s = sim.add_node(&format!("sender-{i}"));
        let r = sim.add_node(&format!("receiver-{i}"));
        sim.add_duplex_link(
            s,
            left_router,
            cfg.access_bandwidth,
            cfg.access_delay,
            QueueDiscipline::drop_tail(1000),
        );
        sim.add_duplex_link(
            right_router,
            r,
            cfg.access_bandwidth,
            cfg.access_delay,
            QueueDiscipline::drop_tail(1000),
        );
        senders.push(s);
        receivers.push(r);
    }
    Dumbbell {
        left_router,
        right_router,
        senders,
        receivers,
        bottleneck_forward,
        bottleneck_reverse,
    }
}

/// Per-receiver leg of a star topology.
#[derive(Debug, Clone)]
pub struct StarLeg {
    /// Downstream bandwidth in bytes/second.
    pub bandwidth: f64,
    /// One-way propagation delay of this leg in seconds.
    pub delay: f64,
    /// Random loss applied on the downstream direction of this leg.
    pub downstream_loss: LossModel,
    /// Random loss applied on the upstream (receiver→sender) direction.
    pub upstream_loss: LossModel,
    /// Queue discipline of the leg (both directions).
    pub queue: QueueDiscipline,
    /// Upstream bandwidth override in bytes/second; `None` keeps the leg
    /// symmetric.  Models asymmetric feedback paths (paper Appendix D):
    /// receiver reports ride a much slower return circuit than the data.
    pub upstream_bandwidth: Option<f64>,
    /// Upstream one-way delay override in seconds; `None` keeps the leg
    /// symmetric.
    pub upstream_delay: Option<f64>,
}

impl StarLeg {
    /// A leg with the given bandwidth/delay and no random loss.
    pub fn clean(bandwidth: f64, delay: f64) -> Self {
        StarLeg {
            bandwidth,
            delay,
            downstream_loss: LossModel::None,
            upstream_loss: LossModel::None,
            queue: QueueDiscipline::drop_tail(50),
            upstream_bandwidth: None,
            upstream_delay: None,
        }
    }

    /// Adds Bernoulli loss with probability `p` on the downstream direction.
    pub fn with_downstream_loss(mut self, p: f64) -> Self {
        self.downstream_loss = LossModel::Bernoulli { p };
        self
    }

    /// Adds Bernoulli loss with probability `p` on the upstream direction.
    pub fn with_upstream_loss(mut self, p: f64) -> Self {
        self.upstream_loss = LossModel::Bernoulli { p };
        self
    }

    /// Overrides the queue discipline.
    pub fn with_queue(mut self, queue: QueueDiscipline) -> Self {
        self.queue = queue;
        self
    }

    /// Makes the leg asymmetric: the upstream (receiver→sender) direction
    /// gets its own bandwidth and delay — the feedback-path shape of the
    /// paper's robustness experiments.
    pub fn with_upstream_path(mut self, bandwidth: f64, delay: f64) -> Self {
        self.upstream_bandwidth = Some(bandwidth);
        self.upstream_delay = Some(delay);
        self
    }
}

/// Handle to a star topology.
#[derive(Debug, Clone)]
pub struct Star {
    /// The sender host.
    pub sender: NodeId,
    /// The hub router all legs attach to.
    pub hub: NodeId,
    /// One receiver host per leg.
    pub receivers: Vec<NodeId>,
    /// Downstream link (hub → receiver) per leg.
    pub downstream_links: Vec<LinkId>,
    /// Upstream link (receiver → hub) per leg.
    pub upstream_links: Vec<LinkId>,
    /// Link from the sender to the hub.
    pub sender_uplink: LinkId,
}

/// Parameters of the sender→hub link in a star topology.
#[derive(Debug, Clone)]
pub struct StarConfig {
    /// Sender access bandwidth in bytes/second.
    pub sender_bandwidth: f64,
    /// Sender access one-way delay in seconds.
    pub sender_delay: f64,
    /// Sender access queue.
    pub sender_queue: QueueDiscipline,
}

impl Default for StarConfig {
    fn default() -> Self {
        StarConfig {
            sender_bandwidth: 12_500_000.0, // 100 Mbit/s
            sender_delay: 0.001,
            sender_queue: QueueDiscipline::drop_tail(1000),
        }
    }
}

/// Builds a star topology in `sim` with one leg per entry of `legs`.
pub fn star(sim: &mut Simulator, cfg: &StarConfig, legs: &[StarLeg]) -> Star {
    assert!(!legs.is_empty(), "a star needs at least one leg");
    let sender = sim.add_node("sender");
    let hub = sim.add_node("hub");
    let (sender_uplink, _) = sim.add_duplex_link(
        sender,
        hub,
        cfg.sender_bandwidth,
        cfg.sender_delay,
        cfg.sender_queue.clone(),
    );
    let mut receivers = Vec::with_capacity(legs.len());
    let mut downstream_links = Vec::with_capacity(legs.len());
    let mut upstream_links = Vec::with_capacity(legs.len());
    for (i, leg) in legs.iter().enumerate() {
        let r = sim.add_node(&format!("receiver-{i}"));
        let down = sim.add_link(hub, r, leg.bandwidth, leg.delay, leg.queue.clone());
        let up = sim.add_link(
            r,
            hub,
            leg.upstream_bandwidth.unwrap_or(leg.bandwidth),
            leg.upstream_delay.unwrap_or(leg.delay),
            leg.queue.clone(),
        );
        sim.set_link_loss(down, leg.downstream_loss);
        sim.set_link_loss(up, leg.upstream_loss);
        receivers.push(r);
        downstream_links.push(down);
        upstream_links.push(up);
    }
    Star {
        sender,
        hub,
        receivers,
        downstream_links,
        upstream_links,
        sender_uplink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{unicast_to, CbrSource, Sink};
    use crate::packet::{Address, FlowId, Port};
    use crate::time::SimTime;

    #[test]
    fn dumbbell_limits_throughput_to_bottleneck() {
        let mut sim = Simulator::new(21);
        let cfg = DumbbellConfig {
            pairs: 1,
            bottleneck_bandwidth: 125_000.0, // 1 Mbit/s
            ..DumbbellConfig::default()
        };
        let d = dumbbell(&mut sim, &cfg);
        let sink = sim.add_agent(d.receivers[0], Port(1), Box::new(Sink::new(1.0)));
        let dst = unicast_to(Address::new(d.receivers[0], Port(1)));
        // Offer 4 Mbit/s into a 1 Mbit/s bottleneck.
        sim.add_agent(
            d.senders[0],
            Port(1),
            Box::new(CbrSource::new(dst, FlowId(1), 1000, 500_000.0, 0.0)),
        );
        sim.run_until(SimTime::from_secs(20.0));
        let s: &Sink = sim.agent(sink).unwrap();
        let avg = s.meter().average_between(5.0, 19.0);
        assert!(
            (115_000.0..=126_000.0).contains(&avg),
            "bottleneck-limited rate {avg} B/s"
        );
        assert!(sim.link_stats(d.bottleneck_forward).dropped_queue > 0);
    }

    #[test]
    fn star_legs_have_independent_loss() {
        let mut sim = Simulator::new(22);
        let legs = vec![
            StarLeg::clean(125_000.0, 0.01),
            StarLeg::clean(125_000.0, 0.01).with_downstream_loss(0.5),
        ];
        let st = star(&mut sim, &StarConfig::default(), &legs);
        let mut sinks = Vec::new();
        for (i, &r) in st.receivers.iter().enumerate() {
            sinks.push(sim.add_agent(r, Port(1), Box::new(Sink::new(1.0))));
            let dst = unicast_to(Address::new(r, Port(1)));
            sim.add_agent(
                st.sender,
                Port(10 + i as u16),
                Box::new(CbrSource::new(dst, FlowId(i as u64), 500, 50_000.0, 0.0)),
            );
        }
        sim.run_until(SimTime::from_secs(10.0));
        let clean: &Sink = sim.agent(sinks[0]).unwrap();
        let lossy: &Sink = sim.agent(sinks[1]).unwrap();
        let r_clean = clean.meter().average_between(1.0, 9.0);
        let r_lossy = lossy.meter().average_between(1.0, 9.0);
        assert!(r_clean > 45_000.0);
        assert!(
            r_lossy < r_clean * 0.65,
            "lossy leg should see roughly half: {r_lossy} vs {r_clean}"
        );
    }

    #[test]
    fn star_structure_sizes() {
        let mut sim = Simulator::new(23);
        let legs: Vec<StarLeg> = (0..5).map(|_| StarLeg::clean(1e6, 0.02)).collect();
        let st = star(&mut sim, &StarConfig::default(), &legs);
        assert_eq!(st.receivers.len(), 5);
        assert_eq!(st.downstream_links.len(), 5);
        assert_eq!(st.upstream_links.len(), 5);
    }

    #[test]
    fn asymmetric_star_leg_slows_only_the_upstream() {
        let mut sim = Simulator::new(25);
        let legs = vec![StarLeg::clean(1_000_000.0, 0.01).with_upstream_path(10_000.0, 0.15)];
        let st = star(&mut sim, &StarConfig::default(), &legs);
        let down = &sim.link(st.downstream_links[0]);
        let up = &sim.link(st.upstream_links[0]);
        assert_eq!(down.bandwidth, 1_000_000.0);
        assert_eq!(down.delay, 0.01);
        assert_eq!(up.bandwidth, 10_000.0);
        assert_eq!(up.delay, 0.15);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn dumbbell_requires_pairs() {
        let mut sim = Simulator::new(24);
        let cfg = DumbbellConfig {
            pairs: 0,
            ..DumbbellConfig::default()
        };
        let _ = dumbbell(&mut sim, &cfg);
    }
}
