//! Regenerates fig16_late_join_tcp of the TFMCC paper.  Pass `--quick` for a reduced
//! run suitable for smoke testing; the default is the paper's scale.

use tfmcc_experiments::scale::Scale;

fn main() {
    let scale = Scale::from_args();
    let figure = tfmcc_experiments::startup_figs::fig16_late_join_tcp(scale);
    print!("{}", figure.to_csv());
}
