//! Experiment scale selection.

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced receiver counts and durations, for tests and benches
    /// (seconds of wall clock).
    Quick,
    /// The paper's parameters (receiver sets up to 10⁴, simulations of
    /// several hundred simulated seconds) — minutes of wall clock.
    #[default]
    Paper,
}

impl Scale {
    /// Parses `--quick` / `--paper` style command line arguments, defaulting
    /// to [`Scale::Paper`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Picks between the quick and paper value of a parameter.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 10), 1);
        assert_eq!(Scale::Paper.pick(1, 10), 10);
        assert_eq!(Scale::default(), Scale::Paper);
    }
}
