//! The hybrid packet/fluid receiver tier: one agent stands for an entire
//! *population* of receivers.
//!
//! Packet-level receiver agents are exact but cost memory and events per
//! receiver; sessions of 10⁶ receivers are out of reach.  The fluid tier
//! replaces most of the population with a single [`FluidPopulationAgent`]
//! whose behaviour is computed analytically from `tfmcc-model`:
//!
//! * the population's `(count, loss distribution, RTT distribution)` is
//!   quantized into at most 64 rate bins
//!   ([`PopulationProfile::quantize`]), each bin carrying the calculated
//!   rate of its quantile receiver;
//! * per feedback round, every bin places one **deterministic**
//!   representative timer at the expected minimum of its members' biased
//!   exponential draws, and the suppression dynamics are evaluated in
//!   closed form ([`tfmcc_feedback::aggregate_round`]) — `O(bins)` work per
//!   round regardless of the receiver count;
//! * surviving bins report to the sender as
//!   [`PopulationReport`]s: ordinary feedback packets under synthetic
//!   receiver ids, weighted by the number of receivers the bin stands for,
//!   so [`TfmccSender::session_population`](tfmcc_proto::sender::TfmccSender::session_population)
//!   still counts every modeled receiver.
//!
//! The packet-level cohort — always including the current (or candidate)
//! CLR — runs unchanged through netsim; see
//! [`SessionManager::add_population_session`](crate::manager::SessionManager::add_population_session)
//! for the wiring and the CLR-cohort promotion rule.

use std::any::Any;

use netsim::packet::{Address, Dest, FlowId, GroupId, NodeId, Packet, Payload};
use netsim::sim::{Agent, Context};

use tfmcc_feedback::aggregate::{aggregate_round, aggregate_timers, AggregateBin};
use tfmcc_model::population::{Dist, PopulationProfile, RateBin};
use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::feedback::FeedbackPlanner;
use tfmcc_proto::packets::{DataPacket, FeedbackPacket, PopulationReport, ReceiverId};

/// Base of the synthetic [`ReceiverId`] space used by fluid population bins.
/// Packet-level receivers are numbered from 1, so any id at or above this
/// base is a fluid bin; population `p`'s bin `k` reports as
/// `FLUID_ID_BASE + (p << FLUID_ID_POP_SHIFT) + k`.
pub const FLUID_ID_BASE: u64 = 1 << 48;
/// Bit shift separating the population index from the bin index within the
/// synthetic id space (bins are capped at 64 ≪ 2¹⁶).
pub const FLUID_ID_POP_SHIFT: u32 = 16;

/// A fluid population attached to one node: `count` receivers whose loss and
/// RTT marginals are given as distributions, represented by a single agent.
#[derive(Debug, Clone)]
pub struct FluidSpec {
    /// Node the population's aggregate agent runs on (the multicast tree
    /// delivers one copy of the data stream to it).
    pub node: NodeId,
    /// Number of receivers the population stands for.
    pub count: u64,
    /// Marginal distribution of per-receiver loss-event rates, in `[0, 1)`.
    pub loss: Dist,
    /// Marginal distribution of per-receiver RTTs, in seconds.
    pub rtt: Dist,
    /// Number of quantile bins (1..=64) the population is quantized into.
    pub bins: usize,
}

impl FluidSpec {
    /// A population of `count` receivers with the default 8-bin
    /// quantization.
    pub fn new(node: NodeId, count: u64, loss: Dist, rtt: Dist) -> Self {
        FluidSpec {
            node,
            count,
            loss,
            rtt,
            bins: 8,
        }
    }

    /// Overrides the number of quantile bins.
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// The population's aggregate profile (validated on quantization).
    pub fn profile(&self) -> PopulationProfile {
        PopulationProfile {
            count: self.count,
            loss: self.loss,
            rtt: self.rtt,
            bins: self.bins,
        }
    }
}

/// One entry of a session's receiver population: either an exact
/// packet-level receiver or a fluid aggregate.
///
/// This is the unified surface the session builders accept — a session is
/// specified as a slice of `PopulationSpec`s, mixing the two tiers freely
/// (as long as at least one packet-level receiver anchors the CLR cohort).
#[derive(Debug, Clone)]
pub enum PopulationSpec {
    /// An exact packet-level receiver (join/leave/churn schedule included).
    Packet(crate::session::ReceiverSpec),
    /// A fluid population represented by one aggregate agent.
    Fluid(FluidSpec),
}

impl PopulationSpec {
    /// A packet-level receiver that participates for the whole simulation.
    pub fn packet(node: NodeId) -> Self {
        PopulationSpec::Packet(crate::session::ReceiverSpec::always(node))
    }

    /// A fluid population of `count` receivers with default quantization.
    pub fn fluid(node: NodeId, count: u64, loss: Dist, rtt: Dist) -> Self {
        PopulationSpec::Fluid(FluidSpec::new(node, count, loss, rtt))
    }

    /// Wraps a slice of packet-level receiver specs — the migration helper
    /// for call sites moving off the deprecated per-receiver entry points.
    pub fn packets(specs: &[crate::session::ReceiverSpec]) -> Vec<PopulationSpec> {
        specs.iter().map(|s| PopulationSpec::Packet(*s)).collect()
    }
}

/// Timer tokens encode `(generation, response index)`; the response index
/// fits in 6 bits because bins are capped at 64.
const TOKEN_STRIDE: u64 = 64;

/// Runs a fluid receiver population inside the simulator.
///
/// The agent joins the multicast group, tracks feedback rounds from the data
/// headers, and per round schedules the deterministic aggregate responses of
/// its quantized bins.  Its first observed round is a **census**: every bin
/// reports (unsuppressed) so the sender's aggregator learns the full rate
/// distribution and the population head-count; subsequent rounds apply the
/// closed-form suppression and typically produce a single report.
pub struct FluidPopulationAgent {
    profile: PopulationProfile,
    config: TfmccConfig,
    planner: FeedbackPlanner,
    bins: Vec<RateBin>,
    id_base: u64,
    sender_addr: Address,
    group: GroupId,
    flow: FlowId,
    flow_counter: String,
    current_round: Option<u64>,
    census_done: bool,
    /// `(bin index, weight)` of each response scheduled for the current
    /// round, indexed by the timer token's response slot.
    scheduled: Vec<(usize, u64)>,
    generation: u64,
    last_data_timestamp: f64,
    last_data_at: f64,
    last_sender_rate: f64,
    reports_sent: u64,
}

impl FluidPopulationAgent {
    /// Creates the agent for one fluid population.  `id_base` is the first
    /// synthetic receiver id (bin `k` reports as `id_base + k`); reports are
    /// unicast to `sender_addr` and tagged with `flow`.
    pub fn new(
        spec: &FluidSpec,
        config: TfmccConfig,
        id_base: u64,
        sender_addr: Address,
        group: GroupId,
        flow: FlowId,
    ) -> Self {
        let profile = spec.profile();
        profile.validate();
        let bins = profile.quantize(f64::from(config.packet_size));
        let planner = FeedbackPlanner::from_config(&config);
        let last_sender_rate = config.initial_rate();
        FluidPopulationAgent {
            profile,
            config,
            planner,
            bins,
            id_base,
            sender_addr,
            group,
            flow_counter: format!("tfmcc.population_reports.flow.{}", flow.0),
            flow,
            current_round: None,
            census_done: false,
            scheduled: Vec::new(),
            generation: 0,
            last_data_timestamp: 0.0,
            last_data_at: 0.0,
            last_sender_rate,
            reports_sent: 0,
        }
    }

    /// Number of receivers the population stands for.
    pub fn population(&self) -> u64 {
        self.profile.count
    }

    /// The quantized rate bins the agent reports from.
    pub fn bins(&self) -> &[RateBin] {
        &self.bins
    }

    /// Population-weighted reports sent so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// The lowest calculated rate any of the population's bins carries —
    /// what the population would pull the session down to if it held the
    /// CLR.  Infinite for an entirely lossless population.
    pub fn min_rate(&self) -> f64 {
        self.bins
            .iter()
            .map(|b| b.rate)
            .fold(f64::INFINITY, f64::min)
    }

    fn send_report(&mut self, ctx: &mut Context<'_>, bin_index: usize, weight: u64) {
        let now = ctx.now().as_secs();
        let bin = self.bins[bin_index];
        let fb = FeedbackPacket {
            receiver: ReceiverId(self.id_base + bin_index as u64),
            timestamp: now,
            echo_timestamp: self.last_data_timestamp,
            echo_delay: (now - self.last_data_at).max(0.0),
            calculated_rate: bin.rate,
            loss_event_rate: bin.loss_rate,
            receive_rate: self.last_sender_rate,
            rtt: bin.rtt,
            has_rtt_measurement: true,
            feedback_round: self.current_round.unwrap_or(0),
            leaving: false,
        };
        let pkt = Packet::new(
            ctx.addr(),
            Dest::Unicast(self.sender_addr),
            PopulationReport::WIRE_SIZE,
            self.flow,
            Payload::new(PopulationReport {
                feedback: fb,
                weight,
            }),
        );
        ctx.send(pkt);
        self.reports_sent += 1;
        ctx.stats().add("tfmcc.population_reports", 1.0);
        ctx.stats().add(&self.flow_counter, 1.0);
    }
}

impl Agent for FluidPopulationAgent {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.group);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token / TOKEN_STRIDE != self.generation {
            return; // stale timer from a superseded round
        }
        let slot = (token % TOKEN_STRIDE) as usize;
        let Some(&(bin_index, weight)) = self.scheduled.get(slot) else {
            return;
        };
        self.send_report(ctx, bin_index, weight);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(data) = packet.payload.downcast_ref::<DataPacket>() else {
            return;
        };
        let now = ctx.now().as_secs();
        self.last_data_timestamp = data.timestamp;
        self.last_data_at = now;
        self.last_sender_rate = data.current_rate;
        if self.current_round == Some(data.feedback_round) {
            return;
        }
        // A new feedback round: supersede any pending timers and lay out
        // this round's deterministic aggregate responses.
        self.current_round = Some(data.feedback_round);
        self.generation += 1;
        let sending_rate = data.current_rate.max(1.0);
        let window = self.config.feedback_window(data.max_rtt, sending_rate);
        let agg: Vec<AggregateBin> = self
            .bins
            .iter()
            .map(|b| AggregateBin {
                count: b.count,
                rate: b.rate,
                rtt: b.rtt,
            })
            .collect();
        let responses = if self.census_done {
            // Steady state: closed-form suppression; the echo of the first
            // response propagates back within roughly the maximum RTT.
            aggregate_round(&self.planner, &agg, sending_rate, window, data.max_rtt)
        } else {
            // First round: census — every bin reports so the sender learns
            // the full distribution and head-count.
            self.census_done = true;
            aggregate_timers(&self.planner, &agg, sending_rate, window)
        };
        self.scheduled.clear();
        for (slot, r) in responses.iter().enumerate() {
            self.scheduled.push((r.bin, r.weight));
            ctx.schedule(r.fire_at, self.generation * TOKEN_STRIDE + slot as u64);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_spec_builders_compose() {
        let spec = FluidSpec::new(
            NodeId(3),
            1_000_000,
            Dist::Point(0.01),
            Dist::Uniform { lo: 0.04, hi: 0.1 },
        )
        .with_bins(16);
        assert_eq!(spec.bins, 16);
        let profile = spec.profile();
        assert_eq!(profile.count, 1_000_000);
        assert_eq!(profile.quantize(1000.0).len(), 16);
    }

    #[test]
    fn population_spec_helpers_cover_both_tiers() {
        let p = PopulationSpec::packet(NodeId(1));
        assert!(matches!(p, PopulationSpec::Packet(_)));
        let f = PopulationSpec::fluid(NodeId(2), 10, Dist::Point(0.01), Dist::Point(0.05));
        assert!(matches!(f, PopulationSpec::Fluid(_)));
        let wrapped = PopulationSpec::packets(&[
            crate::session::ReceiverSpec::always(NodeId(1)),
            crate::session::ReceiverSpec::always(NodeId(2)),
        ]);
        assert_eq!(wrapped.len(), 2);
        assert!(wrapped
            .iter()
            .all(|s| matches!(s, PopulationSpec::Packet(_))));
    }

    #[test]
    fn fluid_ids_do_not_collide_with_packet_ids() {
        // Packet receivers are numbered 1.., fluid bins from FLUID_ID_BASE.
        assert!(FLUID_ID_BASE > u64::from(u32::MAX));
        let pop_1_bin_63 = FLUID_ID_BASE + (1 << FLUID_ID_POP_SHIFT) + 63;
        let pop_2_bin_0 = FLUID_ID_BASE + (2 << FLUID_ID_POP_SHIFT);
        assert!(pop_1_bin_63 < pop_2_bin_0);
    }
}
