//! Figures 12, 14, 15 and 16: initial RTT measurements, slowstart behaviour
//! and the late join of a low-rate receiver.
//!
//! Figure 14 is a (traffic mix × receiver count) grid of independent
//! slowstart trials and shards across the sweep executor; the other three
//! are single simulations run as one-point sweeps with their historical
//! seeds.

use netsim::prelude::*;
use tfmcc_agents::population::PopulationSpec;
use tfmcc_agents::session::{ReceiverSpec, TfmccSessionBuilder};
use tfmcc_runner::{Sweep, SweepRunner};
use tfmcc_tcp::{TcpSender, TcpSenderConfig, TcpSink};

use crate::fairness_figs::meter_series;
use crate::output::{Figure, Series};
use crate::scale::Scale;
use crate::sweeps::run_single_sim;

/// Figure 12: number of receivers with a valid RTT estimate over time, for a
/// large receiver set behind one bottleneck (correlated loss, worst case).
pub fn fig12_rtt_measurements(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig12", || {
        let n = scale.pick(40, 400);
        let duration = scale.pick(80.0, 200.0);
        let mut sim = Simulator::new(912);
        // One shared 8 Mbit/s bottleneck into a hub, then clean per-receiver
        // legs with RTTs between 60 and 140 ms.
        let src = sim.add_node("src");
        let hub = sim.add_node("hub");
        sim.add_duplex_link(src, hub, 1_000_000.0, 0.02, QueueDiscipline::drop_tail(125));
        let mut receivers = Vec::new();
        for i in 0..n {
            let r = sim.add_node(&format!("r{i}"));
            let delay = 0.01 + 0.04 * (i as f64 / n as f64);
            sim.add_duplex_link(hub, r, 12_500_000.0, delay, QueueDiscipline::drop_tail(200));
            receivers.push(r);
        }
        let specs: Vec<ReceiverSpec> = receivers.iter().map(|&r| ReceiverSpec::always(r)).collect();
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            src,
            &PopulationSpec::packets(&specs),
        );

        let mut points = Vec::new();
        let step = duration / 40.0;
        let mut t = 0.0;
        while t <= duration {
            sim.run_until(SimTime::from_secs(t));
            let with_rtt = (0..n)
                .filter(|&i| {
                    session
                        .receiver_agent(&sim, i)
                        .protocol()
                        .has_rtt_measurement()
                })
                .count();
            points.push((t, with_rtt as f64));
            t += step;
        }
        let mut fig = Figure::new(
            "fig12",
            "Rate of initial RTT measurements",
            "time (s)",
            "receivers with valid RTT",
        );
        let final_count = points.last().map(|&(_, y)| y).unwrap_or(0.0);
        fig.push_series(Series::new("receivers with valid RTT", points));
        fig.note(format!(
            "{final_count:.0} of {n} receivers obtained an RTT measurement after {duration:.0} s; the count grows by roughly the number of feedback messages per round (paper Figure 12)"
        ));
        fig
    })
}

/// Figure 14: maximum rate reached during slowstart versus the receiver-set
/// size, for an empty link, one competing TCP flow and high statistical
/// multiplexing.
pub fn fig14_slowstart(runner: &SweepRunner, scale: Scale) -> Figure {
    let counts: Vec<usize> = scale.pick(vec![2, 8, 32], vec![2, 8, 32, 128, 512]);
    let mut fig = Figure::new(
        "fig14",
        "Maximum slowstart rate",
        "number of receivers",
        "max slowstart rate (kbit/s)",
    );
    let mixes = [
        ("only TFMCC", 0usize),
        ("one competing TCP", 1),
        ("high stat. mux.", 4),
    ];
    // Each (traffic mix, receiver count) pair is one independent slowstart
    // trial.  Trials keep the historical seed formula (a deterministic
    // function of the point's parameters), so results match the
    // single-threaded harness exactly.
    let points: Vec<(usize, usize)> = mixes
        .iter()
        .flat_map(|&(_, tcp_flows)| counts.iter().map(move |&n| (tcp_flows, n)))
        .collect();
    let sweep = Sweep::new("fig14", 914, points);
    let peaks = runner.run(&sweep, |pt| {
        let (tcp_flows, n) = *pt.value;
        max_slowstart_rate(n, tcp_flows, scale)
    });
    for (m, chunk) in mixes.iter().zip(peaks.chunks(counts.len())) {
        let points: Vec<(f64, f64)> = counts
            .iter()
            .zip(chunk)
            .map(|(&n, &peak)| (n as f64, peak))
            .collect();
        fig.push_series(Series::new(m.0, points));
    }
    fig.note(
        "fair rate is 1 Mbit/s; alone TFMCC overshoots to about twice the bottleneck, while competition and larger receiver sets lower the slowstart peak (paper Figure 14)"
            .to_string(),
    );
    fig
}

/// Runs one slowstart trial and returns the peak sending rate (kbit/s)
/// observed while the sender is still in slowstart.
fn max_slowstart_rate(receivers: usize, tcp_flows: usize, scale: Scale) -> f64 {
    let duration = scale.pick(60.0, 90.0);
    let mut sim = Simulator::new(914 + receivers as u64 + tcp_flows as u64 * 17);
    // 1 Mbit/s fair share: bottleneck of 1 Mbit/s * (1 + tcp_flows).
    let bottleneck = 125_000.0 * (1 + tcp_flows) as f64;
    let src = sim.add_node("src");
    let hub = sim.add_node("hub");
    sim.add_duplex_link(src, hub, bottleneck, 0.02, QueueDiscipline::drop_tail(50));
    let mut nodes = Vec::new();
    for i in 0..receivers.max(tcp_flows) {
        let r = sim.add_node(&format!("r{i}"));
        sim.add_duplex_link(hub, r, 12_500_000.0, 0.005, QueueDiscipline::drop_tail(200));
        nodes.push(r);
    }
    let specs: Vec<ReceiverSpec> = (0..receivers)
        .map(|i| ReceiverSpec::always(nodes[i % nodes.len()]))
        .collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        src,
        &PopulationSpec::packets(&specs),
    );
    for i in 0..tcp_flows {
        let r = nodes[i % nodes.len()];
        sim.add_agent(r, Port(1), Box::new(TcpSink::new(1.0)));
        sim.add_agent(
            src,
            Port(100 + i as u16),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(r, Port(1)),
                FlowId(7000 + i as u64),
            ))),
        );
    }
    // Sample the sending rate while in slowstart.
    let mut peak: f64 = 0.0;
    let mut t = 0.0;
    while t < duration {
        t += 0.5;
        sim.run_until(SimTime::from_secs(t));
        let sender = session.sender_agent(&sim).protocol();
        if sender.in_slowstart() {
            peak = peak.max(sender.current_rate());
        } else {
            break;
        }
    }
    peak * 8.0 / 1000.0
}

/// Figures 15/16: late join of a receiver behind a 200 kbit/s tail circuit
/// while TFMCC and seven TCP flows share an 8 Mbit/s bottleneck.  With
/// `tcp_on_slow_link` an additional TCP flow uses the slow tail (Figure 16).
fn late_join(id: &str, title: &str, tcp_on_slow_link: bool, scale: Scale) -> Figure {
    let join_at = scale.pick(40.0, 50.0);
    let leave_at = scale.pick(80.0, 100.0);
    let duration = scale.pick(110.0, 140.0);
    let tcp_flows = 7;
    let mut sim = Simulator::new(915);
    let src = sim.add_node("src");
    let hub = sim.add_node("hub");
    sim.add_duplex_link(src, hub, 1_000_000.0, 0.02, QueueDiscipline::drop_tail(125));
    // Fast receivers behind the shared bottleneck.
    let mut fast_nodes = Vec::new();
    for i in 0..(tcp_flows + 1) {
        let r = sim.add_node(&format!("fast{i}"));
        sim.add_duplex_link(hub, r, 12_500_000.0, 0.005, QueueDiscipline::drop_tail(200));
        fast_nodes.push(r);
    }
    // The slow receiver behind a 200 kbit/s tail.
    let slow = sim.add_node("slow");
    sim.add_duplex_link(hub, slow, 25_000.0, 0.01, QueueDiscipline::drop_tail(12));
    let specs = vec![
        ReceiverSpec::always(fast_nodes[0]),
        ReceiverSpec::joining_at(slow, join_at).leaving_at(leave_at),
    ];
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        src,
        &PopulationSpec::packets(&specs),
    );
    let mut tcp_sinks = Vec::new();
    for i in 0..tcp_flows {
        let r = fast_nodes[i + 1];
        let sink = sim.add_agent(r, Port(1), Box::new(TcpSink::new(2.0)));
        sim.add_agent(
            src,
            Port(100 + i as u16),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(r, Port(1)),
                FlowId(8000 + i as u64),
            ))),
        );
        tcp_sinks.push(sink);
    }
    let slow_tcp_sink = if tcp_on_slow_link {
        let sink = sim.add_agent(slow, Port(2), Box::new(TcpSink::new(2.0)));
        sim.add_agent(
            src,
            Port(150),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(slow, Port(2)),
                FlowId(8100),
            ))),
        );
        Some(sink)
    } else {
        None
    };
    sim.run_until(SimTime::from_secs(duration));

    let mut fig = Figure::new(id, title, "time (s)", "throughput (kbit/s)");
    let tfmcc_meter = session.receiver_agent(&sim, 0).meter();
    fig.push_series(Series::new("TFMCC flow", meter_series(tfmcc_meter)));
    // Aggregate TCP throughput on the shared bottleneck.
    let mut agg: Vec<(f64, f64)> = Vec::new();
    for &sink in &tcp_sinks {
        let series = meter_series(sim.agent::<TcpSink>(sink).unwrap().meter());
        for (i, &(t, y)) in series.iter().enumerate() {
            if let Some(slot) = agg.get_mut(i) {
                slot.1 += y;
            } else {
                agg.push((t, y));
            }
        }
    }
    fig.push_series(Series::new("aggregated TCP flows", agg));
    if let Some(sink) = slow_tcp_sink {
        fig.push_series(Series::new(
            "TCP on 200 kbit/s link",
            meter_series(sim.agent::<TcpSink>(sink).unwrap().meter()),
        ));
    }
    let before = tfmcc_meter.average_between(join_at * 0.5, join_at - 2.0) * 8.0 / 1000.0;
    let during = tfmcc_meter.average_between(join_at + 10.0, leave_at - 2.0) * 8.0 / 1000.0;
    let after = tfmcc_meter.average_between(leave_at + 15.0, duration - 2.0) * 8.0 / 1000.0;
    let clr_changes = session.sender_agent(&sim).protocol().stats().clr_changes;
    fig.note(format!(
        "TFMCC rate before join {before:.0} kbit/s, while the 200 kbit/s receiver is subscribed {during:.0} kbit/s, after it leaves {after:.0} kbit/s; CLR changes: {clr_changes} (paper: rate drops to the tail bandwidth within a few seconds and recovers afterwards)"
    ));
    fig
}

/// Figure 15: late join of a low-rate receiver.
pub fn fig15_late_join(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig15", || {
        late_join("fig15", "Late join of a low-rate receiver", false, scale)
    })
}

/// Figure 16: late join of a low-rate receiver with an additional TCP flow on
/// the slow link.
pub fn fig16_late_join_tcp(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig16", || {
        late_join(
            "fig16",
            "Late join of a low-rate receiver with an additional TCP flow on the slow link",
            true,
            scale,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_rtt_measurement_count_is_monotone_and_positive() {
        let fig = fig12_rtt_measurements(&SweepRunner::serial(), Scale::Quick);
        let series = &fig.series[0];
        let mut last = -1.0;
        for &(_, y) in &series.points {
            assert!(y + 1e-9 >= last, "count must not decrease");
            last = y;
        }
        assert!(
            series.last_y().unwrap() >= 1.0,
            "someone must measure an RTT"
        );
    }

    #[test]
    fn fig15_slow_receiver_pulls_rate_down_then_recovers() {
        let fig = fig15_late_join(&SweepRunner::serial(), Scale::Quick);
        let summary = fig.summary.join(" ");
        let tfmcc = fig.series("TFMCC flow").unwrap();
        let before: Vec<f64> = tfmcc
            .points
            .iter()
            .filter(|&&(t, _)| (20.0..38.0).contains(&t))
            .map(|&(_, y)| y)
            .collect();
        let during: Vec<f64> = tfmcc
            .points
            .iter()
            .filter(|&&(t, _)| (55.0..78.0).contains(&t))
            .map(|&(_, y)| y)
            .collect();
        let after: Vec<f64> = tfmcc
            .points
            .iter()
            .filter(|&&(t, _)| t > 95.0)
            .map(|&(_, y)| y)
            .collect();
        let before_mean = before.iter().sum::<f64>() / before.len().max(1) as f64;
        let during_mean = during.iter().sum::<f64>() / during.len().max(1) as f64;
        let after_mean = after.iter().sum::<f64>() / after.len().max(1) as f64;
        // While the 200 kbit/s receiver is subscribed the rate must be capped
        // near its tail bandwidth, and it must recover after the leave.
        assert!(
            during_mean < 280.0,
            "rate must be capped by the 200 kbit/s tail while it is subscribed: during {during_mean:.0} kbit/s (before {before_mean:.0}); {summary}"
        );
        assert!(
            after_mean > during_mean,
            "rate must recover after the slow receiver leaves: during {during_mean:.0}, after {after_mean:.0}; {summary}"
        );
    }

    #[test]
    fn fig14_slowstart_peak_is_bounded_by_twice_bottleneck_when_alone() {
        let fig = fig14_slowstart(&SweepRunner::new(2), Scale::Quick);
        let alone = fig.series("only TFMCC").unwrap();
        for &(n, peak) in &alone.points {
            assert!(
                peak <= 2_600.0,
                "slowstart with {n} receivers overshot to {peak} kbit/s (limit is ~2x the 1 Mbit/s bottleneck)"
            );
        }
    }
}
