//! Measurement utilities: throughput meters, time series and counters.
//!
//! The paper's figures are throughput-vs-time plots binned over intervals of
//! a second or so, summary statistics over receiver-set sweeps, and event
//! counts (number of feedback messages).  [`ThroughputMeter`] provides the
//! binned byte counting, [`StatsRegistry`] the named series/counters used to
//! pull results out of a finished simulation.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Bins received (or sent) bytes into fixed-size time intervals so that a
/// throughput-vs-time series can be produced afterwards.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    bin: f64,
    bins: Vec<u64>,
    total_bytes: u64,
    first_at: Option<SimTime>,
    last_at: Option<SimTime>,
}

impl ThroughputMeter {
    /// Creates a meter with `bin` second bins.
    pub fn new(bin: f64) -> Self {
        assert!(bin > 0.0, "bin width must be positive");
        ThroughputMeter {
            bin,
            bins: Vec::new(),
            total_bytes: 0,
            first_at: None,
            last_at: None,
        }
    }

    /// Records `bytes` observed at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        let idx = (now.as_secs() / self.bin) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes;
        self.total_bytes += bytes;
        if self.first_at.is_none() {
            self.first_at = Some(now);
        }
        self.last_at = Some(now);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Throughput series as `(bin start time, bytes/second)` tuples.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * self.bin, b as f64 / self.bin))
            .collect()
    }

    /// Average throughput in bytes/second over `[from, to]`.
    pub fn average_between(&self, from: f64, to: f64) -> f64 {
        assert!(to > from, "invalid interval");
        let mut bytes = 0u64;
        for (i, &b) in self.bins.iter().enumerate() {
            let start = i as f64 * self.bin;
            let end = start + self.bin;
            if start >= from && end <= to {
                bytes += b;
            }
        }
        bytes as f64 / (to - from)
    }

    /// Average throughput in bytes/second over the whole recording.
    pub fn average(&self) -> f64 {
        match (self.first_at, self.last_at) {
            (Some(_), Some(last)) if last.as_secs() > 0.0 => {
                self.total_bytes as f64 / last.as_secs()
            }
            _ => 0.0,
        }
    }

    /// Per-bin rates (bytes/second) of the bins fully inside `[from, to]`.
    ///
    /// Bins exist only up to the last recorded sample, so a window reaching
    /// past the end of the data is truncated there rather than padded with
    /// zeros — callers comparing flows over a window should also assert on
    /// the average, which does cover silence.
    fn rates_between(&self, from: f64, to: f64) -> Vec<f64> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let start = *i as f64 * self.bin;
                start >= from && start + self.bin <= to
            })
            .map(|(_, &b)| b as f64 / self.bin)
            .collect()
    }

    /// Coefficient of variation of the per-bin throughput over `[from, to]` —
    /// the smoothness measure used when comparing TFMCC with TCP.
    pub fn coefficient_of_variation(&self, from: f64, to: f64) -> f64 {
        let vals = self.rates_between(from, to);
        if vals.len() < 2 {
            return 0.0;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / mean
    }

    /// Mean absolute relative change between adjacent bins over `[from, to]`
    /// — the short-timescale smoothness measure used when comparing TFMCC
    /// with TCP.  A saw-toothing TCP flow scores high; an equation-based flow
    /// whose rate drifts slowly scores low even when its long-run average
    /// wanders (which [`Self::coefficient_of_variation`] would punish).
    pub fn mean_relative_change(&self, from: f64, to: f64) -> f64 {
        let vals = self.rates_between(from, to);
        if vals.len() < 2 {
            return 0.0;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let mean_step =
            vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (vals.len() - 1) as f64;
        mean_step / mean
    }

    /// Maximum per-bin throughput in bytes/second.
    pub fn peak(&self) -> f64 {
        self.bins
            .iter()
            .map(|&b| b as f64 / self.bin)
            .fold(0.0, f64::max)
    }
}

/// Named counters and time series shared across a simulation run.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    counters: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Appends a `(time, value)` sample to the named series.
    pub fn sample(&mut self, name: &str, time: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((time.as_secs(), value));
    }

    /// Returns the samples of a series (empty if never written).
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Names of all recorded series, sorted (the registry map is ordered, so
    /// key iteration is already sorted).
    pub fn series_names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        self.counters.keys().cloned().collect()
    }

    /// Folds another registry into this one: counters are summed, series are
    /// appended and re-sorted by sample time (the sort is stable, so
    /// same-time samples keep existing-before-absorbed order).  The domain
    /// sharding layer merges per-shard registries back into the master with
    /// this — counter increments are whole-valued, so the f64 sums are exact
    /// regardless of merge order.
    pub fn absorb(&mut self, other: StatsRegistry) {
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0.0) += value;
        }
        for (name, mut samples) in other.series {
            let dst = self.series.entry(name).or_default();
            dst.append(&mut samples);
            dst.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("sample times are finite SimTime seconds")
            });
        }
    }

    /// A 64-bit FNV-1a digest over every counter and series (names plus the
    /// raw f64 bit patterns of the values).  Two registries digest equal iff
    /// they are bit-identical, which the domain-sharding equivalence gates
    /// (`scale_probe domains=K`, `BENCH_parallel.json`) compare across
    /// domain counts.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for (name, value) in &self.counters {
            h.write(name.as_bytes());
            h.write(&value.to_bits().to_le_bytes());
        }
        for (name, samples) in &self.series {
            h.write(name.as_bytes());
            for &(t, v) in samples {
                h.write(&t.to_bits().to_le_bytes());
                h.write(&v.to_bits().to_le_bytes());
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a, kept local so the digest needs no dependencies and no
/// `std::hash` machinery (hasher state is explicit and deterministic).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_bins_bytes_by_time() {
        let mut m = ThroughputMeter::new(1.0);
        m.record(SimTime::from_secs(0.5), 1000);
        m.record(SimTime::from_secs(0.9), 1000);
        m.record(SimTime::from_secs(1.5), 500);
        let s = m.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (0.0, 2000.0));
        assert_eq!(s[1], (1.0, 500.0));
        assert_eq!(m.total_bytes(), 2500);
    }

    #[test]
    fn meter_average_between() {
        let mut m = ThroughputMeter::new(1.0);
        for i in 0..10 {
            m.record(SimTime::from_secs(i as f64 + 0.5), 1000);
        }
        assert_eq!(m.average_between(0.0, 10.0), 1000.0);
        assert_eq!(m.average_between(2.0, 4.0), 1000.0);
    }

    #[test]
    fn meter_cov_zero_for_constant_rate() {
        let mut m = ThroughputMeter::new(1.0);
        for i in 0..20 {
            m.record(SimTime::from_secs(i as f64 + 0.1), 1000);
        }
        assert!(m.coefficient_of_variation(0.0, 20.0) < 1e-12);
    }

    #[test]
    fn meter_cov_positive_for_bursty_rate() {
        let mut m = ThroughputMeter::new(1.0);
        for i in 0..20 {
            let bytes = if i % 2 == 0 { 2000 } else { 10 };
            m.record(SimTime::from_secs(i as f64 + 0.1), bytes);
        }
        assert!(m.coefficient_of_variation(0.0, 20.0) > 0.5);
    }

    #[test]
    fn meter_relative_change_separates_sawtooth_from_drift() {
        // A slow linear drift: large total variance, tiny bin-to-bin steps.
        let mut drifting = ThroughputMeter::new(1.0);
        for i in 0..20u64 {
            drifting.record(SimTime::from_secs(i as f64 + 0.1), 1000 + 100 * i);
        }
        // A saw-tooth at the same mean: small drift, large steps.
        let mut sawtooth = ThroughputMeter::new(1.0);
        for i in 0..20u64 {
            let bytes = if i % 2 == 0 { 2900 } else { 1000 };
            sawtooth.record(SimTime::from_secs(i as f64 + 0.1), bytes);
        }
        let drift_score = drifting.mean_relative_change(0.0, 20.0);
        let saw_score = sawtooth.mean_relative_change(0.0, 20.0);
        assert!(drift_score < 0.1, "drift score {drift_score}");
        assert!(saw_score > 0.5, "sawtooth score {saw_score}");
        // CoV, in contrast, cannot tell them apart.
        assert!(drifting.coefficient_of_variation(0.0, 20.0) > 0.2);
    }

    #[test]
    fn meter_peak_and_average() {
        let mut m = ThroughputMeter::new(0.5);
        m.record(SimTime::from_secs(0.1), 100);
        m.record(SimTime::from_secs(2.0), 1000);
        assert_eq!(m.peak(), 2000.0);
        assert!(m.average() > 0.0);
    }

    #[test]
    fn registry_counters_and_series() {
        let mut r = StatsRegistry::new();
        r.add("drops", 1.0);
        r.add("drops", 2.0);
        assert_eq!(r.counter("drops"), 3.0);
        assert_eq!(r.counter("missing"), 0.0);
        r.sample("rate", SimTime::from_secs(1.0), 42.0);
        r.sample("rate", SimTime::from_secs(2.0), 43.0);
        assert_eq!(r.series("rate").len(), 2);
        assert_eq!(r.series("rate")[1], (2.0, 43.0));
        assert_eq!(r.series_names(), vec!["rate".to_string()]);
        assert_eq!(r.counter_names(), vec!["drops".to_string()]);
    }
}
