//! CLI for the workspace determinism linter.
//!
//! ```text
//! cargo run -p tfmcc-lint -- --workspace [--json <path>]
//! cargo run -p tfmcc-lint -- <file.rs> [<file.rs> ...] [--json <path>]
//! ```
//!
//! Exits 0 when the tree is clean (suppressions with reasons are clean by
//! definition), 1 on any unsuppressed finding, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use tfmcc_lint::report::{self, Summary};
use tfmcc_lint::rules::Finding;
use tfmcc_lint::{find_workspace_root, lint_source, lint_workspace};

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json_out: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json requires a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: tfmcc-lint (--workspace | <file.rs>...) [--json <path>]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if !workspace && paths.is_empty() {
        return usage("pass --workspace or at least one file");
    }
    if workspace && !paths.is_empty() {
        return usage("--workspace and explicit files are mutually exclusive");
    }

    let (findings, summary) = if workspace {
        let cwd = std::env::current_dir().expect("cwd");
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!(
                "tfmcc-lint: no workspace root found above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        };
        match lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("tfmcc-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings: Vec<Finding> = Vec::new();
        let mut summary = Summary::default();
        for path in &paths {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("tfmcc-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let rel = path.to_string_lossy().replace('\\', "/");
            let (mut f, suppressed) = lint_source(&rel, &src);
            summary.files_scanned += 1;
            summary.suppressed += suppressed;
            findings.append(&mut f);
        }
        (findings, summary)
    };

    for f in &findings {
        eprintln!(
            "{}:{}:{}: {} {}",
            f.path, f.line, f.column, f.rule, f.message
        );
    }
    eprintln!(
        "tfmcc-lint: {} file(s) scanned, {} finding(s), {} suppressed",
        summary.files_scanned,
        findings.len(),
        summary.suppressed
    );

    if let Some(out) = json_out {
        let json = report::to_json(&findings, summary);
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("tfmcc-lint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tfmcc-lint: {msg}");
    eprintln!("usage: tfmcc-lint (--workspace | <file.rs>...) [--json <path>]");
    ExitCode::from(2)
}
