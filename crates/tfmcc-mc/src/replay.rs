//! Counterexample replay files (`tfmcc-replay-v1`).
//!
//! A replay file pins down one counterexample — a model-checker schedule or
//! a scenario-search point — precisely enough that a regression test can
//! re-execute it byte-identically.  The format is deliberately primitive:
//! one `key=value` pair per line, `#` comments, blank lines ignored.  All
//! `f64` values are stored as IEEE-754 bit patterns (`0x%016x`) so replays
//! never round-trip through decimal formatting.
//!
//! Common keys: `format` (always `tfmcc-replay-v1`) and `kind`
//! (`model-check` or `scenario`).
//!
//! `model-check` kind: `preset` (an [`McConfig`] preset name), `schedule`
//! (space-separated [`Action`] strings), optional `invariant` (the invariant
//! the schedule is expected to violate; absent for quarantined schedules
//! that must replay *clean*).
//!
//! `scenario` kind: the sweep-point parameters (`seed`, `sessions`,
//! `receivers`, `duration`, plus bits-hex `loss`/`delay`/... as the
//! scenario-search driver defines them) and the expected metrics
//! (`expected_jain`, `expected_recovery`) in bits-hex.
//!
//! [`McConfig`]: crate::world::McConfig
//! [`Action`]: crate::world::Action

/// A parsed replay file: an ordered list of `key=value` pairs.
///
/// Order is preserved and duplicate keys are allowed (last one wins on
/// lookup) so files render back exactly as authored.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    pairs: Vec<(String, String)>,
}

/// The `format=` value this module reads and writes.
pub const FORMAT: &str = "tfmcc-replay-v1";

/// Renders an `f64` as its IEEE-754 bit pattern (`0x0123456789abcdef`).
pub fn f64_to_bits_hex(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

/// Parses a bits-hex string produced by [`f64_to_bits_hex`].
pub fn f64_from_bits_hex(s: &str) -> Result<f64, String> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("bits-hex value '{s}' must start with 0x"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad bits-hex value '{s}': {e}"))
}

impl Replay {
    /// An empty replay of the current format.
    pub fn new(kind: &str) -> Self {
        let mut r = Replay::default();
        r.set("format", FORMAT);
        r.set("kind", kind);
        r
    }

    /// Parses replay text; rejects files of a different `format`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut pairs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got '{line}'", lineno + 1))?;
            pairs.push((key.trim().to_string(), value.trim().to_string()));
        }
        let replay = Replay { pairs };
        match replay.get("format") {
            Some(FORMAT) => Ok(replay),
            Some(other) => Err(format!("unsupported replay format '{other}'")),
            None => Err("replay file has no format= line".into()),
        }
    }

    /// Renders back to file text (one pair per line, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.pairs {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        out
    }

    /// Last value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Last value for `key`, or an error naming the missing key.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("replay file is missing {key}="))
    }

    /// Parses the bits-hex `f64` stored under `key`.
    pub fn require_f64_bits(&self, key: &str) -> Result<f64, String> {
        f64_from_bits_hex(self.require(key)?).map_err(|e| format!("{key}: {e}"))
    }

    /// Appends a pair (does not replace earlier occurrences).
    pub fn set(&mut self, key: &str, value: &str) {
        self.pairs.push((key.to_string(), value.to_string()));
    }

    /// Appends an `f64` pair in bits-hex.
    pub fn set_f64_bits(&mut self, key: &str, value: f64) {
        self.set(key, &f64_to_bits_hex(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_hex_round_trips_exactly() {
        for v in [0.0, -0.0, 1.0, 1.0 / 3.0, f64::MAX, 2.2250738585072014e-308] {
            let parsed = f64_from_bits_hex(&f64_to_bits_hex(v)).unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
        assert!(f64_from_bits_hex("1.5").is_err());
        assert!(f64_from_bits_hex("0xzz").is_err());
    }

    #[test]
    fn parse_render_round_trips() {
        let text = "\
# a comment
format=tfmcc-replay-v1
kind=model-check
preset=smoke3

schedule=Send Drop:0 Tick
";
        let replay = Replay::parse(text).unwrap();
        assert_eq!(replay.get("kind"), Some("model-check"));
        assert_eq!(replay.require("preset").unwrap(), "smoke3");
        assert_eq!(replay.get("schedule"), Some("Send Drop:0 Tick"));
        assert!(replay.require("invariant").is_err());
        // Re-parse of the render sees the same pairs (comments are dropped).
        let again = Replay::parse(&replay.render()).unwrap();
        assert_eq!(again.render(), replay.render());
    }

    #[test]
    fn wrong_or_missing_format_is_rejected() {
        assert!(Replay::parse("format=tfmcc-replay-v0\n").is_err());
        assert!(Replay::parse("kind=scenario\n").is_err());
        assert!(Replay::parse("this is not a pair\n").is_err());
    }

    #[test]
    fn builder_produces_parseable_files() {
        let mut r = Replay::new("scenario");
        r.set("seed", "42");
        r.set_f64_bits("loss", 0.01);
        let parsed = Replay::parse(&r.render()).unwrap();
        assert_eq!(parsed.get("kind"), Some("scenario"));
        assert_eq!(parsed.require("seed").unwrap(), "42");
        assert_eq!(parsed.require_f64_bits("loss").unwrap(), 0.01);
    }
}
