//! Router queue disciplines.
//!
//! The TFMCC paper evaluates over drop-tail queues ("to ensure acceptable
//! behavior in the current Internet") and notes that fairness generally
//! improves under RED.  Three disciplines are provided:
//!
//! * [`QueueDiscipline::DropTail`] — FIFO with a hard packet limit;
//! * [`QueueDiscipline::Red`] — the classic Floyd/Jacobson RED algorithm,
//!   including the *gentle* variant (drop probability ramps from `max_p` to 1
//!   between `max_threshold` and `2 * max_threshold` instead of jumping);
//! * [`QueueDiscipline::CoDel`] — a sojourn-time AQM in the style of
//!   Nichols/Jacobson CoDel: packets are dropped at *dequeue* time once the
//!   head-of-line delay has exceeded `target` for a full `interval`, with the
//!   inter-drop gap shrinking as `interval / sqrt(count)` while the queue
//!   stays above target.
//!
//! Determinism contract: RED consumes exactly one uniform sample per offered
//! packet (drawn by the link from its private per-link RNG stream — see
//! `rng::stream_seed`); CoDel is entirely deterministic and consumes none.
//! Neither discipline changes how many uniforms the link draws per offer, so
//! adding an AQM to one link cannot shift the drop pattern of any other.

use std::collections::VecDeque;

use crate::packet::Packet;
use crate::time::SimTime;

/// Configuration of a queue discipline.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueDiscipline {
    /// FIFO queue that drops arrivals once `limit_packets` are queued.
    DropTail {
        /// Maximum number of queued packets (the packet in transmission does
        /// not count against the limit).
        limit_packets: usize,
    },
    /// Random Early Detection.
    Red(RedConfig),
    /// Controlled Delay: sojourn-time-based drops at dequeue.
    CoDel(CoDelConfig),
}

impl QueueDiscipline {
    /// A drop-tail queue with the given packet limit.
    pub fn drop_tail(limit_packets: usize) -> Self {
        QueueDiscipline::DropTail { limit_packets }
    }

    /// A RED queue with default parameters scaled to the given hard limit.
    pub fn red(limit_packets: usize) -> Self {
        QueueDiscipline::Red(RedConfig::for_limit(limit_packets))
    }

    /// A gentle-RED queue with default parameters scaled to the given hard
    /// limit (identical to [`QueueDiscipline::red`] below `max_threshold`;
    /// ramps to certain drop over `[max_threshold, 2 * max_threshold]`).
    pub fn red_gentle(limit_packets: usize) -> Self {
        let mut cfg = RedConfig::for_limit(limit_packets);
        cfg.gentle = true;
        QueueDiscipline::Red(cfg)
    }

    /// A CoDel queue with the standard 5 ms / 100 ms parameters and the given
    /// hard packet limit.
    pub fn codel(limit_packets: usize) -> Self {
        QueueDiscipline::CoDel(CoDelConfig::for_limit(limit_packets))
    }

    /// Panics if the parameters are invalid (NaN, inverted thresholds,
    /// non-positive intervals, zero limits).  Called by [`Queue::new`], so
    /// every link construction path validates its queue configuration — the
    /// same fail-fast policy as `LossModel::validate`.
    pub fn validate(&self) {
        match self {
            QueueDiscipline::DropTail { limit_packets } => {
                assert!(
                    *limit_packets >= 1,
                    "drop-tail queue limit must be at least one packet, got {limit_packets}"
                );
            }
            QueueDiscipline::Red(cfg) => cfg.validate(),
            QueueDiscipline::CoDel(cfg) => cfg.validate(),
        }
    }
}

/// RED parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RedConfig {
    /// Minimum average-queue threshold below which no packet is dropped.
    pub min_threshold: f64,
    /// Maximum average-queue threshold above which every packet is dropped
    /// (or, in gentle mode, above which the drop probability ramps to 1).
    pub max_threshold: f64,
    /// Drop probability at the maximum threshold.
    pub max_drop_probability: f64,
    /// Weight of the exponential moving average of the queue length.
    pub queue_weight: f64,
    /// Hard limit on the instantaneous queue length.
    pub limit_packets: usize,
    /// Gentle RED: between `max_threshold` and `2 * max_threshold` the drop
    /// probability ramps linearly from `max_drop_probability` to 1 instead of
    /// jumping straight to certain drop.
    pub gentle: bool,
}

impl RedConfig {
    /// Reasonable defaults given a hard queue limit: thresholds at 20 % and
    /// 60 % of the limit, 10 % max drop probability, w_q = 0.002.
    pub fn for_limit(limit_packets: usize) -> Self {
        let limit = limit_packets.max(5) as f64;
        RedConfig {
            min_threshold: limit * 0.2,
            max_threshold: limit * 0.6,
            max_drop_probability: 0.1,
            queue_weight: 0.002,
            limit_packets,
            gentle: false,
        }
    }

    /// The marking (early-drop) probability for a given average queue size,
    /// before count-since-last-drop spreading is applied.  This is the curve
    /// the gentle-RED boundary tests pin: 0 up to `min_threshold`, linear to
    /// `max_drop_probability` at `max_threshold`, then either 1 (classic) or
    /// a linear ramp to 1 at `2 * max_threshold` (gentle).
    pub fn mark_probability(&self, avg_queue: f64) -> f64 {
        if avg_queue <= self.min_threshold {
            0.0
        } else if avg_queue < self.max_threshold {
            self.max_drop_probability * (avg_queue - self.min_threshold)
                / (self.max_threshold - self.min_threshold)
        } else if self.gentle && avg_queue < 2.0 * self.max_threshold {
            self.max_drop_probability
                + (1.0 - self.max_drop_probability) * (avg_queue - self.max_threshold)
                    / self.max_threshold
        } else {
            1.0
        }
    }

    /// Panics on invalid parameters (see [`QueueDiscipline::validate`]).
    pub fn validate(&self) {
        assert!(
            self.min_threshold.is_finite()
                && self.max_threshold.is_finite()
                && self.min_threshold > 0.0
                && self.min_threshold < self.max_threshold,
            "RED thresholds must be finite with 0 < min < max, got min {} max {}",
            self.min_threshold,
            self.max_threshold
        );
        assert!(
            self.max_drop_probability.is_finite()
                && self.max_drop_probability > 0.0
                && self.max_drop_probability <= 1.0,
            "RED max drop probability must be a finite value in (0, 1], got {}",
            self.max_drop_probability
        );
        assert!(
            self.queue_weight.is_finite() && self.queue_weight > 0.0 && self.queue_weight <= 1.0,
            "RED queue weight must be a finite value in (0, 1], got {}",
            self.queue_weight
        );
        assert!(
            self.limit_packets >= 1,
            "RED queue limit must be at least one packet, got {}",
            self.limit_packets
        );
    }
}

/// CoDel parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoDelConfig {
    /// Acceptable standing sojourn time in seconds (classically 5 ms).
    pub target: f64,
    /// Sliding window over which the sojourn time must stay above `target`
    /// before dropping starts, in seconds (classically 100 ms).
    pub interval: f64,
    /// Hard limit on the instantaneous queue length.
    pub limit_packets: usize,
}

impl CoDelConfig {
    /// The standard 5 ms target / 100 ms interval with the given hard limit.
    pub fn for_limit(limit_packets: usize) -> Self {
        CoDelConfig {
            target: 0.005,
            interval: 0.1,
            limit_packets,
        }
    }

    /// Panics on invalid parameters (see [`QueueDiscipline::validate`]).
    pub fn validate(&self) {
        assert!(
            self.target.is_finite() && self.target > 0.0,
            "CoDel target must be a positive, finite number of seconds, got {}",
            self.target
        );
        assert!(
            self.interval.is_finite() && self.interval > 0.0,
            "CoDel interval must be a positive, finite number of seconds, got {}",
            self.interval
        );
        assert!(
            self.limit_packets >= 1,
            "CoDel queue limit must be at least one packet, got {}",
            self.limit_packets
        );
    }
}

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// Packet was accepted and queued.
    Queued,
    /// Packet was dropped because the queue is full.
    DroppedFull,
    /// Packet was dropped by RED's early detection.
    DroppedEarly,
}

/// A router queue instance.
#[derive(Debug)]
pub struct Queue {
    discipline: QueueDiscipline,
    packets: VecDeque<Packet>,
    /// Enqueue timestamps, parallel to `packets` (CoDel's sojourn clock; kept
    /// for every discipline so switching disciplines cannot skew bookkeeping).
    arrivals: VecDeque<SimTime>,
    bytes: u64,
    avg_queue: f64,
    idle_since: Option<SimTime>,
    red_count_since_drop: u64,
    /// CoDel: when the sojourn time first rose above target, plus interval.
    codel_first_above: Option<SimTime>,
    /// CoDel: currently in the dropping state.
    codel_dropping: bool,
    /// CoDel: drops since entering the dropping state.
    codel_count: u64,
    /// CoDel: time of the next scheduled drop while in the dropping state.
    codel_drop_next: SimTime,
}

impl Queue {
    /// Creates an empty queue with the given discipline.
    ///
    /// Panics if the discipline's parameters are invalid — see
    /// [`QueueDiscipline::validate`].
    pub fn new(discipline: QueueDiscipline) -> Self {
        discipline.validate();
        Queue {
            discipline,
            packets: VecDeque::new(),
            arrivals: VecDeque::new(),
            bytes: 0,
            avg_queue: 0.0,
            idle_since: Some(SimTime::ZERO),
            red_count_since_drop: 0,
            codel_first_above: None,
            codel_dropping: false,
            codel_count: 0,
            codel_drop_next: SimTime::ZERO,
        }
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if no packet is queued.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True for drop-tail queues, whose drop decision depends only on the
    /// instantaneous occupancy — the property the link layer's burst
    /// draining relies on.  RED needs per-packet enqueue times for its
    /// average; CoDel needs per-packet dequeue times for its sojourn clock.
    pub fn is_drop_tail(&self) -> bool {
        matches!(self.discipline, QueueDiscipline::DropTail { .. })
    }

    /// Offers a packet to the queue.  `uniform` must be a fresh uniform random
    /// sample in `[0, 1)` (used only by RED).
    pub fn enqueue(&mut self, packet: Packet, now: SimTime, uniform: f64) -> EnqueueResult {
        self.enqueue_offset(packet, now, uniform, 0)
    }

    /// [`Queue::enqueue`] with `offset` phantom occupants counted against
    /// the hard limit: packets the link has burst-drained but whose
    /// transmission has not started yet still hold a queue slot.
    pub fn enqueue_offset(
        &mut self,
        packet: Packet,
        now: SimTime,
        uniform: f64,
        offset: usize,
    ) -> EnqueueResult {
        match &self.discipline {
            QueueDiscipline::DropTail { limit_packets } => {
                if self.packets.len() + offset >= *limit_packets {
                    EnqueueResult::DroppedFull
                } else {
                    self.accept(packet, now);
                    EnqueueResult::Queued
                }
            }
            QueueDiscipline::Red(cfg) => {
                let cfg = cfg.clone();
                self.enqueue_red(packet, now, uniform, &cfg)
            }
            QueueDiscipline::CoDel(cfg) => {
                if self.packets.len() + offset >= cfg.limit_packets {
                    EnqueueResult::DroppedFull
                } else {
                    self.accept(packet, now);
                    EnqueueResult::Queued
                }
            }
        }
    }

    fn accept(&mut self, packet: Packet, now: SimTime) {
        self.bytes += u64::from(packet.size);
        self.packets.push_back(packet);
        self.arrivals.push_back(now);
    }

    fn enqueue_red(
        &mut self,
        packet: Packet,
        now: SimTime,
        uniform: f64,
        cfg: &RedConfig,
    ) -> EnqueueResult {
        // Update the average queue size, accounting for idle time by decaying
        // the average as if empty slots had been observed.
        let current = self.packets.len() as f64;
        if let Some(idle_start) = self.idle_since.take() {
            // Approximate the number of "small packets" that could have been
            // transmitted while idle; one slot per millisecond is a common
            // simplification that keeps the average responsive after idling.
            let idle = now.saturating_since(idle_start);
            let slots = (idle / 0.001).min(10_000.0);
            self.avg_queue *= (1.0 - cfg.queue_weight).powf(slots);
        }
        self.avg_queue = (1.0 - cfg.queue_weight) * self.avg_queue + cfg.queue_weight * current;

        if self.packets.len() >= cfg.limit_packets {
            self.red_count_since_drop = 0;
            return EnqueueResult::DroppedFull;
        }
        let base = cfg.mark_probability(self.avg_queue);
        if base >= 1.0 {
            self.red_count_since_drop = 0;
            return EnqueueResult::DroppedEarly;
        }
        if base > 0.0 {
            // Spread drops out: probability increases with the count of
            // packets accepted since the last drop.
            let count = self.red_count_since_drop as f64;
            let p = (base / (1.0 - count * base).max(1e-6)).clamp(0.0, 1.0);
            if uniform < p {
                self.red_count_since_drop = 0;
                return EnqueueResult::DroppedEarly;
            }
            self.red_count_since_drop += 1;
        } else {
            self.red_count_since_drop = 0;
        }
        self.accept(packet, now);
        EnqueueResult::Queued
    }

    /// Removes the packet at the head of the queue, recording when the queue
    /// goes idle (needed by RED's average).
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let pkt = self.packets.pop_front();
        self.arrivals.pop_front();
        if let Some(ref p) = pkt {
            self.bytes -= u64::from(p.size);
        }
        if self.packets.is_empty() {
            self.idle_since = Some(now);
        }
        pkt
    }

    /// Removes the next packet to transmit, applying CoDel's sojourn-time
    /// drop logic when the discipline is CoDel (other disciplines never drop
    /// at dequeue).  Returns the packet, if any, together with how many
    /// packets were dropped getting to it.
    pub fn dequeue_tx(&mut self, now: SimTime) -> (Option<Packet>, u64) {
        let cfg = match &self.discipline {
            QueueDiscipline::CoDel(cfg) => cfg.clone(),
            _ => return (self.dequeue(now), 0),
        };
        let mut dropped = 0u64;
        let (mut pkt, mut ok_to_drop) = self.codel_head(now, &cfg);
        if self.codel_dropping {
            if !ok_to_drop {
                self.codel_dropping = false;
            } else {
                while self.codel_dropping && pkt.is_some() && now >= self.codel_drop_next {
                    dropped += 1;
                    self.codel_count += 1;
                    let (next, ok) = self.codel_head(now, &cfg);
                    pkt = next;
                    ok_to_drop = ok;
                    if ok_to_drop {
                        self.codel_drop_next += cfg.interval / (self.codel_count as f64).sqrt();
                    } else {
                        self.codel_dropping = false;
                    }
                }
            }
        } else if ok_to_drop {
            // Enter the dropping state: drop the head, and resume the drop
            // count from where the last dropping episode left off if that
            // episode ended less than an interval ago (the control law's
            // memory that keeps the drop rate from resetting on every burst).
            dropped += 1;
            let (next, _) = self.codel_head(now, &cfg);
            pkt = next;
            self.codel_dropping = true;
            let recently = now.saturating_since(self.codel_drop_next) < cfg.interval;
            self.codel_count = if recently && self.codel_count > 2 {
                self.codel_count - 2
            } else {
                1
            };
            self.codel_drop_next = now + cfg.interval / (self.codel_count as f64).sqrt();
        }
        (pkt, dropped)
    }

    /// CoDel's `dodequeue`: pops the head and reports whether it is eligible
    /// for dropping (sojourn above target for a full interval).
    fn codel_head(&mut self, now: SimTime, cfg: &CoDelConfig) -> (Option<Packet>, bool) {
        let Some(pkt) = self.packets.pop_front() else {
            self.codel_first_above = None;
            self.idle_since = Some(now);
            return (None, false);
        };
        self.bytes -= u64::from(pkt.size);
        let arrival = self.arrivals.pop_front().unwrap_or(now);
        if self.packets.is_empty() {
            self.idle_since = Some(now);
        }
        let sojourn = now.saturating_since(arrival);
        if sojourn < cfg.target {
            self.codel_first_above = None;
            (Some(pkt), false)
        } else {
            match self.codel_first_above {
                None => {
                    self.codel_first_above = Some(now + cfg.interval);
                    (Some(pkt), false)
                }
                Some(first_above) => (Some(pkt), now >= first_above),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Address, Dest, FlowId, NodeId, Payload, Port};
    use std::panic::catch_unwind;

    fn pkt(size: u32) -> Packet {
        let a = Address::new(NodeId(0), Port(0));
        Packet::new(a, Dest::Unicast(a), size, FlowId(0), Payload::empty())
    }

    #[test]
    fn drop_tail_respects_limit() {
        let mut q = Queue::new(QueueDiscipline::drop_tail(3));
        for i in 0..3 {
            assert_eq!(
                q.enqueue(pkt(100), SimTime::from_secs(i as f64), 0.5),
                EnqueueResult::Queued
            );
        }
        assert_eq!(
            q.enqueue(pkt(100), SimTime::from_secs(3.0), 0.5),
            EnqueueResult::DroppedFull
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.bytes(), 300);
    }

    #[test]
    fn drop_tail_fifo_order() {
        let mut q = Queue::new(QueueDiscipline::drop_tail(10));
        for size in [100, 200, 300] {
            q.enqueue(pkt(size), SimTime::ZERO, 0.5);
        }
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().size, 100);
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().size, 200);
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().size, 300);
        assert!(q.dequeue(SimTime::ZERO).is_none());
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn red_accepts_when_average_low() {
        let mut q = Queue::new(QueueDiscipline::red(100));
        // Few packets: average stays below min threshold, nothing dropped.
        for i in 0..5 {
            assert_eq!(
                q.enqueue(pkt(100), SimTime::from_secs(i as f64 * 0.01), 0.99),
                EnqueueResult::Queued
            );
        }
    }

    #[test]
    fn red_drops_under_sustained_load() {
        let cfg = RedConfig {
            min_threshold: 2.0,
            max_threshold: 5.0,
            max_drop_probability: 0.5,
            queue_weight: 0.5, // aggressive averaging so the test converges fast
            limit_packets: 50,
            gentle: false,
        };
        let mut q = Queue::new(QueueDiscipline::Red(cfg));
        let mut dropped_early = 0;
        for i in 0..100 {
            let r = q.enqueue(pkt(100), SimTime::from_secs(i as f64 * 0.001), 0.3);
            if r == EnqueueResult::DroppedEarly {
                dropped_early += 1;
            }
        }
        assert!(
            dropped_early > 0,
            "RED should have dropped some packets early"
        );
    }

    #[test]
    fn red_hard_limit_enforced() {
        let cfg = RedConfig {
            min_threshold: 1000.0, // never early-drop
            max_threshold: 2000.0,
            max_drop_probability: 0.1,
            queue_weight: 0.002,
            limit_packets: 4,
            gentle: false,
        };
        let mut q = Queue::new(QueueDiscipline::Red(cfg));
        let mut full = 0;
        for _ in 0..10 {
            if q.enqueue(pkt(100), SimTime::ZERO, 0.99) == EnqueueResult::DroppedFull {
                full += 1;
            }
        }
        assert_eq!(q.len(), 4);
        assert_eq!(full, 6);
    }

    #[test]
    fn red_average_decays_while_idle() {
        let cfg = RedConfig {
            min_threshold: 2.0,
            max_threshold: 4.0,
            max_drop_probability: 1.0,
            queue_weight: 0.5,
            limit_packets: 50,
            gentle: false,
        };
        let mut q = Queue::new(QueueDiscipline::Red(cfg.clone()));
        // Drive the average up.
        for i in 0..20 {
            q.enqueue(pkt(100), SimTime::from_secs(i as f64 * 1e-4), 0.99);
        }
        let avg_before = q.avg_queue;
        // Drain and let it idle a long time; the next enqueue should see a
        // much smaller average.
        while q.dequeue(SimTime::from_secs(0.01)).is_some() {}
        q.enqueue(pkt(100), SimTime::from_secs(10.0), 0.99);
        assert!(q.avg_queue < avg_before * 0.5);
    }

    /// The gentle-RED marking curve at its boundary average-queue values:
    /// zero up to `min_th`, linear to `max_p` at `max_th`, then a ramp to 1
    /// at `2 * max_th` (gentle) versus an immediate jump to 1 (classic).
    #[test]
    fn gentle_red_marking_curve_boundaries() {
        let classic = RedConfig {
            min_threshold: 10.0,
            max_threshold: 30.0,
            max_drop_probability: 0.1,
            queue_weight: 0.002,
            limit_packets: 100,
            gentle: false,
        };
        let gentle = RedConfig {
            gentle: true,
            ..classic.clone()
        };

        // Below and at min_threshold: never mark.
        assert_eq!(classic.mark_probability(0.0), 0.0);
        assert_eq!(classic.mark_probability(10.0), 0.0);
        assert_eq!(gentle.mark_probability(10.0), 0.0);

        // Midpoint of [min, max): half of max_p, identical in both variants.
        assert!((classic.mark_probability(20.0) - 0.05).abs() < 1e-12);
        assert!((gentle.mark_probability(20.0) - 0.05).abs() < 1e-12);

        // At max_threshold: classic jumps to certain drop, gentle starts the
        // ramp at exactly max_p.
        assert_eq!(classic.mark_probability(30.0), 1.0);
        assert!((gentle.mark_probability(30.0) - 0.1).abs() < 1e-12);

        // Midpoint of the gentle ramp [max, 2*max): max_p + (1 - max_p)/2.
        assert!((gentle.mark_probability(45.0) - 0.55).abs() < 1e-12);

        // At and beyond 2 * max_threshold both variants drop with certainty.
        assert_eq!(gentle.mark_probability(60.0), 1.0);
        assert_eq!(gentle.mark_probability(90.0), 1.0);
        assert_eq!(classic.mark_probability(60.0), 1.0);
    }

    /// Gentle RED keeps accepting (probabilistically) in the band where
    /// classic RED force-drops every arrival.
    #[test]
    fn gentle_red_softens_the_band_above_max_threshold() {
        let mk = |gentle: bool| RedConfig {
            min_threshold: 1.0,
            max_threshold: 3.0,
            max_drop_probability: 0.1,
            queue_weight: 1.0, // avg == instantaneous for the test
            limit_packets: 100,
            gentle,
        };
        let drive = |cfg: RedConfig| {
            let mut q = Queue::new(QueueDiscipline::Red(cfg));
            let mut accepted = 0;
            // Instantaneous queue (== avg with w_q = 1) sits in (max, 2*max)
            // once 4+ packets are in; a high uniform means gentle RED keeps
            // accepting while classic RED force-drops.
            for i in 0..12 {
                if q.enqueue(pkt(100), SimTime::from_secs(i as f64 * 1e-4), 0.97)
                    == EnqueueResult::Queued
                {
                    accepted += 1;
                }
            }
            accepted
        };
        let classic_accepted = drive(mk(false));
        let gentle_accepted = drive(mk(true));
        assert!(
            gentle_accepted > classic_accepted,
            "gentle RED must accept more in the ramp band: classic {classic_accepted}, \
             gentle {gentle_accepted}"
        );
    }

    #[test]
    fn codel_leaves_short_sojourns_alone() {
        let mut q = Queue::new(QueueDiscipline::codel(100));
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            q.enqueue(pkt(100), t, 0.5);
            // Dequeued 1 ms later: well under the 5 ms target.
            t += 0.001;
            let (pkt, dropped) = q.dequeue_tx(t);
            assert!(pkt.is_some());
            assert_eq!(dropped, 0);
        }
    }

    #[test]
    fn codel_drops_on_persistent_standing_queue() {
        let mut q = Queue::new(QueueDiscipline::codel(1000));
        // A standing queue: every packet waits 50 ms (10x target) before
        // dequeue, sustained for several intervals.
        let mut dropped_total = 0u64;
        let mut delivered = 0u64;
        let mut t = SimTime::ZERO;
        for i in 0..400 {
            q.enqueue(pkt(100), t, 0.5);
            if i >= 25 {
                // Keep ~25 packets of backlog: dequeue one per enqueue.
                let (pkt, dropped) = q.dequeue_tx(t + 0.002);
                dropped_total += dropped;
                if pkt.is_some() {
                    delivered += 1;
                }
            }
            t += 0.002;
        }
        assert!(
            dropped_total > 0,
            "CoDel must drop once the sojourn time stays above target for an interval"
        );
        assert!(
            delivered > dropped_total,
            "CoDel must not starve the queue: delivered {delivered}, dropped {dropped_total}"
        );
    }

    #[test]
    fn codel_hard_limit_enforced() {
        let mut q = Queue::new(QueueDiscipline::codel(4));
        let mut full = 0;
        for _ in 0..10 {
            if q.enqueue(pkt(100), SimTime::ZERO, 0.5) == EnqueueResult::DroppedFull {
                full += 1;
            }
        }
        assert_eq!(q.len(), 4);
        assert_eq!(full, 6);
    }

    /// Every invalid queue parameter must be rejected at construction with a
    /// clear panic — the `set_link_loss`-style validation audit.
    #[test]
    fn invalid_queue_parameters_are_rejected() {
        let check = |discipline: QueueDiscipline, needle: &str| {
            let err = catch_unwind(|| Queue::new(discipline))
                .expect_err("invalid queue parameters must panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains(needle),
                "panic message {msg:?} should mention {needle:?}"
            );
        };

        check(
            QueueDiscipline::drop_tail(0),
            "drop-tail queue limit must be at least one packet",
        );

        let red = |f: fn(&mut RedConfig)| {
            let mut cfg = RedConfig::for_limit(100);
            f(&mut cfg);
            QueueDiscipline::Red(cfg)
        };
        // Inverted thresholds.
        check(
            red(|c| {
                c.min_threshold = 60.0;
                c.max_threshold = 20.0;
            }),
            "RED thresholds must be finite with 0 < min < max",
        );
        // NaN threshold.
        check(
            red(|c| c.min_threshold = f64::NAN),
            "RED thresholds must be finite with 0 < min < max",
        );
        // Out-of-range max drop probability.
        check(
            red(|c| c.max_drop_probability = 1.5),
            "RED max drop probability must be a finite value in (0, 1]",
        );
        check(
            red(|c| c.max_drop_probability = 0.0),
            "RED max drop probability must be a finite value in (0, 1]",
        );
        // Bad queue weight.
        check(
            red(|c| c.queue_weight = f64::NAN),
            "RED queue weight must be a finite value in (0, 1]",
        );
        check(
            red(|c| c.queue_weight = 0.0),
            "RED queue weight must be a finite value in (0, 1]",
        );
        check(
            red(|c| c.limit_packets = 0),
            "RED queue limit must be at least one packet",
        );

        let codel = |f: fn(&mut CoDelConfig)| {
            let mut cfg = CoDelConfig::for_limit(100);
            f(&mut cfg);
            QueueDiscipline::CoDel(cfg)
        };
        // Non-positive or NaN target / interval.
        check(
            codel(|c| c.target = 0.0),
            "CoDel target must be a positive, finite number of seconds",
        );
        check(
            codel(|c| c.target = f64::NAN),
            "CoDel target must be a positive, finite number of seconds",
        );
        check(
            codel(|c| c.interval = -0.1),
            "CoDel interval must be a positive, finite number of seconds",
        );
        check(
            codel(|c| c.limit_packets = 0),
            "CoDel queue limit must be at least one packet",
        );
    }
}
