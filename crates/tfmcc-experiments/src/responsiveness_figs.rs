//! Figures 11, 13, 20 and 21: responsiveness to changes in loss, RTT and the
//! number of competing flows.
//!
//! Figure 13 is a receiver-count × change-time grid where every point is an
//! independent simulation — it shards across the sweep executor's workers.
//! Figures 11, 20 and 21 are single join/leave scenarios and run as
//! one-point sweeps with their historical seeds.

use netsim::prelude::*;
use tfmcc_agents::population::PopulationSpec;
use tfmcc_agents::session::{ReceiverSpec, TfmccSessionBuilder};
use tfmcc_runner::{Sweep, SweepRunner};
use tfmcc_tcp::{TcpSender, TcpSenderConfig, TcpSink};

use crate::fairness_figs::meter_series;
use crate::output::{Figure, Series};
use crate::scale::Scale;
use crate::sweeps::run_single_sim;

/// Shared star scenario of Figures 11 and 20: four receivers joining in
/// order of their path quality and leaving in reverse order, with one TCP
/// flow per leg for comparison.
fn join_leave_star(
    id: &str,
    title: &str,
    loss_rates: &[f64],
    delays: &[f64],
    scale: Scale,
) -> Figure {
    assert_eq!(loss_rates.len(), delays.len());
    let n = loss_rates.len();
    let interval = scale.pick(30.0, 50.0);
    let first_join = scale.pick(60.0, 100.0);
    let duration = first_join + 2.0 * n as f64 * interval + interval;
    let mut sim = Simulator::new(911);
    let legs: Vec<StarLeg> = loss_rates
        .iter()
        .zip(delays)
        .map(|(&p, &d)| {
            let mut leg =
                StarLeg::clean(1_250_000.0, d / 2.0).with_queue(QueueDiscipline::drop_tail(60));
            if p > 0.0 {
                leg = leg.with_downstream_loss(p);
            }
            leg
        })
        .collect();
    let star = star(&mut sim, &StarConfig::default(), &legs);
    // Receiver i joins at first_join + i*interval and leaves at
    // duration - (i+1)*interval (reverse order), except receiver 0 which is
    // present from the start.
    let specs: Vec<ReceiverSpec> = star
        .receivers
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            if i == 0 {
                ReceiverSpec::always(node)
            } else {
                ReceiverSpec::joining_at(node, first_join + (i - 1) as f64 * interval)
                    .leaving_at(duration - i as f64 * interval)
            }
        })
        .collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        star.sender,
        &PopulationSpec::packets(&specs),
    );
    // One TCP flow per leg for the whole experiment.
    let mut tcp_sinks = Vec::new();
    for (i, &r) in star.receivers.iter().enumerate() {
        let sink = sim.add_agent(r, Port(1), Box::new(TcpSink::new(2.0)));
        sim.add_agent(
            star.sender,
            Port(100 + i as u16),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(r, Port(1)),
                FlowId(5000 + i as u64),
            ))),
        );
        tcp_sinks.push(sink);
    }
    sim.run_until(SimTime::from_secs(duration));

    let mut fig = Figure::new(id, title, "time (s)", "throughput (kbit/s)");
    // The sending rate is what the paper plots for TFMCC; receiver 0 is
    // subscribed throughout so its receive rate tracks it.
    fig.push_series(Series::new(
        "TFMCC",
        meter_series(session.receiver_agent(&sim, 0).meter()),
    ));
    for (i, &sink) in tcp_sinks.iter().enumerate() {
        fig.push_series(Series::new(
            format!("TCP {}", i + 1),
            meter_series(sim.agent::<TcpSink>(sink).unwrap().meter()),
        ));
    }
    // Shape check: the TFMCC rate while the worst receiver is subscribed must
    // be well below the rate before any join.
    let tfmcc = session.receiver_agent(&sim, 0).meter();
    let before = tfmcc.average_between(first_join * 0.5, first_join - 2.0);
    let worst_window_start = first_join + (n - 2) as f64 * interval;
    let during_worst =
        tfmcc.average_between(worst_window_start, worst_window_start + interval - 2.0);
    let after = tfmcc.average_between(duration - interval + 2.0, duration - 2.0);
    fig.note(format!(
        "rate before joins {:.0} kbit/s, while the worst path is subscribed {:.0} kbit/s, after all leave {:.0} kbit/s (paper: rate tracks the currently worst receiver within seconds)",
        before * 8.0 / 1000.0,
        during_worst * 8.0 / 1000.0,
        after * 8.0 / 1000.0
    ));
    let clr_changes = session.sender_agent(&sim).protocol().stats().clr_changes;
    fig.note(format!("CLR changes over the run: {clr_changes}"));
    fig
}

/// Figure 11: responsiveness to changes in the loss rate (star with 0.1 %,
/// 0.5 %, 2.5 % and 12.5 % loss legs, 60 ms RTT).
pub fn fig11_loss_responsiveness(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig11", || {
        join_leave_star(
            "fig11",
            "Responsiveness to changes in the loss rate",
            &[0.001, 0.005, 0.025, 0.125],
            &[0.06, 0.06, 0.06, 0.06],
            scale,
        )
    })
}

/// Figure 20: responsiveness to network delay (30/60/120/240 ms legs).
pub fn fig20_delay_responsiveness(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig20", || {
        join_leave_star(
            "fig20",
            "Responsiveness to network delay",
            &[0.002, 0.002, 0.002, 0.002],
            &[0.03, 0.06, 0.12, 0.24],
            scale,
        )
    })
}

/// Figure 13: delay until a receiver whose RTT increased is selected as CLR,
/// as a function of when the change happens.
pub fn fig13_rtt_responsiveness(runner: &SweepRunner, scale: Scale) -> Figure {
    let receiver_counts: Vec<usize> = scale.pick(vec![10, 40], vec![40, 200, 1000]);
    let change_times: Vec<f64> = scale.pick(vec![10.0, 40.0], vec![10.0, 20.0, 40.0, 80.0, 160.0]);
    let mut fig = Figure::new(
        "fig13",
        "Responsiveness to changes in the RTT",
        "time of change (s)",
        "delay until reaction (s)",
    );
    // Every (receiver count, change time) pair is an independent simulation:
    // the natural sweep of this figure.
    let points: Vec<(usize, f64)> = receiver_counts
        .iter()
        .flat_map(|&n| change_times.iter().map(move |&t| (n, t)))
        .collect();
    let sweep = Sweep::new("fig13", 913, points);
    let reactions = runner.run(&sweep, |pt| {
        let (n, change_at) = *pt.value;
        rtt_change_reaction_delay(n, change_at, scale, pt.seed)
    });
    for (&n, chunk) in receiver_counts
        .iter()
        .zip(reactions.chunks(change_times.len()))
    {
        let points: Vec<(f64, f64)> = change_times
            .iter()
            .zip(chunk)
            .map(|(&t, &reaction)| (t, reaction))
            .collect();
        fig.push_series(Series::new(format!("{n} receivers"), points));
    }
    fig.note(
        "later changes are reacted to faster because more receivers already have valid RTT estimates (paper Figure 13)"
            .to_string(),
    );
    fig
}

/// Runs one Figure-13 trial: `n` receivers with independent 1 % loss; at
/// `change_at` one receiver's path delay quadruples; returns the time until
/// that receiver becomes the CLR (or the remaining duration if it never
/// does).
fn rtt_change_reaction_delay(n: usize, change_at: f64, scale: Scale, seed: u64) -> f64 {
    let duration = change_at + scale.pick(60.0, 150.0);
    let mut sim = Simulator::new(seed);
    let legs: Vec<StarLeg> = (0..n)
        .map(|_| {
            StarLeg::clean(1_250_000.0, 0.03)
                .with_downstream_loss(0.01)
                .with_queue(QueueDiscipline::drop_tail(60))
        })
        .collect();
    let star = star(&mut sim, &StarConfig::default(), &legs);
    let specs: Vec<ReceiverSpec> = star
        .receivers
        .iter()
        .map(|&r| ReceiverSpec::always(r))
        .collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        star.sender,
        &PopulationSpec::packets(&specs),
    );
    sim.run_until(SimTime::from_secs(change_at));
    // Increase receiver 0's path RTT sharply (both directions) so that its
    // calculated rate drops below the others'; the reaction delay is the time
    // until the sender selects it as the CLR.
    sim.set_link_delay(star.downstream_links[0], 0.25);
    sim.set_link_delay(star.upstream_links[0], 0.25);
    let target = tfmcc_proto::packets::ReceiverId(1);
    let step = 0.5;
    let mut t = change_at;
    while t < duration {
        sim.run_until(SimTime::from_secs(t + step));
        t += step;
        if session.sender_agent(&sim).protocol().clr() == Some(target) {
            return t - change_at;
        }
    }
    duration - change_at
}

/// Figure 21: responsiveness to an increasing number of competing TCP flows
/// (the flow count doubles every 50 seconds).
pub fn fig21_flow_doubling(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig21", || {
        let interval = scale.pick(40.0, 50.0);
        let waves: &[usize] = &[1, 2, 4, 8];
        let duration = interval * (waves.len() as f64 + 1.0);
        let mut sim = Simulator::new(921);
        let cfg = DumbbellConfig {
            pairs: 1 + waves.iter().sum::<usize>(),
            bottleneck_bandwidth: 2_000_000.0, // 16 Mbit/s
            bottleneck_delay: 0.03,
            bottleneck_queue: QueueDiscipline::drop_tail(100),
            ..DumbbellConfig::default()
        };
        let d = netsim::topology::dumbbell(&mut sim, &cfg);
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            d.senders[0],
            &[PopulationSpec::packet(d.receivers[0])],
        );
        let mut tcp_sinks: Vec<(usize, netsim::packet::AgentId)> = Vec::new();
        let mut pair = 1;
        for (wave, &count) in waves.iter().enumerate() {
            let start = interval * (wave as f64 + 1.0);
            for _ in 0..count {
                let sink = sim.add_agent(d.receivers[pair], Port(1), Box::new(TcpSink::new(2.0)));
                sim.add_agent(
                    d.senders[pair],
                    Port(1),
                    Box::new(TcpSender::new(
                        TcpSenderConfig::new(
                            Address::new(d.receivers[pair], Port(1)),
                            FlowId(6000 + pair as u64),
                        )
                        .starting_at(start),
                    )),
                );
                tcp_sinks.push((wave, sink));
                pair += 1;
            }
        }
        sim.run_until(SimTime::from_secs(duration));

        let mut fig = Figure::new(
            "fig21",
            "Responsiveness to increased congestion (TCP flow count doubles every interval)",
            "time (s)",
            "throughput (kbit/s)",
        );
        let tfmcc_meter = session.receiver_agent(&sim, 0).meter();
        fig.push_series(Series::new("TFMCC", meter_series(tfmcc_meter)));
        // Aggregate TCP throughput per start wave, as in the paper.
        for wave in 0..waves.len() {
            let mut agg: Vec<(f64, f64)> = Vec::new();
            for &(w, sink) in &tcp_sinks {
                if w != wave {
                    continue;
                }
                let series = meter_series(sim.agent::<TcpSink>(sink).unwrap().meter());
                for (i, &(t, y)) in series.iter().enumerate() {
                    if let Some(slot) = agg.get_mut(i) {
                        slot.1 += y;
                    } else {
                        agg.push((t, y));
                    }
                }
            }
            fig.push_series(Series::new(format!("TCP wave {}", wave + 1), agg));
        }
        // Shape: the TFMCC rate should decrease from interval to interval as
        // the number of flows doubles.
        let mut last = f64::INFINITY;
        let mut monotone = true;
        let mut rates = Vec::new();
        for wave in 0..=waves.len() {
            let from = interval * wave as f64 + interval * 0.4;
            let to = interval * (wave as f64 + 1.0) - 2.0;
            let r = tfmcc_meter.average_between(from, to) * 8.0 / 1000.0;
            if r > last * 1.15 {
                monotone = false;
            }
            last = r;
            rates.push(format!("{r:.0}"));
        }
        fig.note(format!(
            "TFMCC per-interval average (kbit/s): {} — should roughly halve per interval (monotone: {monotone})",
            rates.join(", ")
        ));
        fig
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_rate_tracks_the_worst_subscribed_receiver() {
        let fig = fig11_loss_responsiveness(&SweepRunner::serial(), Scale::Quick);
        // Parse the shape from the summary produced above: before > during.
        let tfmcc = fig.series("TFMCC").unwrap();
        assert!(!tfmcc.points.is_empty());
        let text = fig.summary.join(" ");
        assert!(text.contains("rate before joins"));
    }

    #[test]
    fn fig13_grid_is_thread_count_invariant() {
        let serial = fig13_rtt_responsiveness(&SweepRunner::new(1), Scale::Quick);
        let parallel = fig13_rtt_responsiveness(&SweepRunner::new(4), Scale::Quick);
        assert_eq!(serial.to_json().render(), parallel.to_json().render());
        assert_eq!(serial.series.len(), 2);
        for s in &serial.series {
            assert_eq!(s.points.len(), 2);
        }
    }

    #[test]
    fn fig21_tfmcc_rate_decreases_with_more_flows() {
        let fig = fig21_flow_doubling(&SweepRunner::serial(), Scale::Quick);
        let tfmcc = fig.series("TFMCC").unwrap();
        let early: Vec<f64> = tfmcc
            .points
            .iter()
            .filter(|&&(t, _)| (20.0..40.0).contains(&t))
            .map(|&(_, y)| y)
            .collect();
        let late: Vec<f64> = tfmcc
            .points
            .iter()
            .filter(|&&(t, _)| t > 170.0)
            .map(|&(_, y)| y)
            .collect();
        let early_mean = early.iter().sum::<f64>() / early.len().max(1) as f64;
        let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
        assert!(
            late_mean < early_mean,
            "TFMCC rate must drop as competing flows multiply: {early_mean} -> {late_mean}"
        );
    }
}
