//! Offline stand-in for `criterion`.
//!
//! The build container cannot reach crates.io, so the workspace's benches
//! link against this minimal harness instead.  It exposes the API surface the
//! benches use — `Criterion::bench_function`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! and reports a simple mean wall-clock time per iteration.
//!
//! Each benchmark body executes [`SMOKE_ITERS`] times (so a bench run under
//! `cargo test` doubles as a smoke test and stays fast).  Set
//! `CRITERION_SAMPLE_ITERS` to a larger number for a more stable timing
//! read.  Swap the `[workspace.dependencies]` path for the real `criterion`
//! to get full statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark body when no override is configured.
pub const SMOKE_ITERS: u64 = 3;

fn configured_iters() -> u64 {
    std::env::var("CRITERION_SAMPLE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(SMOKE_ITERS)
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("{name:<50} (no measurement)");
    } else if b.mean_ns >= 1_000_000.0 {
        println!("{name:<50} {:>12.3} ms/iter", b.mean_ns / 1_000_000.0);
    } else {
        println!("{name:<50} {:>12.0} ns/iter", b.mean_ns);
    }
}

/// Identifier for a parameterized benchmark, e.g. `throughput/1000`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, configured_iters(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            iters: configured_iters(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Caps the per-benchmark iteration count (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = self.iters.min(n as u64).max(1);
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.iters, &mut f);
        self
    }

    /// Registers and runs a benchmark parameterized over `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.iters, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (a no-op in this harness).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, SMOKE_ITERS);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("inp", 5), &5u64, |b, &n| {
            b.iter(|| total += n)
        });
        group.finish();
        assert_eq!(total, 10);
    }
}
