//! Glue between the generic sweep runner and `Figure`-producing experiments.

use tfmcc_runner::{Sweep, SweepRunner};

use crate::output::Figure;

/// Runs a single self-contained simulation scenario as a one-point sweep.
///
/// Several figures (9–12, 15, 16, 18–21) are one big simulation rather than
/// a parameter grid; routing them through the executor keeps their timing in
/// the run report and exercises the same `Send` machinery as real sweeps.
/// The scenario keeps its historical fixed seed (the closure ignores the
/// derived point seed), so published shape results are unchanged.
pub fn run_single_sim<F>(runner: &SweepRunner, name: &str, scenario: F) -> Figure
where
    F: Fn() -> Figure + Sync,
{
    let sweep = Sweep::new(name, 0, vec![()]);
    runner
        .run(&sweep, |_pt| scenario())
        .pop()
        .expect("one-point sweep yields one figure")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sim_round_trips_the_figure() {
        let runner = SweepRunner::new(4);
        let fig = run_single_sim(&runner, "unit", || Figure::new("figX", "t", "x", "y"));
        assert_eq!(fig.id, "figX");
        assert_eq!(runner.report().records.len(), 1);
    }
}
