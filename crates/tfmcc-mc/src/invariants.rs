//! The safety properties checked after every transition.
//!
//! Each invariant is a small stateless object so custom checks can be mixed
//! in alongside the four shipped ones ([`default_invariants`]).  An
//! invariant sees the whole [`McWorld`] (all fields are public) and returns
//! a human-readable message on violation; the explorer attaches the action
//! schedule that reached the bad state.

use crate::world::{McConfig, McWorld};

/// Numerical slack for clock/window comparisons.
const EPS: f64 = 1e-9;

/// A safety property of [`McWorld`], checked after every transition.
pub trait Invariant {
    /// Stable identifier, written into counterexample replay files.
    fn name(&self) -> &'static str;
    /// `Err(message)` when the state violates the property.
    fn check(&self, config: &McConfig, world: &McWorld) -> Result<(), String>;
}

/// The four shipped invariants, in checking order.
pub fn default_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(NoRateDeadlock),
        Box::new(RoundTermination),
        Box::new(AggregatorAgreement),
        Box::new(MaxRttConsistency),
    ]
}

/// The sender's rate must stay finite and at least one byte per second, and
/// the sender must never sit CLR-less while it knows a limiting receiver —
/// that is the rate-deadlock of a lost CLR: no CLR means no one drives the
/// rate down, and a stale low rate means no one can drive it up either.
pub struct NoRateDeadlock;

impl Invariant for NoRateDeadlock {
    fn name(&self) -> &'static str {
        "no-rate-deadlock"
    }

    fn check(&self, _config: &McConfig, w: &McWorld) -> Result<(), String> {
        let rate = w.sender.current_rate();
        if !rate.is_finite() || rate < 1.0 - EPS {
            return Err(format!("sender rate {rate} is not a sane send rate"));
        }
        if !w.sender.in_slowstart() && w.sender.has_limited_receiver() && w.sender.clr().is_none() {
            return Err(format!(
                "no CLR at t={} although a limiting receiver is known to the aggregator",
                w.now
            ));
        }
        Ok(())
    }
}

/// Feedback rounds must terminate: the sender may never sit in the same
/// round for longer than the largest feedback window that round ran under
/// (plus one tick of scheduling slack), and the round counter must never
/// move backwards.
pub struct RoundTermination;

impl Invariant for RoundTermination {
    fn name(&self) -> &'static str {
        "feedback-round-termination"
    }

    fn check(&self, config: &McConfig, w: &McWorld) -> Result<(), String> {
        let window = w.sender.feedback_window();
        if !window.is_finite() || window <= 0.0 {
            return Err(format!("feedback window {window} is not positive"));
        }
        let round = w.sender.feedback_round();
        if round < w.prev_round {
            return Err(format!(
                "feedback round went backwards: {} -> {round}",
                w.prev_round
            ));
        }
        let age = w.now - w.sender.round_started_at();
        let bound = w.window_hwm + config.tick + EPS;
        if age > bound {
            return Err(format!(
                "round {round} is {age:.6}s old at t={} but the feedback window never exceeded {:.6}s",
                w.now, w.window_hwm
            ));
        }
        Ok(())
    }
}

/// The incremental aggregator must be observationally equivalent to the
/// reference aggregator: running the same feedback through both senders
/// must yield identical CLR choices, rates, max-RTT and round state — and
/// identical data packets on the wire (checked at transmission time and
/// latched into `shadow_mismatch`).
pub struct AggregatorAgreement;

impl Invariant for AggregatorAgreement {
    fn name(&self) -> &'static str {
        "aggregator-agreement"
    }

    fn check(&self, _config: &McConfig, w: &McWorld) -> Result<(), String> {
        if let Some(mismatch) = &w.shadow_mismatch {
            return Err(mismatch.clone());
        }
        let (s, r) = (&w.sender, &w.shadow);
        if s.clr() != r.clr() {
            return Err(format!(
                "CLR diverged: incremental {:?} vs reference {:?}",
                s.clr(),
                r.clr()
            ));
        }
        if s.current_rate().to_bits() != r.current_rate().to_bits() {
            return Err(format!(
                "rate diverged: incremental {} vs reference {}",
                s.current_rate(),
                r.current_rate()
            ));
        }
        if s.max_rtt().to_bits() != r.max_rtt().to_bits() {
            return Err(format!(
                "max RTT diverged: incremental {} vs reference {}",
                s.max_rtt(),
                r.max_rtt()
            ));
        }
        if s.feedback_round() != r.feedback_round() {
            return Err(format!(
                "feedback round diverged: incremental {} vs reference {}",
                s.feedback_round(),
                r.feedback_round()
            ));
        }
        if s.known_receivers() != r.known_receivers() {
            return Err(format!(
                "receiver census diverged: incremental {} vs reference {}",
                s.known_receivers(),
                r.known_receivers()
            ));
        }
        if s.receivers_with_rtt() != r.receivers_with_rtt() {
            return Err(format!(
                "RTT census diverged: incremental {} vs reference {}",
                s.receivers_with_rtt(),
                r.receivers_with_rtt()
            ));
        }
        if s.in_slowstart() != r.in_slowstart() {
            return Err(format!(
                "slowstart state diverged: incremental {} vs reference {}",
                s.in_slowstart(),
                r.in_slowstart()
            ));
        }
        Ok(())
    }
}

/// The sender's max-RTT aggregate must stay sane, and — the frame property —
/// no action other than a tick, a data transmission or a feedback delivery
/// may move the sender's rate, max-RTT or round.  Report loss in particular
/// must leave the aggregates exactly where they were: dropping a report may
/// *delay* an update but must never *corrupt* one.
pub struct MaxRttConsistency;

impl Invariant for MaxRttConsistency {
    fn name(&self) -> &'static str {
        "max-rtt-consistency"
    }

    fn check(&self, _config: &McConfig, w: &McWorld) -> Result<(), String> {
        let max_rtt = w.sender.max_rtt();
        if !max_rtt.is_finite() || max_rtt < 1e-3 {
            return Err(format!("sender max RTT {max_rtt} is not sane"));
        }
        if !w.sender_touched {
            if w.sender.max_rtt().to_bits() != w.prev_max_rtt_bits {
                return Err(format!(
                    "max RTT moved ({} -> {}) on an action that never touched the sender",
                    f64::from_bits(w.prev_max_rtt_bits),
                    w.sender.max_rtt()
                ));
            }
            if w.sender.current_rate().to_bits() != w.prev_rate_bits {
                return Err(format!(
                    "rate moved ({} -> {}) on an action that never touched the sender",
                    f64::from_bits(w.prev_rate_bits),
                    w.sender.current_rate()
                ));
            }
            if w.sender.feedback_round() != w.prev_round {
                return Err(format!(
                    "round moved ({} -> {}) on an action that never touched the sender",
                    w.prev_round,
                    w.sender.feedback_round()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Model;
    use crate::world::{Action, McModel};

    fn smoke2() -> McModel {
        McModel::new(McConfig::preset("smoke2").unwrap())
    }

    #[test]
    fn default_invariants_pass_on_the_initial_state() {
        let m = smoke2();
        let w = m.initial();
        for inv in default_invariants() {
            inv.check(m.config(), &w)
                .unwrap_or_else(|e| panic!("{} rejected the initial state: {e}", inv.name()));
        }
    }

    #[test]
    fn invariant_names_are_stable() {
        let names: Vec<&str> = default_invariants().iter().map(|i| i.name()).collect();
        assert_eq!(
            names,
            vec![
                "no-rate-deadlock",
                "feedback-round-termination",
                "aggregator-agreement",
                "max-rtt-consistency",
            ]
        );
    }

    #[test]
    fn frame_check_trips_on_an_untouched_sender_mutation() {
        let m = smoke2();
        let mut w = m.apply(&m.initial(), &Action::Tick);
        // Forge a state claiming the sender was not touched although the
        // recorded pre-action aggregates differ.
        w.sender_touched = false;
        w.prev_rate_bits = (w.sender.current_rate() * 2.0).to_bits();
        let err = MaxRttConsistency
            .check(m.config(), &w)
            .expect_err("forged frame must be rejected");
        assert!(err.contains("rate moved"), "{err}");
    }

    #[test]
    fn agreement_check_trips_on_a_latched_mismatch() {
        let m = smoke2();
        let mut w = m.initial();
        w.shadow_mismatch = Some("synthetic divergence".into());
        let err = AggregatorAgreement
            .check(m.config(), &w)
            .expect_err("latched mismatch must be reported");
        assert!(err.contains("synthetic divergence"), "{err}");
    }
}
