//! Protocol-conformance suite for the PGMCC competitor: the acker-driven
//! window must respond to data-path loss (dup-ACK halvings plus the timeout
//! fallback), and two PGMCC flows sharing one bottleneck must converge to a
//! fair allocation.  Mirrors the 5%-loss conformance test of `tfmcc-tfrc`,
//! as a property over loss rates and seeds.

use netsim::packet::AgentId;
use netsim::prelude::*;
use proptest::prelude::*;
use tfmcc_pgmcc::{PgmccReceiverAgent, PgmccSenderAgent};

/// Wires one PGMCC flow (sender on `s`, single receiver on `r`) with
/// non-colliding addressing derived from `index`; returns the receiver.
fn add_flow(sim: &mut Simulator, s: NodeId, r: NodeId, index: u16) -> AgentId {
    let group = GroupId(u32::from(index) + 1);
    let data_port = Port(7000 + 2 * index);
    let sender_port = Port(7001 + 2 * index);
    let flow = FlowId(u64::from(index) + 8);
    let sender = sim.add_agent(
        s,
        sender_port,
        Box::new(PgmccSenderAgent::new(group, data_port, flow, 1000)),
    );
    let sender_addr = sim.agent_addr(sender);
    sim.add_agent(
        r,
        data_port,
        Box::new(PgmccReceiverAgent::new(1, sender_addr, group, flow)),
    )
}

/// Runs one PGMCC flow over a dedicated path with `loss` Bernoulli
/// data-path loss and returns its steady-state throughput in bytes/second.
fn run_path(loss: f64, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let (down, _) = sim.add_duplex_link(a, b, 1_250_000.0, 0.02, QueueDiscipline::drop_tail(200));
    if loss > 0.0 {
        sim.set_link_loss(down, LossModel::Bernoulli { p: loss });
    }
    let receiver = add_flow(&mut sim, a, b, 0);
    sim.run_until(SimTime::from_secs(90.0));
    sim.agent::<PgmccReceiverAgent>(receiver)
        .unwrap()
        .meter()
        .average_between(40.0, 85.0)
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`.
fn jain(rates: &[f64]) -> f64 {
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|r| r * r).sum();
    sum * sum / (rates.len() as f64 * sq)
}

proptest! {
    /// Holes in the cumulative ACK stall it, three dup-ACKs halve the
    /// window: a few percent of data-path loss must cost well over half of
    /// a clean run's (pipe-limited) rate.
    #[test]
    fn pgmcc_rate_responds_to_path_loss(loss in 0.03f64..0.08, seed in 1u64..1_000) {
        let clean = run_path(0.0, seed);
        let lossy = run_path(loss, seed);
        prop_assert!(lossy > 1_000.0, "the lossy flow must still progress: {lossy}");
        prop_assert!(
            lossy < clean * 0.5,
            "{:.1}% loss must at least halve the rate: clean {clean}, lossy {lossy}",
            loss * 100.0
        );
    }

    /// Two PGMCC flows on one bottleneck converge to a fair share.  The
    /// bottleneck runs gentle RED so the window clocks do not phase-lock on
    /// a synchronized drop-tail overflow pattern.
    #[test]
    fn two_pgmcc_flows_share_a_bottleneck_fairly(seed in 1u64..1_000) {
        let mut sim = Simulator::new(seed);
        let left = sim.add_node("left");
        let right = sim.add_node("right");
        sim.add_duplex_link(left, right, 1_000_000.0, 0.02, QueueDiscipline::red_gentle(50));
        let mut receivers = Vec::new();
        for i in 0..2u16 {
            let s = sim.add_node(&format!("s{i}"));
            let r = sim.add_node(&format!("r{i}"));
            sim.add_duplex_link(s, left, 1_250_000.0, 0.005, QueueDiscipline::drop_tail(60));
            sim.add_duplex_link(
                right,
                r,
                1_250_000.0,
                0.005 + 0.002 * f64::from(i),
                QueueDiscipline::drop_tail(60),
            );
            receivers.push(add_flow(&mut sim, s, r, i));
        }
        sim.run_until(SimTime::from_secs(80.0));
        let rates: Vec<f64> = receivers
            .iter()
            .map(|&a| {
                sim.agent::<PgmccReceiverAgent>(a)
                    .unwrap()
                    .meter()
                    .average_between(30.0, 78.0)
            })
            .collect();
        prop_assert!(rates.iter().all(|&r| r > 1_000.0), "a flow starved: {rates:?}");
        let j = jain(&rates);
        prop_assert!(j >= 0.9, "two PGMCC flows should share fairly, Jain {j} ({rates:?})");
    }
}
