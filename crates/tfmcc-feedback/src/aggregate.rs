//! Deterministic aggregate feedback suppression for fluid populations.
//!
//! The Monte-Carlo machinery in [`crate::round`] samples every receiver's
//! timer; a fluid population cannot afford that (and must stay
//! deterministic).  Instead, each quantized rate bin of a population places
//! **one** representative timer at the *expected minimum* of its `n_k`
//! member draws: for `n_k` i.i.d. uniforms the expected minimum is
//! `1/(n_k + 1)`, which is fed through the exact
//! [`FeedbackPlanner::timer`] formula the packet-level receivers use.  The
//! suppression dynamics are then evaluated in closed form:
//!
//! * the bin whose representative timer fires first always responds;
//! * any other bin responds only if its timer fires before the first
//!   response has propagated back (`first + suppression_delay`) **and** the
//!   rate-based cancellation rule ([`FeedbackPlanner::should_cancel`])
//!   would not cancel it against the first response's rate.
//!
//! This is the per-round work a fluid population agent does: `O(bins)`
//! regardless of the receiver count, with the same bias/cancellation
//! constants as the packet-level path, so the synthetic reports a hybrid
//! session injects into the sender are governed by the very code paths the
//! equivalence tests pin.

use tfmcc_proto::feedback::FeedbackPlanner;

/// One quantized bin offered to an aggregate round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateBin {
    /// Number of receivers the bin stands for.
    pub count: u64,
    /// The bin's calculated rate (bytes/s); infinite for lossless bins.
    pub rate: f64,
    /// The bin's representative RTT in seconds.
    pub rtt: f64,
}

/// A bin's scheduled response within one aggregate round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateResponse {
    /// Index of the bin in the input slice.
    pub bin: usize,
    /// When the representative timer fires, seconds from round start.
    pub fire_at: f64,
    /// Number of receivers the response stands for.
    pub weight: u64,
    /// The reported rate.
    pub rate: f64,
}

/// The expected-minimum uniform sample for `n` i.i.d. draws: `1/(n+1)`.
///
/// Plugging this into the (monotone) timer formula places the bin's
/// representative timer at a deterministic, principled point of the order
/// statistics instead of sampling.
pub fn expected_min_uniform(n: u64) -> f64 {
    1.0 / (n as f64 + 1.0)
}

/// Evaluates one deterministic aggregate feedback round.
///
/// * `planner` — the same planner (bias constants, `N` estimate) the
///   packet-level receivers use,
/// * `bins` — the population's quantized bins,
/// * `sending_rate` — the sender's current rate (denominator of the bias
///   ratio),
/// * `window` — the feedback window `T` in seconds,
/// * `suppression_delay` — how long after the first response fires the
///   suppressing echo reaches the other bins (one-way delay to the sender
///   plus the echo's return, typically ≈ one RTT).
///
/// Returns the responding bins ordered by fire time (ties by bin index).
/// Empty input gives an empty round.
pub fn aggregate_round(
    planner: &FeedbackPlanner,
    bins: &[AggregateBin],
    sending_rate: f64,
    window: f64,
    suppression_delay: f64,
) -> Vec<AggregateResponse> {
    assert!(
        suppression_delay >= 0.0,
        "suppression delay must be non-negative"
    );
    let mut timers = aggregate_timers(planner, bins, sending_rate, window);
    let Some(first) = timers.first().copied() else {
        return timers;
    };
    let horizon = first.fire_at + suppression_delay;
    timers.retain(|t| {
        t.bin == first.bin || (t.fire_at <= horizon && !planner.should_cancel(t.rate, first.rate))
    });
    timers
}

/// Every bin's deterministic representative timer, **without** suppression —
/// the census a fluid population agent performs in its first feedback round
/// so the sender learns the whole rate distribution (and the population
/// head-count) before the suppressed steady state sets in.
///
/// Returns one response per non-empty bin, ordered by fire time (ties by bin
/// index).
pub fn aggregate_timers(
    planner: &FeedbackPlanner,
    bins: &[AggregateBin],
    sending_rate: f64,
    window: f64,
) -> Vec<AggregateResponse> {
    assert!(
        sending_rate > 0.0,
        "aggregate round needs a positive sending rate"
    );
    let mut timers: Vec<AggregateResponse> = bins
        .iter()
        .enumerate()
        .filter(|(_, b)| b.count > 0)
        .map(|(i, b)| {
            let ratio = if b.rate.is_finite() {
                b.rate / sending_rate
            } else {
                1.0
            };
            AggregateResponse {
                bin: i,
                fire_at: planner.timer(ratio, window, expected_min_uniform(b.count)),
                weight: b.count,
                rate: b.rate,
            }
        })
        .collect();
    timers.sort_by(|a, b| a.fire_at.total_cmp(&b.fire_at).then(a.bin.cmp(&b.bin)));
    timers
}

/// The lowest finite rate among the responses of an aggregate round, if any
/// — what the sender's per-round minimum tracking will see from this
/// population.
pub fn round_min_rate(responses: &[AggregateResponse]) -> Option<f64> {
    responses
        .iter()
        .map(|r| r.rate)
        .filter(|r| r.is_finite())
        .min_by(|a, b| a.total_cmp(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfmcc_proto::config::TfmccConfig;

    fn planner() -> FeedbackPlanner {
        FeedbackPlanner::from_config(&TfmccConfig::default())
    }

    fn bin(count: u64, rate: f64) -> AggregateBin {
        AggregateBin {
            count,
            rate,
            rtt: 0.1,
        }
    }

    #[test]
    fn expected_min_uniform_shrinks_with_count() {
        assert_eq!(expected_min_uniform(1), 0.5);
        assert!(expected_min_uniform(1000) < expected_min_uniform(10));
        assert!(expected_min_uniform(u64::MAX) > 0.0);
    }

    #[test]
    fn empty_and_zero_count_bins_produce_no_responses() {
        let p = planner();
        assert!(aggregate_round(&p, &[], 1000.0, 3.0, 0.1).is_empty());
        let r = aggregate_round(&p, &[bin(0, 500.0)], 1000.0, 3.0, 0.1);
        assert!(r.is_empty());
    }

    #[test]
    fn lowest_rate_bin_always_responds() {
        let p = planner();
        let bins = [bin(1000, 900.0), bin(1000, 400.0), bin(1000, 700.0)];
        let r = aggregate_round(&p, &bins, 1000.0, 3.0, 0.1);
        assert!(!r.is_empty());
        // The slowest bin has the strongest bias, so it fires first and its
        // report survives.
        assert_eq!(r[0].bin, 1);
        assert_eq!(r[0].weight, 1000);
        assert_eq!(round_min_rate(&r), Some(400.0));
    }

    #[test]
    fn near_equal_rates_are_suppressed() {
        let p = planner(); // alpha = 0.1
        let bins = [bin(1000, 400.0), bin(1000, 401.0), bin(1000, 405.0)];
        let r = aggregate_round(&p, &bins, 1000.0, 3.0, 10.0);
        // A huge suppression delay lets every timer fire before the echo,
        // but the cancellation rule still kills the near-duplicates.
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].bin, 0);
    }

    #[test]
    fn distinctly_slower_bins_survive_when_firing_early_enough() {
        let p = planner();
        // Rates far enough apart that cancellation does not trigger
        // (0.5 < 0.9 * 400 → 360; 200 < 360 survives in the other
        // direction: the *slow* one fires first).
        let bins = [bin(1000, 200.0), bin(1000, 900.0)];
        let r = aggregate_round(&p, &bins, 1000.0, 3.0, 10.0);
        // Slow bin first; the fast bin's rate 900 ≥ 0.9·200, cancelled.
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].bin, 0);
        // Reverse: if the *fast* bin somehow fired first it would not
        // suppress the slow one — emulate by a zero suppression horizon.
        let r = aggregate_round(&p, &bins, 1000.0, 3.0, 0.0);
        assert_eq!(r[0].bin, 0, "bias must order the slow bin first");
    }

    #[test]
    fn infinite_rate_bins_report_no_finite_minimum() {
        let p = planner();
        let bins = [bin(1000, f64::INFINITY)];
        let r = aggregate_round(&p, &bins, 1000.0, 3.0, 0.1);
        assert_eq!(r.len(), 1);
        assert_eq!(round_min_rate(&r), None);
    }

    #[test]
    fn timers_are_deterministic() {
        let p = planner();
        let bins = [bin(123, 500.0), bin(456, 800.0)];
        let a = aggregate_round(&p, &bins, 1000.0, 3.0, 0.1);
        let b = aggregate_round(&p, &bins, 1000.0, 3.0, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn bigger_bins_fire_earlier() {
        // More receivers → smaller expected-minimum uniform → earlier timer
        // (the exponential part is monotone in the uniform).
        let p = planner();
        let small = aggregate_round(&p, &[bin(10, 500.0)], 1000.0, 3.0, 0.0)[0].fire_at;
        let large = aggregate_round(&p, &[bin(100_000, 500.0)], 1000.0, 3.0, 0.0)[0].fire_at;
        assert!(large <= small, "large {large} vs small {small}");
    }
}
