//! Property test: a domain-sharded run (2 or 4 domains, worker threads,
//! conservative lookahead windows) produces exactly the same simulation as
//! the single-queue run, over randomized star and dumbbell topologies with
//! loss, delay spread and membership churn — under both event schedulers.
//!
//! This is the byte-identical-replay contract of `netsim::sim`'s parallel
//! core: partitioning moves state and RNG streams into per-domain shards,
//! cross-domain packets travel through deterministic handoff mailboxes, and
//! membership transitions are replayed by global queue position — so the
//! full delivery sequences, per-link statistics and the stats digest match
//! the `domains=1` run bit for bit, for any domain count.

use std::any::Any;

use netsim::prelude::*;
use netsim::sim::Agent;
use proptest::prelude::*;

/// Payload carrying a recognizable sequence number.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Marked {
    seq: u64,
}

/// Joins `group`, records every delivery, and toggles its membership on a
/// per-receiver cycle when configured — churn is what drives the
/// cross-domain membership-delta machinery.
struct ChurningMember {
    group: GroupId,
    toggle_every: Option<f64>,
    joined: bool,
    // (time, payload seq, size).  Raw packet ids are excluded on purpose:
    // shards allocate ids in disjoint arithmetic progressions (`id_stride`),
    // so the numbers differ by domain count while the packets themselves —
    // arrival time, payload, size, order — are identical.
    log: Vec<(SimTime, u64, u32)>,
}

impl Agent for ChurningMember {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.group);
        self.joined = true;
        if let Some(t) = self.toggle_every {
            ctx.schedule(t, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.joined {
            ctx.leave_group(self.group);
        } else {
            ctx.join_group(self.group);
        }
        self.joined = !self.joined;
        if let Some(t) = self.toggle_every {
            ctx.schedule(t, 0);
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let seq = packet
            .payload
            .downcast_ref::<Marked>()
            .map(|m| m.seq)
            .unwrap_or(u64::MAX);
        self.log.push((ctx.now(), seq, packet.size));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Multicast source sending `count` marked packets at a fixed interval.
struct MarkedSource {
    dst: Dest,
    count: u64,
    interval: f64,
    sent: u64,
}

impl Agent for MarkedSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        if self.count > 0 {
            ctx.schedule(0.01, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        let pkt = Packet::new(
            ctx.addr(),
            self.dst,
            400 + (self.sent % 3) as u32 * 300,
            FlowId(1),
            Payload::new(Marked { seq: self.sent }),
        );
        ctx.send(pkt);
        self.sent += 1;
        if self.sent < self.count {
            ctx.schedule(self.interval, 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Which topology shape a scenario instance builds.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// One hub, every receiver on its own leg — each leg is a bottleneck
    /// domain of its own.
    Star,
    /// Two hubs joined by a bottleneck; receivers split between the sides,
    /// the source on the left — multicast traffic crosses the cut.
    Dumbbell,
}

/// The observable outcome of one scenario run: per-receiver delivery logs,
/// summed link delivery/drop counters and the stats digest.
struct Outcome {
    logs: Vec<Vec<(SimTime, u64, u32)>>,
    delivered: u64,
    dropped: u64,
    digest: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    shape: Shape,
    scheduler: SchedulerKind,
    domains: usize,
    seed: u64,
    receivers: usize,
    churners: usize,
    loss_percent: u64,
    packet_count: u64,
    toggle_every_ms: u64,
) -> Outcome {
    let mut sim = Simulator::with_scheduler(seed, scheduler);
    sim.set_domains(domains);
    let group = GroupId(3);
    let mut ids = Vec::new();
    let mut rx_links = Vec::new();
    let mut add_member = |sim: &mut Simulator, node: NodeId, i: usize| {
        let toggle_every = if i < churners {
            Some(0.05 + toggle_every_ms as f64 / 1000.0 + 0.013 * i as f64)
        } else {
            None
        };
        ids.push(sim.add_agent(
            node,
            Port(7),
            Box::new(ChurningMember {
                group,
                toggle_every,
                joined: false,
                log: Vec::new(),
            }),
        ));
    };
    let sender_node = match shape {
        Shape::Star => {
            let legs: Vec<StarLeg> = (0..receivers)
                .map(|i| {
                    let mut leg = StarLeg::clean(
                        50_000.0 + 10_000.0 * (i % 4) as f64,
                        0.005 + 0.002 * (i % 3) as f64,
                    );
                    if i % 2 == 0 && loss_percent > 0 {
                        leg = leg.with_downstream_loss(loss_percent as f64 / 100.0);
                    }
                    leg
                })
                .collect();
            let star = star(&mut sim, &StarConfig::default(), &legs);
            for (i, &node) in star.receivers.iter().enumerate() {
                add_member(&mut sim, node, i);
            }
            rx_links = star.downstream_links.clone();
            star.sender
        }
        Shape::Dumbbell => {
            let left = sim.add_node("left");
            let right = sim.add_node("right");
            sim.add_duplex_link(left, right, 120_000.0, 0.02, QueueDiscipline::drop_tail(20));
            let sender = sim.add_node("src");
            sim.add_duplex_link(
                sender,
                left,
                200_000.0,
                0.004,
                QueueDiscipline::drop_tail(30),
            );
            for i in 0..receivers {
                let hub = if i % 3 == 0 { left } else { right };
                let node = sim.add_node(&format!("r{i}"));
                let (down, _up) = sim.add_duplex_link(
                    hub,
                    node,
                    60_000.0 + 8_000.0 * (i % 4) as f64,
                    0.005 + 0.002 * (i % 3) as f64,
                    QueueDiscipline::drop_tail(12),
                );
                if i % 2 == 0 && loss_percent > 0 {
                    sim.set_link_loss(
                        down,
                        LossModel::Bernoulli {
                            p: loss_percent as f64 / 100.0,
                        },
                    );
                }
                rx_links.push(down);
                add_member(&mut sim, node, i);
            }
            sender
        }
    };
    sim.add_agent(
        sender_node,
        Port(7),
        Box::new(MarkedSource {
            dst: Dest::Multicast {
                group,
                port: Port(7),
            },
            count: packet_count,
            interval: 0.02,
            sent: 0,
        }),
    );
    sim.run_until(SimTime::from_secs(3.0));
    let logs = ids
        .iter()
        .map(|&id| sim.agent::<ChurningMember>(id).unwrap().log.clone())
        .collect();
    let mut delivered = 0;
    let mut dropped = 0;
    for &l in &rx_links {
        let stats = sim.link_stats(l);
        delivered += stats.delivered;
        dropped += stats.dropped_loss + stats.dropped_queue;
    }
    Outcome {
        logs,
        delivered,
        dropped,
        digest: sim.stats().digest(),
    }
}

proptest! {
    // Each case runs a topology shape under 2 schedulers × 3 domain counts
    // (case count comes from PROPTEST_CASES, default 64).
    #[test]
    fn sharded_runs_match_single_queue_bit_for_bit(
        seed in 0u64..1_000_000,
        star_shape in any::<bool>(),
        receivers in 2usize..10,
        churn_fraction in 0usize..3,
        loss_percent in 0u64..30,
        packet_count in 1u64..40,
        toggle_every_ms in 0u64..400,
    ) {
        let shape = if star_shape { Shape::Star } else { Shape::Dumbbell };
        let churners = receivers * churn_fraction / 2;
        for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let single = run_scenario(
                shape, scheduler, 1,
                seed, receivers, churners, loss_percent, packet_count, toggle_every_ms,
            );
            for domains in [2usize, 4] {
                let sharded = run_scenario(
                    shape, scheduler, domains,
                    seed, receivers, churners, loss_percent, packet_count, toggle_every_ms,
                );
                prop_assert_eq!(&single.logs, &sharded.logs,
                    "delivery sequences diverged at {:?}/{:?} domains={}",
                    shape, scheduler, domains);
                prop_assert_eq!(single.delivered, sharded.delivered,
                    "delivered link counts diverged at {:?}/{:?} domains={}",
                    shape, scheduler, domains);
                prop_assert_eq!(single.dropped, sharded.dropped,
                    "drop counts diverged at {:?}/{:?} domains={}",
                    shape, scheduler, domains);
                prop_assert_eq!(single.digest, sharded.digest,
                    "stats digests diverged at {:?}/{:?} domains={}",
                    shape, scheduler, domains);
            }
        }
    }
}
