//! PGMCC sender: multicast data paced by a TCP-like window driven by the
//! acker's ACK stream.

use std::any::Any;

use netsim::packet::{Dest, FlowId, GroupId, Packet, Payload, Port};
use netsim::sim::{Agent, Context};

use crate::acker::AckerTracker;
use crate::PgmccMessage;

const SEND_TOKEN: u64 = 1;
const HOUSEKEEPING_TOKEN: u64 = 2;

/// Counters exposed by the sender.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PgmccSenderStats {
    /// Data packets sent.
    pub data_packets: u64,
    /// Window halvings due to detected loss.
    pub loss_events: u64,
    /// Acker changes.
    pub acker_changes: u64,
}

/// The PGMCC sender agent.
pub struct PgmccSenderAgent {
    group: GroupId,
    data_port: Port,
    flow: FlowId,
    packet_size: u32,
    /// Congestion window in packets, maintained against the acker.
    window: f64,
    ssthresh: f64,
    /// Highest sequence number sent.
    next_seq: u64,
    /// Highest cumulative ACK from the acker.
    acked: u64,
    dup_acks: u32,
    /// The acker's hole count as of the last processed ACK.  `u64::MAX`
    /// marks a resync: the next ACK (e.g. the first from a new acker)
    /// establishes the baseline without registering a loss event.
    last_lost_total: u64,
    /// Sequence number that must be cumulatively acknowledged before
    /// another hole may halve the window again (one halving per window of
    /// loss, as in TCP's fast recovery).
    recovery_point: u64,
    tracker: AckerTracker,
    srtt: f64,
    stats: PgmccSenderStats,
    /// Time the most recent ACK was processed, for the timeout fallback.
    last_ack_at: f64,
    started: bool,
}

impl PgmccSenderAgent {
    /// Creates the sender, multicasting to `group` on `data_port`.
    pub fn new(group: GroupId, data_port: Port, flow: FlowId, packet_size: u32) -> Self {
        PgmccSenderAgent {
            group,
            data_port,
            flow,
            packet_size,
            window: 2.0,
            ssthresh: 64.0,
            next_seq: 0,
            acked: 0,
            dup_acks: 0,
            last_lost_total: u64::MAX,
            recovery_point: 0,
            tracker: AckerTracker::new(f64::from(packet_size), 0.85),
            srtt: 0.2,
            stats: PgmccSenderStats::default(),
            last_ack_at: 0.0,
            started: false,
        }
    }

    /// Current congestion window in packets.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The current acker, if any.
    pub fn acker(&self) -> Option<u64> {
        self.tracker.acker()
    }

    /// Counters.
    pub fn stats(&self) -> PgmccSenderStats {
        self.stats
    }

    fn in_flight(&self) -> u64 {
        self.next_seq.saturating_sub(self.acked)
    }

    fn send_data(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now().as_secs();
        let msg = PgmccMessage::Data {
            seq: self.next_seq,
            timestamp: now,
            acker: self.tracker.acker(),
        };
        self.next_seq += 1;
        self.stats.data_packets += 1;
        let pkt = Packet::new(
            ctx.addr(),
            Dest::Multicast {
                group: self.group,
                port: self.data_port,
            },
            self.packet_size,
            self.flow,
            Payload::new(msg),
        );
        ctx.send(pkt);
    }

    fn fill_window(&mut self, ctx: &mut Context<'_>) {
        let w = self.window.floor().max(1.0) as u64;
        while self.in_flight() < w {
            self.send_data(ctx);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack(
        &mut self,
        ctx: &mut Context<'_>,
        cumulative: u64,
        lost_total: u64,
        echo_timestamp: f64,
        loss_rate: f64,
        receiver: u64,
    ) {
        let now = ctx.now().as_secs();
        let rtt = (now - echo_timestamp).max(1e-3);
        self.srtt = 0.875 * self.srtt + 0.125 * rtt;
        self.last_ack_at = now;
        if self.tracker.update(receiver, loss_rate, self.srtt, now) {
            self.stats.acker_changes += 1;
            // A new acker starts from a clean window state to avoid reacting
            // to the previous acker's sequence history.
            self.dup_acks = 0;
            self.last_lost_total = u64::MAX;
        }
        // The cumulative point skips holes (no retransmission), so loss
        // reaches the window through the acker's hole counter: any new
        // holes halve the window, at most once per window in flight.
        if self.last_lost_total == u64::MAX {
            self.last_lost_total = lost_total;
        } else if lost_total > self.last_lost_total {
            self.last_lost_total = lost_total;
            if cumulative > self.recovery_point {
                self.stats.loss_events += 1;
                self.ssthresh = (self.window / 2.0).max(2.0);
                self.window = self.ssthresh;
                self.recovery_point = self.next_seq;
            }
        }
        if cumulative > self.acked {
            let newly = cumulative - self.acked;
            self.acked = cumulative;
            self.next_seq = self.next_seq.max(self.acked);
            self.dup_acks = 0;
            if self.window < self.ssthresh {
                self.window += newly as f64;
            } else {
                self.window += newly as f64 / self.window;
            }
            self.window = self.window.min(4096.0);
        } else if self.in_flight() > 0 {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                self.stats.loss_events += 1;
                self.ssthresh = (self.window / 2.0).max(2.0);
                self.window = self.ssthresh;
                self.dup_acks = 0;
                // Packet-level model: jump the cumulative point forward so the
                // window reopens (reliability is out of scope, Section 5).
                self.acked = self.acked.saturating_add(1);
            }
        }
        self.fill_window(ctx);
    }
}

impl Agent for PgmccSenderAgent {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule(0.0, SEND_TOKEN);
        ctx.schedule(1.0, HOUSEKEEPING_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            SEND_TOKEN => {
                let now = ctx.now().as_secs();
                if !self.started {
                    self.started = true;
                    self.last_ack_at = now;
                    self.fill_window(ctx);
                }
                // Timeout fallback: if the ACK clock has stalled (everything
                // in flight was lost), behave like a TCP timeout — collapse
                // the window, skip the hole and restart.
                if self.in_flight() > 0 && now - self.last_ack_at > (4.0 * self.srtt).max(1.0) {
                    self.stats.loss_events += 1;
                    self.ssthresh = (self.window / 2.0).max(2.0);
                    self.window = 1.0;
                    self.acked = self.next_seq;
                    self.last_ack_at = now;
                    self.fill_window(ctx);
                }
                ctx.schedule(self.srtt.max(0.05), SEND_TOKEN);
            }
            HOUSEKEEPING_TOKEN => {
                let now = ctx.now().as_secs();
                if self.tracker.expire(now - 10.0) {
                    self.stats.acker_changes += 1;
                }
                ctx.schedule(1.0, HOUSEKEEPING_TOKEN);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(msg) = packet.payload.downcast_ref::<PgmccMessage>() else {
            return;
        };
        match *msg {
            PgmccMessage::Ack {
                receiver,
                cumulative,
                lost_total,
                echo_timestamp,
                loss_rate,
                ..
            } => self.on_ack(
                ctx,
                cumulative,
                lost_total,
                echo_timestamp,
                loss_rate,
                receiver,
            ),
            PgmccMessage::Report {
                receiver,
                echo_timestamp,
                loss_rate,
            } => {
                let now = ctx.now().as_secs();
                let rtt = (now - echo_timestamp).max(1e-3);
                if self.tracker.update(receiver, loss_rate, rtt, now) {
                    self.stats.acker_changes += 1;
                }
            }
            PgmccMessage::Data { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::PgmccReceiverAgent;
    use netsim::packet::{Address, AgentId};
    use netsim::prelude::*;

    fn build_pair(sim: &mut Simulator, a: NodeId, b: NodeId) -> (AgentId, AgentId) {
        let group = GroupId(88);
        let data_port = Port(7000);
        let sender_port = Port(7001);
        let sender_addr = Address::new(a, sender_port);
        let sender = sim.add_agent(
            a,
            sender_port,
            Box::new(PgmccSenderAgent::new(group, data_port, FlowId(8), 1000)),
        );
        let receiver = sim.add_agent(
            b,
            data_port,
            Box::new(PgmccReceiverAgent::new(1, sender_addr, group, FlowId(8))),
        );
        (sender, receiver)
    }

    #[test]
    fn ack_clock_opens_the_window_on_a_clean_path() {
        let mut sim = Simulator::new(411);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        // Plenty of bandwidth and queue: the ACK clock should open the
        // window well past its initial two packets without loss events.
        sim.add_duplex_link(a, b, 12_500_000.0, 0.02, QueueDiscipline::drop_tail(2000));
        let (sender, _) = build_pair(&mut sim, a, b);
        sim.run_until(SimTime::from_secs(10.0));
        let s: &PgmccSenderAgent = sim.agent(sender).unwrap();
        assert!(
            s.window() > 10.0,
            "window should grow from 2 under a pure ACK clock, got {}",
            s.window()
        );
        assert!(s.stats().data_packets > 100);
        assert_eq!(s.acker(), Some(1));
    }

    #[test]
    fn loss_is_survived_and_reported_by_the_acker() {
        // The cumulative ACK skips holes (reliability is out of scope), but
        // the acker's hole counter must still drive window halvings, and
        // its loss_rate the election — the window must stay in its legal
        // range and data must keep flowing regardless.
        let mut sim = Simulator::new(412);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (down, _) =
            sim.add_duplex_link(a, b, 1_250_000.0, 0.02, QueueDiscipline::drop_tail(100));
        sim.set_link_loss(down, LossModel::Bernoulli { p: 0.03 });
        let (sender, receiver) = build_pair(&mut sim, a, b);
        sim.run_until(SimTime::from_secs(60.0));
        let s: &PgmccSenderAgent = sim.agent(sender).unwrap();
        assert!(
            (1.0..=4096.0).contains(&s.window()),
            "window left its legal range: {}",
            s.window()
        );
        assert!(s.stats().data_packets > 500, "data must keep flowing");
        let r: &PgmccReceiverAgent = sim.agent(receiver).unwrap();
        assert!(
            r.loss_rate() > 0.005,
            "the acker must report the 3% path loss, got {}",
            r.loss_rate()
        );
    }

    #[test]
    fn ack_blackout_triggers_the_timeout_fallback() {
        let mut sim = Simulator::new(413);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (down, up) =
            sim.add_duplex_link(a, b, 1_250_000.0, 0.02, QueueDiscipline::drop_tail(100));
        let (sender, _) = build_pair(&mut sim, a, b);
        sim.run_until(SimTime::from_secs(10.0));
        let before = {
            let s: &PgmccSenderAgent = sim.agent(sender).unwrap();
            s.stats().loss_events
        };
        // Kill the path completely: no data arrives, no ACKs return.  The
        // sender's ACK clock stalls and only the timeout fallback can act.
        sim.set_link_loss(down, LossModel::Bernoulli { p: 1.0 });
        sim.set_link_loss(up, LossModel::Bernoulli { p: 1.0 });
        sim.run_until(SimTime::from_secs(30.0));
        let s: &PgmccSenderAgent = sim.agent(sender).unwrap();
        assert!(
            s.stats().loss_events > before,
            "the blackout must register as loss via the timeout fallback"
        );
        assert!(
            s.window() <= 2.0,
            "the window must collapse on timeout, got {}",
            s.window()
        );
    }
}
