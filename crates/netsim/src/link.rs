//! Unidirectional links with bandwidth, propagation delay, a queue discipline
//! and an optional random-loss model.
//!
//! Duplex connectivity is modelled as two independent unidirectional links,
//! mirroring how the evaluation topologies (paper Figure 8, the star
//! topologies of Sections 4.2–4.3, the tail circuits of Figure 10) are
//! specified: per-direction bandwidth, delay and loss.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::packet::{LinkId, NodeId, Packet};
use crate::queue::{EnqueueResult, Queue, QueueDiscipline};
use crate::time::SimTime;

/// Random loss applied to packets traversing a link, independent of queueing.
///
/// Used for the star-topology experiments where the paper configures links
/// with fixed loss rates (0.1 %, 0.5 %, 2.5 %, 12.5 %) and for the lossy
/// feedback paths of Appendix D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No random loss; only queue overflows drop packets.
    None,
    /// Each packet is dropped independently with probability `p`.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
}

impl LossModel {
    /// Returns true if a packet should be dropped, given a uniform sample.
    pub fn drops(&self, uniform: f64) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => uniform < *p,
        }
    }

    /// Panics (with the offending value) unless the model's parameters are
    /// valid — finite drop probability within `[0, 1]`.
    pub fn validate(&self) {
        if let LossModel::Bernoulli { p } = self {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(p),
                "Bernoulli loss probability must be a finite value in [0, 1], got {p}"
            );
        }
    }
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped by the queue discipline: full queue, RED early drop,
    /// or CoDel sojourn-time drop at dequeue.
    pub dropped_queue: u64,
    /// Packets dropped by the random loss model.
    pub dropped_loss: u64,
    /// Packets fully delivered to the downstream node.
    pub delivered: u64,
    /// Bytes fully delivered to the downstream node.
    pub delivered_bytes: u64,
}

/// A unidirectional link.
#[derive(Debug)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Capacity in bytes per second.
    pub bandwidth: f64,
    /// Propagation delay in seconds.
    pub delay: f64,
    /// Random loss model applied at ingress.
    pub loss: LossModel,
    queue: Queue,
    /// Packet currently being serialized onto the wire, if any (RED links
    /// and the head-of-burst packet of an idle→busy transition).
    in_flight: Option<Packet>,
    /// Completion horizon of the current drained burst (drop-tail links
    /// only): the link is busy until this time, and the one pending
    /// `TxComplete` event fires exactly then.  `None` when no burst is in
    /// progress.
    batch_until: Option<SimTime>,
    /// Transmission start times (ascending) of burst packets whose
    /// serialization has not yet begun at the current simulated time.  A
    /// burst drain hands every queued packet's future delivery to the
    /// caller at once, but each packet still occupies a queue slot until
    /// its transmission starts — these timestamps are what keeps the
    /// drop-tail limit check exact under batching.
    pending_starts: VecDeque<SimTime>,
    /// This link's private RNG stream for loss and RED draws.  Each link is
    /// seeded independently (splitmix64 over the simulation seed and the
    /// link id), so one link's draw sequence never shifts when other links
    /// or agents are added to the scenario.
    rng: SmallRng,
    /// Counters.
    pub stats: LinkStats,
}

/// What a link did with a packet offered to it.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkAccept {
    /// The packet was queued (or started transmitting); if transmission
    /// started, the completion time is returned so the caller can schedule a
    /// `TxComplete` event.
    Accepted {
        /// `Some(t)` if the link was idle and serialization of this packet
        /// completes at `t`.
        tx_complete_at: Option<SimTime>,
    },
    /// The packet was dropped (loss model or full queue).
    Dropped,
}

impl Link {
    /// Creates an idle link; `seed` initialises the link's private RNG
    /// stream for loss and RED draws.
    ///
    /// Bandwidth and delay must be positive and finite (same contract as
    /// `Simulator::add_link`): a zero-bandwidth link never transmits and a
    /// zero-delay link has a degenerate zero routing metric.
    pub fn new(
        id: LinkId,
        from: NodeId,
        to: NodeId,
        bandwidth: f64,
        delay: f64,
        discipline: QueueDiscipline,
        seed: u64,
    ) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "link bandwidth must be a positive, finite number of bytes/s, got {bandwidth}"
        );
        assert!(
            delay.is_finite() && delay > 0.0,
            "link delay must be a positive, finite number of seconds, got {delay}"
        );
        Link {
            id,
            from,
            to,
            bandwidth,
            delay,
            loss: LossModel::None,
            queue: Queue::new(discipline),
            in_flight: None,
            batch_until: None,
            pending_starts: VecDeque::new(),
            rng: SmallRng::seed_from_u64(seed),
            stats: LinkStats::default(),
        }
    }

    /// Serialization time of a packet of `size` bytes on this link.
    pub fn tx_time(&self, size: u32) -> f64 {
        f64::from(size) / self.bandwidth
    }

    /// Number of packets waiting for their transmission to start (not
    /// counting the one in flight).  Burst-drained packets whose start time
    /// has not yet passed may still be counted.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + self.pending_starts.len()
    }

    /// Offers a packet to this link, drawing any needed loss/RED samples
    /// from the link's own deterministic RNG stream.
    pub fn offer(&mut self, packet: Packet, now: SimTime) -> LinkAccept {
        let loss_uniform: f64 = self.rng.gen();
        // The queue sample is drawn up front (whether or not the packet ends
        // up queued) so a link's draw sequence depends only on how many
        // packets were offered to it, not on its queue occupancy history.
        let queue_uniform: f64 = self.rng.gen();
        self.offer_sampled(packet, now, loss_uniform, queue_uniform)
    }

    /// [`Link::offer`] with explicit uniform samples in `[0, 1)` for the
    /// loss model and RED — the deterministic core, also used by tests that
    /// need to force a drop or an acceptance.
    pub fn offer_sampled(
        &mut self,
        packet: Packet,
        now: SimTime,
        loss_uniform: f64,
        queue_uniform: f64,
    ) -> LinkAccept {
        if self.loss.drops(loss_uniform) {
            self.stats.dropped_loss += 1;
            return LinkAccept::Dropped;
        }
        if self.in_flight.is_none() && self.batch_until.is_none() {
            // Link idle: begin transmitting immediately, bypassing the queue.
            let done = now + self.tx_time(packet.size);
            self.stats.enqueued += 1;
            self.in_flight = Some(packet);
            return LinkAccept::Accepted {
                tx_complete_at: Some(done),
            };
        }
        // Burst packets stop occupying queue slots once their transmission
        // has started.
        while self.pending_starts.front().is_some_and(|&s| s <= now) {
            self.pending_starts.pop_front();
        }
        match self
            .queue
            .enqueue_offset(packet, now, queue_uniform, self.pending_starts.len())
        {
            EnqueueResult::Queued => {
                self.stats.enqueued += 1;
                LinkAccept::Accepted {
                    tx_complete_at: None,
                }
            }
            EnqueueResult::DroppedFull | EnqueueResult::DroppedEarly => {
                self.stats.dropped_queue += 1;
                LinkAccept::Dropped
            }
        }
    }

    /// Completes the transmission of the in-flight packet (or settles the
    /// current burst) and, on drop-tail links, drains the whole queue as one
    /// burst.
    ///
    /// Every `(packet, completion_time)` pair pushed onto `out` is a packet
    /// whose serialization finishes at that time — the caller delivers each
    /// to the downstream node after [`Link::delay`].  Returns the time of
    /// the next `TxComplete` event to schedule, if the link stays busy.
    ///
    /// Draining the queue in one event (instead of one event per packet) is
    /// what keeps the event count per congested-link packet at one; RED and
    /// CoDel links keep the per-packet path because RED's average-queue
    /// estimator and CoDel's sojourn clock depend on the actual dequeue
    /// times.
    pub fn tx_complete(
        &mut self,
        now: SimTime,
        out: &mut Vec<(Packet, SimTime)>,
    ) -> Option<SimTime> {
        if let Some(done) = self.in_flight.take() {
            self.stats.delivered += 1;
            self.stats.delivered_bytes += u64::from(done.size);
            out.push((done, now));
        } else {
            debug_assert_eq!(
                self.batch_until,
                Some(now),
                "tx_complete with no packet in flight and no burst ending now"
            );
        }
        self.batch_until = None;
        self.pending_starts.clear();
        if self.queue.is_drop_tail() {
            // Burst drain: packet i starts when packet i-1 completes, so the
            // completion chain is the same iterative sum the per-packet path
            // would compute event by event.
            let mut t = now;
            while let Some(p) = self.queue.dequeue(now) {
                if t > now {
                    self.pending_starts.push_back(t);
                }
                t += self.tx_time(p.size);
                self.stats.delivered += 1;
                self.stats.delivered_bytes += u64::from(p.size);
                out.push((p, t));
            }
            if t > now {
                self.batch_until = Some(t);
                Some(t)
            } else {
                None
            }
        } else {
            // Per-packet path (RED, CoDel): CoDel may drop packets at
            // dequeue based on their sojourn time.
            let (pkt, dropped) = self.queue.dequeue_tx(now);
            self.stats.dropped_queue += dropped;
            pkt.map(|p| {
                let t = now + self.tx_time(p.size);
                self.in_flight = Some(p);
                t
            })
        }
    }

    /// True if a packet is currently being serialized.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some() || self.batch_until.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Address, Dest, FlowId, Payload, Port};

    fn pkt(size: u32) -> Packet {
        let a = Address::new(NodeId(0), Port(0));
        Packet::new(a, Dest::Unicast(a), size, FlowId(0), Payload::empty())
    }

    fn link(bw: f64, delay: f64, qlen: usize) -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            bw,
            delay,
            QueueDiscipline::drop_tail(qlen),
            1,
        )
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut l = link(1000.0, 0.01, 10);
        let accept = l.offer_sampled(pkt(500), SimTime::ZERO, 0.9, 0.9);
        match accept {
            LinkAccept::Accepted { tx_complete_at } => {
                assert_eq!(tx_complete_at.unwrap().as_secs(), 0.5);
            }
            _ => panic!("expected acceptance"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_and_chains_transmissions() {
        let mut l = link(1000.0, 0.001, 10);
        l.offer_sampled(pkt(1000), SimTime::ZERO, 0.9, 0.9);
        let second = l.offer_sampled(pkt(500), SimTime::ZERO, 0.9, 0.9);
        assert_eq!(
            second,
            LinkAccept::Accepted {
                tx_complete_at: None
            }
        );
        assert_eq!(l.queue_len(), 1);
        // First completes at t=1.0; the queued packet drains as a burst that
        // starts then and takes 0.5 s.
        let mut out = Vec::new();
        let next = l.tx_complete(SimTime::from_secs(1.0), &mut out);
        assert_eq!(next.unwrap().as_secs(), 1.5);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0.size, 1000);
        assert_eq!(out[0].1.as_secs(), 1.0);
        assert_eq!(out[1].0.size, 500);
        assert_eq!(out[1].1.as_secs(), 1.5);
        assert!(l.is_busy());
        // The burst-end event settles the link.
        out.clear();
        let next2 = l.tx_complete(SimTime::from_secs(1.5), &mut out);
        assert!(next2.is_none());
        assert!(out.is_empty());
        assert!(!l.is_busy());
        assert_eq!(l.stats.delivered, 2);
        assert_eq!(l.stats.delivered_bytes, 1500);
    }

    #[test]
    fn burst_drained_packets_still_occupy_queue_slots() {
        // Limit 2: one in flight (free), two queued.
        let mut l = link(1000.0, 0.001, 2);
        l.offer_sampled(pkt(1000), SimTime::ZERO, 0.9, 0.9); // in flight, done t=1
        l.offer_sampled(pkt(1000), SimTime::ZERO, 0.9, 0.9); // starts t=1
        l.offer_sampled(pkt(1000), SimTime::ZERO, 0.9, 0.9); // starts t=2
        let mut out = Vec::new();
        let next = l.tx_complete(SimTime::from_secs(1.0), &mut out);
        assert_eq!(next.unwrap().as_secs(), 3.0);
        assert_eq!(out.len(), 3);
        // At t=1.5 the second packet is transmitting and the third still
        // waits: exactly one slot is occupied, so one more offer fits and a
        // second one overflows — the same decisions the per-packet path
        // would have made.
        assert!(matches!(
            l.offer_sampled(pkt(1000), SimTime::from_secs(1.5), 0.9, 0.9),
            LinkAccept::Accepted { .. }
        ));
        assert_eq!(
            l.offer_sampled(pkt(1000), SimTime::from_secs(1.5), 0.9, 0.9),
            LinkAccept::Dropped
        );
        // At t=2.5 only the (newly queued) fourth packet occupies a slot.
        assert!(matches!(
            l.offer_sampled(pkt(1000), SimTime::from_secs(2.5), 0.9, 0.9),
            LinkAccept::Accepted { .. }
        ));
        // The burst-end event picks the late arrivals up as the next burst.
        out.clear();
        let next = l.tx_complete(SimTime::from_secs(3.0), &mut out);
        assert_eq!(next.unwrap().as_secs(), 5.0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.as_secs(), 4.0);
        assert_eq!(out[1].1.as_secs(), 5.0);
    }

    #[test]
    fn red_links_keep_the_per_packet_path() {
        let mut l = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            1000.0,
            0.001,
            QueueDiscipline::red(10),
            1,
        );
        l.offer_sampled(pkt(1000), SimTime::ZERO, 0.9, 0.9);
        l.offer_sampled(pkt(500), SimTime::ZERO, 0.9, 0.9);
        l.offer_sampled(pkt(500), SimTime::ZERO, 0.9, 0.9);
        let mut out = Vec::new();
        // One completion per event: the queue drains a packet at a time.
        let next = l.tx_complete(SimTime::from_secs(1.0), &mut out);
        assert_eq!(next.unwrap().as_secs(), 1.5);
        assert_eq!(out.len(), 1);
        out.clear();
        let next = l.tx_complete(SimTime::from_secs(1.5), &mut out);
        assert_eq!(next.unwrap().as_secs(), 2.0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn codel_links_drop_at_dequeue_and_count_it() {
        // 100 B/s: each 100 B packet takes 1 s to serialize, so queued
        // packets accumulate multi-second sojourn times — far above the 5 ms
        // target — and CoDel starts dropping at dequeue after its 100 ms
        // interval expires.
        let mut l = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            100.0,
            0.001,
            QueueDiscipline::codel(50),
            1,
        );
        let mut next_tx = None;
        for i in 0..40 {
            let t = SimTime::from_secs(i as f64 * 0.5);
            let mut out = Vec::new();
            while let Some(due) = next_tx.filter(|&d| d <= t) {
                next_tx = l.tx_complete(due, &mut out);
            }
            if let LinkAccept::Accepted {
                tx_complete_at: Some(done),
            } = l.offer_sampled(pkt(100), t, 0.9, 0.9)
            {
                next_tx = Some(done);
            }
        }
        assert!(
            l.stats.dropped_queue > 0,
            "CoDel must have dropped packets at dequeue: {:?}",
            l.stats
        );
        assert!(l.stats.delivered > 0);
        // Conservation: every enqueued packet is eventually delivered,
        // dropped at dequeue, or still queued/in flight.
        assert_eq!(
            l.stats.enqueued,
            l.stats.delivered
                + l.stats.dropped_queue
                + l.queue_len() as u64
                + u64::from(l.is_busy()),
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = link(1000.0, 0.001, 2);
        l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9); // in flight
        l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9); // queued 1
        l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9); // queued 2
        let r = l.offer_sampled(pkt(100), SimTime::ZERO, 0.9, 0.9);
        assert_eq!(r, LinkAccept::Dropped);
        assert_eq!(l.stats.dropped_queue, 1);
        assert_eq!(l.stats.enqueued, 3);
    }

    #[test]
    fn bernoulli_loss_drops_based_on_sample() {
        let mut l = link(1000.0, 0.001, 10);
        l.loss = LossModel::Bernoulli { p: 0.25 };
        assert_eq!(
            l.offer_sampled(pkt(100), SimTime::ZERO, 0.1, 0.9),
            LinkAccept::Dropped
        );
        assert!(matches!(
            l.offer_sampled(pkt(100), SimTime::ZERO, 0.5, 0.9),
            LinkAccept::Accepted { .. }
        ));
        assert_eq!(l.stats.dropped_loss, 1);
    }

    #[test]
    fn loss_model_none_never_drops() {
        assert!(!LossModel::None.drops(0.0));
        assert!(LossModel::Bernoulli { p: 1.0 }.drops(0.999));
        assert!(!LossModel::Bernoulli { p: 0.0 }.drops(0.0001));
    }

    #[test]
    fn tx_time_scales_with_size_and_bandwidth() {
        let l = link(1_000_000.0, 0.001, 10);
        assert_eq!(l.tx_time(1_000_000), 1.0);
        assert_eq!(l.tx_time(500_000), 0.5);
    }
}
