//! Sweep-scaling benchmark: runs the Figure-7 receiver-set sweep at several
//! executor thread counts and writes the timing trajectory as a
//! `BENCH_*.json` artifact (what the CI bench-smoke job uploads).  It also
//! runs the 10⁴-receiver fan-out microbench (zero-copy shared fan-out vs
//! the seed's clone-based reference path), the event-core microbench
//! (binary-heap vs calendar-queue scheduler on the 10⁵-event churn hold
//! model), the feedback-aggregation microbench (scan-based reference vs
//! ordered-index incremental sender bookkeeping up to 10⁵ receivers) and
//! the hybrid population-tier bench (one TFMCC session at 10⁵ and 10⁶
//! receivers with a packet-level CLR cohort and a fluid bulk, reporting
//! wall time and live heap bytes per fluid receiver) and the
//! domain-sharding bench (the 10⁴- and 10⁵-receiver CBR star at 1, 2 and
//! 4 bottleneck domains, hard-gating on digest equality across domain
//! counts), writing the timings as `BENCH_fanout.json`,
//! `BENCH_events.json`, `BENCH_feedback.json`, `BENCH_hybrid.json` and
//! `BENCH_parallel.json` next to the trajectory file.
//!
//! Usage: `sweep_bench [--quick | --paper] [--threads N] [--out FILE]`
//!
//! `--threads N` caps the largest thread count tried; `--out` overrides the
//! default `BENCH_sweeps.json` output path.  Figure results are also checked
//! to be byte-identical across the tried thread counts, so the benchmark
//! doubles as an end-to-end determinism check.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering::Relaxed};
use std::time::Instant;

use netsim::prelude::*;
use tfmcc_agents::population::{FluidSpec, PopulationSpec};
use tfmcc_agents::session::TfmccSessionBuilder;
use tfmcc_experiments::cli::export_scheduler_env;
use tfmcc_experiments::event_bench::{measure_event_core, STANDARD_OPS, STANDARD_PENDING};
use tfmcc_experiments::fanout_bench::{measure_fanout, STANDARD_RECEIVERS, STANDARD_SIM_SECS};
use tfmcc_experiments::feedback_bench;
use tfmcc_experiments::scale::Scale;
use tfmcc_experiments::scaling_figs::fig07_scaling;
use tfmcc_model::population::Dist;
use tfmcc_runner::{Json, RunnerArgs, SweepRunner};

/// Counts live heap bytes so the hybrid bench can report per-fluid-receiver
/// memory.  (Twin of the allocator in `examples/scale_probe.rs` — a
/// `#[global_allocator]` must live in the binary that uses it, so the ~30
/// lines are duplicated rather than shipped in a library crate; keep the
/// two in sync.)
struct NetCountingAllocator;

static NET_BYTES: AtomicI64 = AtomicI64::new(0);

// SAFETY: every method forwards to `System` with unchanged arguments; the
// added Relaxed counter update cannot affect the allocator contract.
unsafe impl GlobalAlloc for NetCountingAllocator {
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as i64, Relaxed);
        System.alloc(layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as i64, Relaxed);
        System.dealloc(ptr, layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as i64, Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: NetCountingAllocator = NetCountingAllocator;

fn live_bytes() -> i64 {
    NET_BYTES.load(Relaxed)
}

/// One hybrid population-tier measurement: a TFMCC session with a
/// four-receiver packet-level CLR cohort plus a fluid population of
/// `fluid_count` receivers, run for 60 simulated seconds.
struct HybridMeasurement {
    fluid_count: u64,
    wall_secs: f64,
    bytes_per_fluid_receiver: f64,
    population: u64,
    fluid_reports: u64,
    clr_in_cohort: bool,
}

fn measure_hybrid(fluid_count: u64) -> HybridMeasurement {
    let heap0 = live_bytes();
    let started = Instant::now();
    let mut sim = Simulator::new(7);
    let legs = vec![
        StarLeg::clean(1_250_000.0, 0.03).with_downstream_loss(0.05),
        StarLeg::clean(1_250_000.0, 0.02).with_downstream_loss(0.02),
        StarLeg::clean(1_250_000.0, 0.02).with_downstream_loss(0.01),
        StarLeg::clean(1_250_000.0, 0.02),
        StarLeg::clean(12_500_000.0, 0.01),
    ];
    let st = star(&mut sim, &StarConfig::default(), &legs);
    let mut specs: Vec<PopulationSpec> = (0..4)
        .map(|i| PopulationSpec::packet(st.receivers[i]))
        .collect();
    specs.push(PopulationSpec::Fluid(FluidSpec::new(
        st.receivers[4],
        fluid_count,
        Dist::Uniform {
            lo: 0.001,
            hi: 0.008,
        },
        Dist::Uniform { lo: 0.04, hi: 0.08 },
    )));
    let session = TfmccSessionBuilder::default().build_population(&mut sim, st.sender, &specs);
    sim.run_until(SimTime::from_secs(60.0));
    let wall_secs = started.elapsed().as_secs_f64();
    let bytes = (live_bytes() - heap0).max(0);
    let sender = session.sender_agent(&sim).protocol();
    HybridMeasurement {
        fluid_count,
        wall_secs,
        bytes_per_fluid_receiver: bytes as f64 / fluid_count as f64,
        population: sender.session_population(),
        fluid_reports: session.fluid_agent(&sim, 0).reports_sent(),
        clr_in_cohort: sender.clr().is_some_and(|clr| clr.0 <= 4),
    }
}

/// One domain-sharding measurement: the scale-probe CBR star (N legs, one
/// multicast CBR source, per-leg `GroupSink`s) run to `sim_secs` at a given
/// domain count.
struct ParallelMeasurement {
    wall_secs: f64,
    events: u64,
    digest: u64,
    delivered: u64,
}

fn measure_parallel(receivers: usize, domains: usize, sim_secs: f64) -> ParallelMeasurement {
    let started = Instant::now();
    let mut sim = Simulator::new(1);
    sim.set_domains(domains);
    let legs: Vec<StarLeg> = (0..receivers)
        .map(|_| StarLeg::clean(125_000.0, 0.02))
        .collect();
    let st = star(&mut sim, &StarConfig::default(), &legs);
    let group = GroupId(1);
    let sinks: Vec<_> = st
        .receivers
        .iter()
        .map(|&r| sim.add_agent(r, Port(5), Box::new(GroupSink::new(group, 1.0))))
        .collect();
    sim.add_agent(
        st.sender,
        Port(5),
        Box::new(CbrSource::new(
            Dest::Multicast {
                group,
                port: Port(5),
            },
            FlowId(1),
            1000,
            50_000.0,
            0.0,
        )),
    );
    sim.run_until(SimTime::from_secs(sim_secs));
    let wall_secs = started.elapsed().as_secs_f64();
    let delivered = sinks
        .iter()
        .map(|&s| sim.agent::<GroupSink>(s).unwrap().packets())
        .sum();
    ParallelMeasurement {
        wall_secs,
        events: sim.events_processed(),
        digest: sim.stats().digest(),
        delivered,
    }
}

fn main() {
    let args = RunnerArgs::parse();
    export_scheduler_env(&args);
    let scale = Scale::resolve(args.quick);
    let max_threads = args.effective_threads();
    let out = args
        .out
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_sweeps.json"));

    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }

    let mut trajectory = Vec::new();
    let mut reference: Option<String> = None;
    for &threads in &thread_counts {
        let runner = SweepRunner::new(threads);
        let started = Instant::now();
        let figure = fig07_scaling(&runner, scale);
        let wall = started.elapsed().as_secs_f64();
        let json = figure.to_json().render();
        match &reference {
            None => reference = Some(json),
            Some(expected) => assert_eq!(
                expected, &json,
                "fig07 results differ between 1 and {threads} threads"
            ),
        }
        let report = runner.report();
        eprintln!(
            "# fig07 {scale:?} with {threads} thread(s): {wall:.3}s wall, {:.3}s busy over {} points",
            report.busy_secs(),
            report.records.len()
        );
        trajectory.push(Json::Obj(vec![
            ("threads".into(), Json::num(threads as f64)),
            ("wall_secs".into(), Json::num(wall)),
            ("busy_secs".into(), Json::num(report.busy_secs())),
            ("points".into(), Json::num(report.records.len() as f64)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("name".into(), Json::str("sweep_fig07")),
        ("scale".into(), Json::str(format!("{scale:?}"))),
        ("trajectory".into(), Json::Arr(trajectory)),
    ]);
    let mut body = doc.render();
    body.push('\n');
    if let Err(err) = std::fs::write(&out, body) {
        eprintln!("error: cannot write {}: {err}", out.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", out.display());

    // The fan-out microbench: the same 10⁴-receiver churn workload in
    // zero-copy and clone-reference mode.  The receiver count is the
    // benchmark's defining size and stays at 10⁴ at every scale; --quick
    // only shortens the simulated time.
    let fanout_sim_secs = scale.pick(0.5, STANDARD_SIM_SECS);
    let m = measure_fanout(STANDARD_RECEIVERS, fanout_sim_secs);
    // Keep the documented ≥2× claim from rotting silently: warn when a run
    // lands under it, and fail hard only on a catastrophic regression (the
    // generous margin keeps loaded CI runners from flaking).
    if m.speedup() < 2.0 {
        eprintln!(
            "warning: fan-out speedup {:.2}x is below the documented 2x target",
            m.speedup()
        );
    }
    if m.speedup() < 1.2 {
        eprintln!(
            "error: zero-copy fan-out barely outperforms the clone reference ({:.2}x < 1.2x)",
            m.speedup()
        );
        std::process::exit(1);
    }
    eprintln!(
        "# fanout {} receivers: shared {:.3}s vs clone-reference {:.3}s ({:.2}x), {} packets delivered",
        m.receivers,
        m.shared_secs,
        m.clone_secs,
        m.speedup(),
        m.delivered,
    );
    let fanout_doc = Json::Obj(vec![
        ("name".into(), Json::str("fanout_microbench")),
        ("receivers".into(), Json::num(m.receivers as f64)),
        ("sim_secs".into(), Json::num(m.sim_secs)),
        ("shared_secs".into(), Json::num(m.shared_secs)),
        ("clone_reference_secs".into(), Json::num(m.clone_secs)),
        ("speedup".into(), Json::num(m.speedup())),
        ("delivered_packets".into(), Json::num(m.delivered as f64)),
    ]);
    let fanout_out = out.with_file_name("BENCH_fanout.json");
    let mut fanout_body = fanout_doc.render();
    fanout_body.push('\n');
    if let Err(err) = std::fs::write(&fanout_out, fanout_body) {
        eprintln!("error: cannot write {}: {err}", fanout_out.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", fanout_out.display());

    // The event-core microbench: the hold-model event-queue workload (one
    // outstanding event per receiver, decoy-cancel churn) under both
    // schedulers, as a trajectory over queue sizes up to the 10⁵-receiver
    // point.  The 10⁵ point is the benchmark's defining size and runs at
    // every scale; --quick only trims the operation count.
    let event_ops = scale.pick(STANDARD_OPS / 5, STANDARD_OPS);
    let mut event_trajectory = Vec::new();
    let mut headline_speedup = 0.0;
    for pending in [1_000usize, 10_000, STANDARD_PENDING] {
        let m = measure_event_core(pending, event_ops);
        eprintln!(
            "# event core {pending} pending: heap {:.0} ev/s vs calendar {:.0} ev/s ({:.2}x)",
            m.heap_events_per_sec(),
            m.calendar_events_per_sec(),
            m.speedup(),
        );
        if pending == STANDARD_PENDING {
            headline_speedup = m.speedup();
        }
        event_trajectory.push(Json::Obj(vec![
            ("pending_events".into(), Json::num(pending as f64)),
            ("ops".into(), Json::num(m.ops as f64)),
            ("heap_secs".into(), Json::num(m.heap_secs)),
            ("calendar_secs".into(), Json::num(m.calendar_secs)),
            (
                "heap_events_per_sec".into(),
                Json::num(m.heap_events_per_sec()),
            ),
            (
                "calendar_events_per_sec".into(),
                Json::num(m.calendar_events_per_sec()),
            ),
            ("speedup".into(), Json::num(m.speedup())),
        ]));
    }
    // Keep the documented ≥1.5× claim from rotting silently: warn when the
    // 10⁵ point lands under it, fail hard only on a catastrophic regression
    // (the generous margin keeps loaded CI runners from flaking).
    if headline_speedup < 1.5 {
        eprintln!(
            "warning: calendar-queue speedup {headline_speedup:.2}x at {STANDARD_PENDING} pending is below the documented 1.5x target"
        );
    }
    if headline_speedup < 0.9 {
        eprintln!(
            "error: calendar queue slower than the heap at {STANDARD_PENDING} pending ({headline_speedup:.2}x < 0.9x)"
        );
        std::process::exit(1);
    }
    let events_doc = Json::Obj(vec![
        ("name".into(), Json::str("event_core_microbench")),
        ("trajectory".into(), Json::Arr(event_trajectory)),
        (
            "headline_pending".into(),
            Json::num(STANDARD_PENDING as f64),
        ),
        ("headline_speedup".into(), Json::num(headline_speedup)),
    ]);
    let events_out = out.with_file_name("BENCH_events.json");
    let mut events_body = events_doc.render();
    events_body.push('\n');
    if let Err(err) = std::fs::write(&events_out, events_body) {
        eprintln!("error: cannot write {}: {err}", events_out.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", events_out.display());

    // The feedback-aggregation microbench: the sender-side feedback workload
    // (reports + data pacing + CLR elections) under the scan-based reference
    // aggregator and the ordered-index incremental one, as a trajectory over
    // receiver counts up to the 10⁵-receiver point.  The 10⁵ point is the
    // benchmark's defining size and runs at every scale; --quick only trims
    // the operation count.  Both runs are digest-compared inside
    // `measure_feedback`, so the speedup can never come from divergent
    // protocol behaviour.
    let feedback_ops = scale.pick(
        feedback_bench::STANDARD_OPS / 5,
        feedback_bench::STANDARD_OPS,
    );
    let mut feedback_trajectory = Vec::new();
    let mut feedback_headline = 0.0;
    for receivers in [1_000usize, 10_000, feedback_bench::STANDARD_RECEIVERS] {
        let m = feedback_bench::measure_feedback(receivers, feedback_ops);
        eprintln!(
            "# feedback {receivers} receivers: reference {:.0} op/s vs incremental {:.0} op/s ({:.2}x)",
            m.reference_ops_per_sec(),
            m.incremental_ops_per_sec(),
            m.speedup(),
        );
        if receivers == feedback_bench::STANDARD_RECEIVERS {
            feedback_headline = m.speedup();
        }
        feedback_trajectory.push(Json::Obj(vec![
            ("receivers".into(), Json::num(receivers as f64)),
            ("ops".into(), Json::num(m.ops as f64)),
            ("reference_secs".into(), Json::num(m.reference_secs)),
            ("incremental_secs".into(), Json::num(m.incremental_secs)),
            (
                "reference_ops_per_sec".into(),
                Json::num(m.reference_ops_per_sec()),
            ),
            (
                "incremental_ops_per_sec".into(),
                Json::num(m.incremental_ops_per_sec()),
            ),
            ("speedup".into(), Json::num(m.speedup())),
        ]));
    }
    // Keep the documented ≥2× claim from rotting silently: warn when the
    // 10⁵ point lands under it, fail hard only on a catastrophic regression
    // (the generous margin keeps loaded CI runners from flaking).
    if feedback_headline < 2.0 {
        eprintln!(
            "warning: feedback-aggregation speedup {feedback_headline:.2}x at {} receivers is below the documented 2x target",
            feedback_bench::STANDARD_RECEIVERS
        );
    }
    if feedback_headline < 1.2 {
        eprintln!(
            "error: incremental feedback aggregation barely outperforms the reference at {} receivers ({feedback_headline:.2}x < 1.2x)",
            feedback_bench::STANDARD_RECEIVERS
        );
        std::process::exit(1);
    }
    let feedback_doc = Json::Obj(vec![
        ("name".into(), Json::str("feedback_microbench")),
        ("trajectory".into(), Json::Arr(feedback_trajectory)),
        (
            "headline_receivers".into(),
            Json::num(feedback_bench::STANDARD_RECEIVERS as f64),
        ),
        ("headline_speedup".into(), Json::num(feedback_headline)),
    ]);
    let feedback_out = out.with_file_name("BENCH_feedback.json");
    let mut feedback_body = feedback_doc.render();
    feedback_body.push('\n');
    if let Err(err) = std::fs::write(&feedback_out, feedback_body) {
        eprintln!("error: cannot write {}: {err}", feedback_out.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", feedback_out.display());

    // The hybrid population-tier bench: one TFMCC session at 10⁵ and 10⁶
    // receivers (a packet-level CLR cohort of four plus a fluid bulk), the
    // scaling claim this tier exists for.  The sizes are the benchmark's
    // defining workload and run at every scale — the fluid tier's cost is
    // O(bins) per feedback round, so even the 10⁶ point takes milliseconds.
    let mut hybrid_trajectory = Vec::new();
    for fluid_count in [100_000u64, 1_000_000] {
        let m = measure_hybrid(fluid_count);
        eprintln!(
            "# hybrid {} fluid receivers: {:.3}s wall, {:.2} B/receiver, population {}, {} fluid reports",
            m.fluid_count, m.wall_secs, m.bytes_per_fluid_receiver, m.population, m.fluid_reports,
        );
        // The acceptance bar for the tier: a 10⁶-receiver session in well
        // under 10 s of wall time and under 100 B of heap per fluid
        // receiver, with the CLR still elected from the packet cohort.
        if m.wall_secs > 10.0 {
            eprintln!(
                "error: hybrid session at {} receivers took {:.1}s (> 10s budget)",
                m.fluid_count, m.wall_secs
            );
            std::process::exit(1);
        }
        if m.bytes_per_fluid_receiver > 100.0 {
            eprintln!(
                "error: hybrid session at {} receivers uses {:.1} B/receiver (> 100 B budget)",
                m.fluid_count, m.bytes_per_fluid_receiver
            );
            std::process::exit(1);
        }
        if !m.clr_in_cohort {
            eprintln!(
                "error: hybrid session at {} receivers elected no CLR from the packet cohort",
                m.fluid_count
            );
            std::process::exit(1);
        }
        hybrid_trajectory.push(Json::Obj(vec![
            ("fluid_receivers".into(), Json::num(m.fluid_count as f64)),
            ("wall_secs".into(), Json::num(m.wall_secs)),
            (
                "bytes_per_fluid_receiver".into(),
                Json::num(m.bytes_per_fluid_receiver),
            ),
            ("population".into(), Json::num(m.population as f64)),
            ("fluid_reports".into(), Json::num(m.fluid_reports as f64)),
        ]));
    }
    let hybrid_doc = Json::Obj(vec![
        ("name".into(), Json::str("hybrid_population_bench")),
        ("sim_secs".into(), Json::num(60.0)),
        ("trajectory".into(), Json::Arr(hybrid_trajectory)),
    ]);
    let hybrid_out = out.with_file_name("BENCH_hybrid.json");
    let mut hybrid_body = hybrid_doc.render();
    hybrid_body.push('\n');
    if let Err(err) = std::fs::write(&hybrid_out, hybrid_body) {
        eprintln!("error: cannot write {}: {err}", hybrid_out.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", hybrid_out.display());

    // The domain-sharding bench: the scale-probe CBR star at 10⁴ and 10⁵
    // receivers, run single-queue and sharded across 2 and 4 bottleneck
    // domains.  Digest equality across domain counts is a hard gate — the
    // parallel path is only allowed to be fast because it is byte-identical;
    // the speedup itself is advisory (warn-only) because CI runner core
    // counts vary.  The receiver counts are the benchmark's defining sizes
    // and run at every scale; --quick only shortens the simulated time.
    let parallel_sim_secs = scale.pick(2.0, 10.0);
    let mut parallel_trajectory = Vec::new();
    let mut parallel_headline = 0.0;
    for receivers in [10_000usize, 100_000] {
        let mut single_wall = 0.0;
        let mut single_digest = 0;
        let mut best_sharded_wall = f64::INFINITY;
        for domains in [1usize, 2, 4] {
            let m = measure_parallel(receivers, domains, parallel_sim_secs);
            eprintln!(
                "# parallel {receivers} receivers, {domains} domain(s): {:.3}s wall, {:.0} ev/s, digest {:016x}",
                m.wall_secs,
                m.events as f64 / m.wall_secs,
                m.digest,
            );
            if domains == 1 {
                single_wall = m.wall_secs;
                single_digest = m.digest;
            } else {
                if m.digest != single_digest {
                    eprintln!(
                        "error: sharded run diverged at {receivers} receivers, {domains} domains: digest {:016x} != {:016x}",
                        m.digest, single_digest
                    );
                    std::process::exit(1);
                }
                best_sharded_wall = best_sharded_wall.min(m.wall_secs);
            }
            parallel_trajectory.push(Json::Obj(vec![
                ("receivers".into(), Json::num(receivers as f64)),
                ("domains".into(), Json::num(domains as f64)),
                ("wall_secs".into(), Json::num(m.wall_secs)),
                (
                    "events_per_sec".into(),
                    Json::num(m.events as f64 / m.wall_secs),
                ),
                ("events".into(), Json::num(m.events as f64)),
                ("delivered_packets".into(), Json::num(m.delivered as f64)),
                ("digest".into(), Json::str(format!("{:016x}", m.digest))),
            ]));
        }
        let speedup = single_wall / best_sharded_wall;
        if receivers == 100_000 {
            parallel_headline = speedup;
            // Warn-only: the documented ≥1.5× target needs ≥4 free cores,
            // which loaded CI runners don't reliably have.
            if speedup < 1.2 {
                eprintln!(
                    "warning: domain-sharding speedup {speedup:.2}x at {receivers} receivers is below the 1.2x floor"
                );
            }
        }
        eprintln!("# parallel {receivers} receivers: best sharded speedup {speedup:.2}x");
    }
    let parallel_doc = Json::Obj(vec![
        ("name".into(), Json::str("parallel_domain_bench")),
        ("sim_secs".into(), Json::num(parallel_sim_secs)),
        ("trajectory".into(), Json::Arr(parallel_trajectory)),
        ("headline_receivers".into(), Json::num(100_000.0)),
        ("headline_speedup".into(), Json::num(parallel_headline)),
    ]);
    let parallel_out = out.with_file_name("BENCH_parallel.json");
    let mut parallel_body = parallel_doc.render();
    parallel_body.push('\n');
    if let Err(err) = std::fs::write(&parallel_out, parallel_body) {
        eprintln!("error: cannot write {}: {err}", parallel_out.display());
        std::process::exit(1);
    }
    eprintln!("# wrote {}", parallel_out.display());
}
