//! A discrete-event, packet-level network simulator.
//!
//! `netsim` is the substrate under the TFMCC reproduction: it plays the role
//! ns-2 plays in the original paper.  It models
//!
//! * nodes connected by unidirectional links with bandwidth, propagation
//!   delay, drop-tail or RED queues, and optional Bernoulli random loss;
//! * unicast routing (shortest path by delay) and source-rooted multicast
//!   distribution trees derived from the unicast routes;
//! * protocol endpoints as [`sim::Agent`] trait objects that exchange
//!   [`packet::Packet`]s and set timers through a [`sim::Context`];
//! * measurement plumbing ([`stats::ThroughputMeter`],
//!   [`stats::StatsRegistry`]) for pulling figures out of a finished run.
//!
//! # Module map
//!
//! | Module | What lives there |
//! |---|---|
//! | [`events`] | The event-queue core: the [`events::EventQueue`] abstraction and its binary-heap and calendar-queue implementations, selectable per simulation ([`events::SchedulerKind`], env `TFMCC_SCHEDULER`) |
//! | [`sim`] | The [`sim::Simulator`]: world state, agent dispatch, the timer table, and the [`sim::Context`] agents act through |
//! | [`packet`] | Zero-copy [`packet::Packet`] handles (`Arc`-backed), addresses, destinations and ids |
//! | [`link`] | Links: serialization, propagation, queue disciplines, loss models, per-link statistics |
//! | [`queue`] | Drop-tail and RED queue disciplines |
//! | [`routing`] | Lazy per-destination unicast routing and incremental source-rooted multicast trees |
//! | [`rng`] | Deterministic per-stream seed derivation (`stream_seed`) for link-private RNG streams |
//! | [`apps`] | Reusable traffic endpoints: CBR source, sinks, churning group members |
//! | [`stats`] | Counters and throughput meters |
//! | [`time`] | [`time::SimTime`], the totally ordered simulation clock |
//! | [`topology`] | Star and dumbbell topology builders used by the experiments |
//!
//! # Determinism
//!
//! The simulator is single-threaded and deterministic: the same seed and the
//! same agent behaviour reproduce the same run bit for bit, which the
//! experiment harness relies on.  Determinism survives the choice of event
//! scheduler — both [`events::EventQueue`] implementations pop events in
//! identical `(time, seq)` order (see the `# Determinism` sections on
//! [`events::HeapQueue`] and [`events::CalendarQueue`]), and link loss/RED
//! draws come from per-link RNG streams ([`rng`]) that unrelated traffic
//! cannot perturb.
//!
//! # Example
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add_node("a");
//! let b = sim.add_node("b");
//! sim.add_duplex_link(a, b, 125_000.0, 0.01, QueueDiscipline::drop_tail(50));
//!
//! let sink = sim.add_agent(b, Port(1), Box::new(Sink::new(1.0)));
//! let dst = Dest::Unicast(Address::new(b, Port(1)));
//! sim.add_agent(a, Port(1), Box::new(CbrSource::new(dst, FlowId(1), 1000, 50_000.0, 0.0)));
//!
//! sim.run_until(SimTime::from_secs(10.0));
//! let received = sim.agent::<Sink>(sink).unwrap().meter().total_bytes();
//! assert!(received > 400_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod domains;
pub mod events;
pub mod link;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;

/// Convenient glob import of the most commonly used types.
pub mod prelude {
    pub use crate::apps::{CbrSource, GroupSink, Sink};
    pub use crate::domains::{domains_from_env, DomainPlan};
    pub use crate::events::SchedulerKind;
    pub use crate::link::{LinkStats, LossModel};
    pub use crate::packet::{
        Address, AgentId, Dest, FlowId, GroupId, LinkId, NodeId, Packet, PacketData, Payload, Port,
    };
    pub use crate::queue::{QueueDiscipline, RedConfig};
    pub use crate::sim::{Agent, Context, FanoutMode, SchedulerDiagnostics, Simulator, TimerId};
    pub use crate::stats::{StatsRegistry, ThroughputMeter};
    pub use crate::time::SimTime;
    pub use crate::topology::{
        dumbbell, star, Dumbbell, DumbbellConfig, Star, StarConfig, StarLeg,
    };
}
