//! Parallel sweep runner for the experiment harness.
//!
//! The paper's headline results are sweeps over receiver-set sizes up to
//! 10⁴ — many *independent* seeded simulation runs whose only shared state is
//! the parameter grid they cover.  This crate turns that independence into
//! wall-clock speed without giving up reproducibility:
//!
//! * [`Sweep`] describes a named set of points (use [`ParamGrid`] for the
//!   common receiver-count × loss-rate × RTT × seed-replica grid);
//! * [`seed::derive_seed`] gives every point a deterministic seed derived
//!   from the sweep's base seed and the point index — the same point always
//!   gets the same seed, no matter how many worker threads run the sweep;
//! * [`SweepRunner`] executes the points on a self-scheduling (work-stealing
//!   from a shared queue) pool of `std::thread` workers and returns results
//!   in point order, so output is byte-identical for any `--threads N`;
//! * [`RunReport`] records per-point timing so `BENCH_*.json` trajectories
//!   can be produced from real sweeps;
//! * [`cli::RunnerArgs`] parses the shared experiment CLI
//!   (`--quick`/`--paper`/`--threads N`/`--out FILE`/`--bench-out FILE`);
//! * [`json::Json`] renders deterministic JSON for result files.
//!
//! The crate is deliberately simulator-agnostic: a point is whatever the
//! caller's closure computes.  `netsim::Simulator` is `Send`, so closures may
//! build, run and even return whole simulations from worker threads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod exec;
pub mod json;
pub mod progress;
pub mod seed;
pub mod sweep;

pub use cli::RunnerArgs;
pub use exec::{Point, SweepRunner};
pub use json::Json;
pub use progress::{PointRecord, RunReport};
pub use sweep::{GridPoint, ParamGrid, Sweep};
