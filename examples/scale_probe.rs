//! Scale probe: how large a multicast fan-out can one simulation hold?
//!
//! Builds an N-leg star (one node, two links and one receiver agent per
//! leg), multicasts CBR traffic into it, and reports build time, run time,
//! the event/delivery counts **and the live heap footprint** (measured by a
//! counting global allocator: net bytes after build and after the run, per
//! receiver).  Optionally a tenth of the receivers churn (leave and rejoin
//! the group on sub-second cycles), and the fan-out can be switched to the
//! clone-based reference path for comparison.
//!
//! With `sessions=K` the probe becomes the **multi-session** workload from
//! the roadmap: instead of CBR sinks it wires K full TFMCC sessions (each
//! with its own sender node, multicast group and share of the N receivers,
//! starts staggered 2 s apart) through a `SessionManager` sharing one
//! simulator, and reports per-session goodput plus the Jain fairness index —
//! at `100000 sessions=4` that is a single simulation holding ≥ 4 concurrent
//! TFMCC sessions totaling 10⁵ receivers.
//!
//! With `hybrid` the probe exercises the **population tier**: one TFMCC
//! session whose bulk receivers are a fluid population (analytic feedback,
//! O(bins) state) behind a four-receiver packet-level CLR cohort, so a
//! single session can represent 10⁶–10⁷ receivers in seconds of wall time
//! at well under 100 B of heap per fluid receiver.
//!
//! With `domains=K` the probe runs the simulation sharded across K
//! bottleneck domains on K worker threads (see `netsim::domains`), and
//! reports the per-domain event counts plus the run's stats digest — by
//! construction the digest is bit-identical to the `domains=1` run of the
//! same arguments, only the wall clock differs.
//!
//! ```text
//! cargo run --release --example scale_probe -- [RECEIVERS] [shared|clone] [churn]
//!     [heap|calendar] [sessions=K] [domains=K] [hybrid]
//! cargo run --release --example scale_probe -- 100000 shared churn calendar
//! cargo run --release --example scale_probe -- 100000 sessions=4
//! cargo run --release --example scale_probe -- 100000 domains=4
//! cargo run --release --example scale_probe -- 1000000 hybrid
//! ```
//!
//! The scheduler token (or the `TFMCC_SCHEDULER` environment variable)
//! selects the event-queue implementation, so the heap and the calendar
//! queue can be compared at 10⁵ receivers; both produce identical runs
//! (see `netsim::events`), only the wall clock differs.  The
//! `TFMCC_AGGREGATOR` environment variable likewise selects the sender's
//! feedback aggregation (`incremental` by default) for the sessions mode.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering::Relaxed};
use std::time::Instant;

use netsim::prelude::*;
use tfmcc_agents::manager::{SessionManager, SessionSpec};
use tfmcc_agents::population::{FluidSpec, PopulationSpec};
use tfmcc_agents::session::TfmccSessionBuilder;
use tfmcc_model::population::Dist;

/// Counts live heap bytes so the probe can report per-receiver memory.
/// (Twin of the allocator in `crates/tfmcc-proto/tests/receiver_mem.rs` —
/// a `#[global_allocator]` must live in the binary that uses it, so the
/// ~30 lines are duplicated rather than shipped in a library crate; keep
/// the two in sync.)
struct NetCountingAllocator;

static NET_BYTES: AtomicI64 = AtomicI64::new(0);

// SAFETY: every method forwards to `System` with unchanged arguments; the
// added Relaxed counter update cannot affect the allocator contract.
unsafe impl GlobalAlloc for NetCountingAllocator {
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as i64, Relaxed);
        System.alloc(layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as i64, Relaxed);
        System.dealloc(ptr, layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as i64, Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: NetCountingAllocator = NetCountingAllocator;

fn live_bytes() -> i64 {
    NET_BYTES.load(Relaxed)
}

fn main() {
    let mut n: usize = 10_000;
    let mut mode = FanoutMode::Shared;
    let mut churn = false;
    let mut scheduler = SchedulerKind::resolve();
    let mut sessions: usize = 0;
    let mut domains = domains_from_env();
    let mut hybrid = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "shared" => mode = FanoutMode::Shared,
            "clone" => mode = FanoutMode::CloneReference,
            "churn" => churn = true,
            "heap" => scheduler = SchedulerKind::Heap,
            "calendar" => scheduler = SchedulerKind::Calendar,
            "hybrid" => hybrid = true,
            other => {
                if let Some(k) = other.strip_prefix("sessions=") {
                    match k.parse() {
                        Ok(count) if count >= 1 => sessions = count,
                        _ => {
                            eprintln!("error: invalid sessions count '{k}' (need an integer ≥ 1)");
                            std::process::exit(2);
                        }
                    }
                    continue;
                }
                if let Some(k) = other.strip_prefix("domains=") {
                    match k.parse() {
                        Ok(count) if count >= 1 => domains = count,
                        _ => {
                            eprintln!("error: invalid domain count '{k}' (need an integer ≥ 1)");
                            std::process::exit(2);
                        }
                    }
                    continue;
                }
                match other.parse() {
                    Ok(count) if count >= 1 => n = count,
                    Ok(_) => {
                        eprintln!("error: the receiver count must be at least 1");
                        std::process::exit(2);
                    }
                    Err(_) => {
                        eprintln!(
                            "error: unknown argument '{other}' (expected a receiver count, shared|clone, churn, heap|calendar, sessions=K, domains=K, hybrid)"
                        );
                        std::process::exit(2);
                    }
                }
            }
        }
    }

    if hybrid {
        probe_hybrid(n, scheduler, mode, domains);
    } else if sessions > 0 {
        probe_sessions(n, sessions, scheduler, mode, domains);
    } else {
        probe_cbr(n, mode, churn, scheduler, domains);
    }
}

/// Reports how a sharded run actually decomposed: events per domain (in
/// domain order) and the stats digest that `domains=1` must reproduce.
fn print_domain_report(sim: &Simulator, domains: usize) {
    if domains > 1 {
        println!(
            "domains={domains} domain_events={:?} digest={:016x}",
            sim.domain_event_counts(),
            sim.stats().digest()
        );
    } else {
        println!("domains=1 digest={:016x}", sim.stats().digest());
    }
}

/// The original single-group probe: CBR traffic into N `GroupSink`s.
fn probe_cbr(n: usize, mode: FanoutMode, churn: bool, scheduler: SchedulerKind, domains: usize) {
    let heap0 = live_bytes();
    let t0 = Instant::now();
    let mut sim = Simulator::with_scheduler(1, scheduler);
    sim.set_domains(domains.max(1));
    sim.set_fanout_mode(mode);
    let legs: Vec<StarLeg> = (0..n).map(|_| StarLeg::clean(125_000.0, 0.02)).collect();
    let st = star(&mut sim, &StarConfig::default(), &legs);
    let group = GroupId(1);
    let mut sinks = Vec::with_capacity(n);
    for (i, &r) in st.receivers.iter().enumerate() {
        let mut sink = GroupSink::new(group, 1.0);
        if churn && i % 10 == 1 {
            sink = sink.churning(0.25 + (i % 7) as f64 * 0.05);
        }
        sinks.push(sim.add_agent(r, Port(5), Box::new(sink)));
    }
    sim.add_agent(
        st.sender,
        Port(5),
        Box::new(CbrSource::new(
            Dest::Multicast {
                group,
                port: Port(5),
            },
            FlowId(1),
            1000,
            50_000.0,
            0.0,
        )),
    );
    let built = t0.elapsed();
    let built_bytes = live_bytes() - heap0;

    let t1 = Instant::now();
    sim.run_until(SimTime::from_secs(10.0));
    let ran = t1.elapsed();
    let run_bytes = live_bytes() - heap0;
    let delivered: u64 = sinks
        .iter()
        .map(|&s| sim.agent::<GroupSink>(s).unwrap().packets())
        .sum();
    println!(
        "n={n} mode={mode:?} scheduler={scheduler:?} churn={churn} build={built:?} run={ran:?} events={} delivered={delivered}",
        sim.events_processed()
    );
    print_domain_report(&sim, domains);
    println!(
        "heap: {:.1} MB after build ({} B/receiver), {:.1} MB after run ({} B/receiver)",
        built_bytes as f64 / (1 << 20) as f64,
        built_bytes / n as i64,
        run_bytes as f64 / (1 << 20) as f64,
        run_bytes / n as i64,
    );
}

/// The multi-session probe: K concurrent TFMCC sessions over one shared
/// 8 Mbit/s bottleneck, splitting the N receivers between them.
fn probe_sessions(n: usize, k: usize, scheduler: SchedulerKind, mode: FanoutMode, domains: usize) {
    let heap0 = live_bytes();
    let t0 = Instant::now();
    let mut sim = Simulator::with_scheduler(1, scheduler);
    sim.set_domains(domains.max(1));
    sim.set_fanout_mode(mode);
    let left = sim.add_node("left");
    let right = sim.add_node("right");
    sim.add_duplex_link(
        left,
        right,
        1_000_000.0,
        0.02,
        QueueDiscipline::drop_tail(100),
    );
    let mut manager = SessionManager::new();
    let per_session = (n / k).max(1);
    for session in 0..k {
        let sender = sim.add_node(&format!("s{session}"));
        sim.add_duplex_link(
            sender,
            left,
            1_250_000.0,
            0.005,
            QueueDiscipline::drop_tail(60),
        );
        let specs: Vec<PopulationSpec> = (0..per_session)
            .map(|i| {
                let node = sim.add_node(&format!("r{session}_{i}"));
                sim.add_duplex_link(
                    right,
                    node,
                    125_000.0,
                    0.005 + 0.002 * (i % 5) as f64,
                    QueueDiscipline::drop_tail(30),
                );
                PopulationSpec::packet(node)
            })
            .collect();
        manager.add_population_session(
            &mut sim,
            &SessionSpec::default().starting_at(session as f64 * 2.0),
            sender,
            &specs,
        );
    }
    let built = t0.elapsed();
    let built_bytes = live_bytes() - heap0;
    let receivers = per_session * k;

    let duration = 10.0;
    let t1 = Instant::now();
    sim.run_until(SimTime::from_secs(duration));
    let ran = t1.elapsed();
    let run_bytes = live_bytes() - heap0;

    let report = manager.report(&sim, duration * 0.5, duration);
    println!(
        "n={receivers} sessions={k} scheduler={scheduler:?} mode={mode:?} build={built:?} run={ran:?} events={}",
        sim.events_processed()
    );
    print_domain_report(&sim, domains);
    for s in &report.sessions {
        println!(
            "  session {} (group {}, {} receivers): {:.1} kbit/s mean, {} data packets, CLR {:?}",
            s.id.0,
            s.group.0,
            s.receivers,
            s.mean_throughput * 8.0 / 1000.0,
            s.sender_stats.data_packets,
            s.clr.map(|c| c.0),
        );
    }
    println!(
        "jain={:.3} aggregate={:.1} kbit/s",
        report.jain_index(),
        report.total_throughput() * 8.0 / 1000.0
    );
    println!(
        "heap: {:.1} MB after build ({} B/receiver), {:.1} MB after run ({} B/receiver)",
        built_bytes as f64 / (1 << 20) as f64,
        built_bytes / receivers as i64,
        run_bytes as f64 / (1 << 20) as f64,
        run_bytes / receivers as i64,
    );
}

/// The hybrid probe: one TFMCC session holding `n` receivers, of which only
/// a four-receiver cohort (the CLR candidates, on the lossiest legs) runs at
/// packet level — the remaining `n - 4` are a fluid population whose
/// feedback is computed analytically per round.
fn probe_hybrid(n: usize, scheduler: SchedulerKind, mode: FanoutMode, domains: usize) {
    let cohort = 4.min(n);
    let fluid_count = (n - cohort).max(1) as u64;
    let heap0 = live_bytes();
    let t0 = Instant::now();
    let mut sim = Simulator::with_scheduler(1, scheduler);
    sim.set_domains(domains.max(1));
    sim.set_fanout_mode(mode);
    let legs = vec![
        StarLeg::clean(1_250_000.0, 0.03).with_downstream_loss(0.05),
        StarLeg::clean(1_250_000.0, 0.02).with_downstream_loss(0.02),
        StarLeg::clean(1_250_000.0, 0.02).with_downstream_loss(0.01),
        StarLeg::clean(1_250_000.0, 0.02),
        StarLeg::clean(12_500_000.0, 0.01),
    ];
    let st = star(&mut sim, &StarConfig::default(), &legs);
    let mut specs: Vec<PopulationSpec> = (0..cohort)
        .map(|i| PopulationSpec::packet(st.receivers[i]))
        .collect();
    specs.push(PopulationSpec::Fluid(FluidSpec::new(
        st.receivers[4],
        fluid_count,
        Dist::Uniform {
            lo: 0.001,
            hi: 0.008,
        },
        Dist::Uniform { lo: 0.04, hi: 0.08 },
    )));
    let session = TfmccSessionBuilder::default().build_population(&mut sim, st.sender, &specs);
    let built = t0.elapsed();
    let built_bytes = live_bytes() - heap0;

    let duration = 60.0;
    let t1 = Instant::now();
    sim.run_until(SimTime::from_secs(duration));
    let ran = t1.elapsed();
    let run_bytes = live_bytes() - heap0;

    let sender = session.sender_agent(&sim).protocol();
    let fluid = session.fluid_agent(&sim, 0);
    println!(
        "n={n} hybrid cohort={cohort} fluid={fluid_count} scheduler={scheduler:?} mode={mode:?} build={built:?} run={ran:?} events={}",
        sim.events_processed()
    );
    print_domain_report(&sim, domains);
    println!(
        "population={} clr={:?} rate={:.1} kbit/s fluid_reports={} bins={}",
        sender.session_population(),
        sender.clr().map(|c| c.0),
        sender.current_rate() * 8.0 / 1000.0,
        fluid.reports_sent(),
        fluid.bins().len(),
    );
    println!(
        "heap: {:.1} MB after build ({:.2} B/fluid receiver), {:.1} MB after run ({:.2} B/fluid receiver)",
        built_bytes as f64 / (1 << 20) as f64,
        built_bytes as f64 / fluid_count as f64,
        run_bytes as f64 / (1 << 20) as f64,
        run_bytes as f64 / fluid_count as f64,
    );
}
