//! A minimal Rust lexer — just enough syntax awareness for span-accurate
//! determinism lints.
//!
//! The rules in [`crate::rules`] match on *identifier token sequences*
//! (`HashMap`, `Instant :: now`, …), so the lexer's only job is to separate
//! identifiers from everything they could be confused with: string/char
//! literals (a `"HashMap"` in a test fixture must not trip D001), comments
//! (doc prose mentions banned names constantly), lifetimes, numbers and
//! punctuation.  Comments are kept as tokens because two rules read them:
//! the suppression-pragma parser ([`crate::pragma`]) and U001's `// SAFETY:`
//! requirement.
//!
//! It is not a full Rust lexer — no float-vs-range disambiguation beyond
//! what the rules need, no shebang handling — but it is exact on the
//! constructs that appear in this workspace, and the fixture tests pin the
//! corner cases (raw strings, nested block comments, lifetimes, numeric
//! suffixes).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `r#raw`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String, raw-string, byte-string, char or numeric literal.
    Literal,
    /// Single punctuation character (`<`, `:`, `(`, …).
    Punct,
    /// `// …` comment, text including the slashes, excluding the newline.
    LineComment,
    /// `/* … */` comment (possibly nested, possibly multi-line).
    BlockComment,
}

/// One lexeme with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub column: usize,
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, out: &mut String, mut f: impl FnMut(char) -> bool) {
        while let Some(c) = self.peek() {
            if !f(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a flat token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, column) = (cur.line, cur.column);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let token = if c == '/' && cur.peek_at(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur)
        } else if (c == 'r' || c == 'b' || c == 'c') && starts_raw_or_byte_string(&cur) {
            lex_raw_or_byte_string(&mut cur)
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            cur.bump();
            (TokenKind::Punct, c.to_string())
        };
        tokens.push(Token {
            kind: token.0,
            text: token.1,
            line,
            column,
        });
    }
    tokens
}

/// True when the cursor sits on `r"`, `r#`-then-`"`, `b"`, `br"`, `c"`, …
/// (a raw/byte/C string) rather than an identifier starting with that letter.
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let mut i = 1;
    // Optional second prefix letter (`br`, `cr`).
    if matches!(cur.peek_at(i), Some('r')) && matches!(cur.peek(), Some('b' | 'c')) {
        i += 1;
    }
    let mut j = i;
    while matches!(cur.peek_at(j), Some('#')) {
        j += 1;
    }
    if matches!(cur.peek_at(j), Some('"')) {
        // `r#ident` (raw identifier) has no quote after its single `#`.
        return true;
    }
    // Plain byte string `b"..."` / `c"..."` with no hashes.
    j == i && matches!(cur.peek_at(i), Some('"'))
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    cur.eat_while(&mut text, |c| c != '\n');
    (TokenKind::LineComment, text)
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            text.push(cur.bump().unwrap());
            text.push(cur.bump().unwrap());
        } else if c == '*' && cur.peek_at(1) == Some('/') {
            depth -= 1;
            text.push(cur.bump().unwrap());
            text.push(cur.bump().unwrap());
            if depth == 0 {
                break;
            }
        } else {
            text.push(cur.bump().unwrap());
        }
    }
    (TokenKind::BlockComment, text)
}

fn lex_string(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    text.push(cur.bump().unwrap()); // opening quote
    while let Some(c) = cur.peek() {
        if c == '\\' {
            text.push(cur.bump().unwrap());
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            text.push(cur.bump().unwrap());
            break;
        } else {
            text.push(cur.bump().unwrap());
        }
    }
    (TokenKind::Literal, text)
}

fn lex_raw_or_byte_string(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    let mut raw = false;
    // Prefix letters: `b`/`c` optionally followed by `r` (`r`, `b`, `br`,
    // `c`, `cr`); `r` is always the last prefix letter.
    while let Some(c) = cur.peek() {
        match c {
            'r' => {
                raw = true;
                text.push(cur.bump().unwrap());
                break;
            }
            'b' | 'c' => {
                text.push(cur.bump().unwrap());
            }
            _ => break,
        }
    }
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        text.push(cur.bump().unwrap());
    }
    debug_assert_eq!(cur.peek(), Some('"'), "caller checked the opening quote");
    text.push(cur.bump().unwrap());
    while let Some(c) = cur.peek() {
        if c == '\\' && !raw {
            text.push(cur.bump().unwrap());
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(cur.bump().unwrap());
        if c == '"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek() == Some('#') {
                text.push(cur.bump().unwrap());
                matched += 1;
            }
            if matched == hashes {
                break;
            }
        }
    }
    (TokenKind::Literal, text)
}

/// `'` starts either a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
fn lex_quote(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    text.push(cur.bump().unwrap()); // the quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            text.push(cur.bump().unwrap());
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            cur.eat_while(&mut text, |c| c != '\'');
            if cur.peek() == Some('\'') {
                text.push(cur.bump().unwrap());
            }
            (TokenKind::Literal, text)
        }
        Some(c) if is_ident_start(c) && cur.peek_at(1) != Some('\'') => {
            // Lifetime: `'` + ident with no closing quote.
            cur.eat_while(&mut text, is_ident_continue);
            (TokenKind::Lifetime, text)
        }
        _ => {
            // Char literal `'x'` (possibly non-ident char like `'<'`).
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            if cur.peek() == Some('\'') {
                text.push(cur.bump().unwrap());
            }
            (TokenKind::Literal, text)
        }
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    if cur.peek() == Some('r') && cur.peek_at(1) == Some('#') {
        // Raw identifier `r#type`.
        text.push(cur.bump().unwrap());
        text.push(cur.bump().unwrap());
    }
    cur.eat_while(&mut text, is_ident_continue);
    (TokenKind::Ident, text)
}

fn lex_number(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut text = String::new();
    cur.eat_while(&mut text, |c| c.is_ascii_alphanumeric() || c == '_');
    // Fractional part: only when followed by a digit (so `0..10` stays a
    // range, not a malformed float).
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push(cur.bump().unwrap());
        cur.eat_while(&mut text, |c| c.is_ascii_alphanumeric() || c == '_');
    }
    // Signed exponent (`1.5e-3`): the `e` was consumed above.
    if (text.ends_with('e') || text.ends_with('E'))
        && matches!(cur.peek(), Some('+' | '-'))
        && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
    {
        text.push(cur.bump().unwrap());
        cur.eat_while(&mut text, |c| c.is_ascii_alphanumeric() || c == '_');
    }
    (TokenKind::Literal, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "HashMap inside a string";
            // HashMap inside a line comment
            /* HashMap inside a /* nested */ block comment */
            let b = r#"HashMap inside a raw string"#;
            let c = b"HashMap bytes";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_char_literal_does_not_derail() {
        let ids = idents(r"let nl = '\n'; let q = '\''; let after = HashMap;");
        assert!(ids.iter().any(|i| i == "HashMap"), "{ids:?}");
    }

    #[test]
    fn numeric_suffixes_are_not_identifiers() {
        let ids = idents("let x = 1.0f64 + 2f32 + 0x1F_u64 + 1.5e-3; f64::MAX");
        assert_eq!(
            ids.iter().filter(|i| i.as_str() == "f64").count(),
            1,
            "{ids:?}"
        );
        assert!(!ids.iter().any(|i| i == "f32"), "{ids:?}");
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let toks = lex("a\n  bee");
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
        assert_eq!(toks[1].text, "bee");
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1; r#match();");
        assert!(ids.contains(&"r#type".to_string()), "{ids:?}");
        assert!(ids.contains(&"r#match".to_string()), "{ids:?}");
    }

    #[test]
    fn comment_tokens_carry_their_text() {
        let toks = lex("// tfmcc-lint: allow(D001, reason = \"x\")\nlet a = 1;");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("allow(D001"));
        assert_eq!(toks[0].line, 1);
    }
}
