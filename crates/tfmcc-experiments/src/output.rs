//! Result containers and CSV/JSON output for the experiment binaries.

use tfmcc_runner::Json;

/// A named data series (one curve of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label, used as the CSV column header.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The y value at the largest x.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
    }
}

/// One reproduced figure: a set of curves plus human-readable summary lines
/// describing the shape criteria checked against the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier, e.g. "fig09".
    pub id: String,
    /// Title of the figure as in the paper.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Summary lines (shape checks, measured headline numbers).
    pub summary: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds a summary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.summary.push(line.into());
    }

    /// Finds a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders the figure as CSV: a comment header, one `x` column per series
    /// block (series may have different x grids), followed by the summary as
    /// `#` comments.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}: {}\n", self.id, self.title));
        out.push_str(&format!("# x: {}   y: {}\n", self.x_label, self.y_label));
        for s in &self.series {
            out.push_str(&format!("# series: {}\n", s.name));
            out.push_str("x,y\n");
            for &(x, y) in &s.points {
                out.push_str(&format!("{x},{y}\n"));
            }
        }
        for line in &self.summary {
            out.push_str(&format!("# {line}\n"));
        }
        out
    }

    /// Renders the figure as a deterministic JSON document (what `--out`
    /// writes).  Rendering is byte-identical for identical data, so sweep
    /// results can be diffed across thread counts and runs.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::str(&self.id)),
            ("title".into(), Json::str(&self.title)),
            ("x_label".into(), Json::str(&self.x_label)),
            ("y_label".into(), Json::str(&self.y_label)),
            (
                "series".into(),
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&s.name)),
                                (
                                    "points".into(),
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|&(x, y)| {
                                                Json::Arr(vec![Json::num(x), Json::num(y)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary".into(),
                Json::Arr(self.summary.iter().map(Json::str).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_contains_all_series_and_summary() {
        let mut fig = Figure::new("figX", "Test", "time", "rate");
        fig.push_series(Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]));
        fig.push_series(Series::new("b", vec![(0.0, 3.0)]));
        fig.note("shape ok");
        let csv = fig.to_csv();
        assert!(csv.contains("# series: a"));
        assert!(csv.contains("# series: b"));
        assert!(csv.contains("0,1"));
        assert!(csv.contains("# shape ok"));
        assert_eq!(fig.series("a").unwrap().last_y(), Some(2.0));
        assert_eq!(fig.series("b").unwrap().mean_y(), 3.0);
    }

    #[test]
    fn json_rendering_is_deterministic_and_complete() {
        let mut fig = Figure::new("figX", "Test", "time", "rate");
        fig.push_series(Series::new("a", vec![(0.0, 1.0), (1.0, 2.5)]));
        fig.note("shape ok");
        let json = fig.to_json().render();
        assert_eq!(
            json,
            r#"{"id":"figX","title":"Test","x_label":"time","y_label":"rate","series":[{"name":"a","points":[[0,1],[1,2.5]]}],"summary":["shape ok"]}"#
        );
        assert_eq!(json, fig.to_json().render());
    }
}
