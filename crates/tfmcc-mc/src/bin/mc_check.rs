//! Command-line front end of the bounded model checker.
//!
//! ```text
//! mc_check [--preset NAME] [--strategy dfs|bfs] [--max-states N] [--out FILE]
//! ```
//!
//! Explores the chosen preset with all four invariants armed and prints a
//! one-line summary.  On an invariant violation the reproducing schedule is
//! printed — and written to `--out` as a `tfmcc-replay-v1` file, ready to be
//! checked in under `tests/regressions/` — and the process exits 1.  A
//! truncated (state-capped) clean run exits 0 but says so.

use std::process::ExitCode;

use tfmcc_mc::{explore, Limits, McConfig, McModel, Replay, Strategy};

struct Args {
    preset: String,
    strategy: Strategy,
    max_states: usize,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        preset: "smoke3".to_string(),
        strategy: Strategy::Bfs,
        max_states: 2_000_000,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--preset" => args.preset = value("--preset")?,
            "--strategy" => {
                args.strategy = match value("--strategy")?.as_str() {
                    "dfs" => Strategy::Dfs,
                    "bfs" => Strategy::Bfs,
                    other => return Err(format!("unknown strategy '{other}' (dfs|bfs)")),
                }
            }
            "--max-states" => {
                args.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: mc_check [--preset NAME] [--strategy dfs|bfs] \
                     [--max-states N] [--out FILE]\npresets: {}",
                    McConfig::preset_names().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(config) = McConfig::preset(&args.preset) else {
        eprintln!(
            "error: unknown preset '{}' (have: {})",
            args.preset,
            McConfig::preset_names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let model = McModel::new(config);
    let started = std::time::Instant::now();
    let outcome = explore(
        &model,
        args.strategy,
        Limits {
            max_states: args.max_states,
            max_depth: usize::MAX,
        },
    );
    println!(
        "preset={} strategy={:?} states={} dedup_hits={} max_depth={} exhausted={} {:.2}s",
        args.preset,
        args.strategy,
        outcome.states_explored,
        outcome.dedup_hits,
        outcome.max_depth_seen,
        !outcome.truncated,
        started.elapsed().as_secs_f64()
    );

    let Some(violation) = outcome.violation else {
        if outcome.truncated {
            println!("clean up to the state cap (state space NOT exhausted)");
        } else {
            println!(
                "state space exhausted, all invariants hold: {}",
                model.invariant_names().join(", ")
            );
        }
        return ExitCode::SUCCESS;
    };

    eprintln!(
        "VIOLATION of {}: {}",
        violation.invariant, violation.message
    );
    let schedule: Vec<String> = violation.schedule.iter().map(|a| a.to_string()).collect();
    eprintln!(
        "schedule ({} steps): {}",
        schedule.len(),
        schedule.join(" ")
    );
    if let Some(path) = &args.out {
        let mut replay = Replay::new("model-check");
        replay.set("preset", &args.preset);
        replay.set("invariant", &violation.invariant);
        replay.set("schedule", &schedule.join(" "));
        if let Err(err) = std::fs::write(path, replay.render()) {
            eprintln!("error: cannot write {path}: {err}");
        } else {
            eprintln!("counterexample replay written to {path}");
        }
    }
    ExitCode::FAILURE
}
