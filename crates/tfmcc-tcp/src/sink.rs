//! Cumulative-ACK TCP sink.

use std::any::Any;
use std::collections::BTreeSet;

use netsim::packet::{Dest, Packet, Payload};
use netsim::sim::{Agent, Context};
use netsim::stats::ThroughputMeter;

use crate::segment::{TcpSegment, ACK_SIZE};

/// Receiver side of the TCP agent pair: acknowledges every data segment with
/// a cumulative ACK and measures goodput.
pub struct TcpSink {
    /// Next in-order sequence number expected.
    expected: u64,
    /// Out-of-order segments received above `expected`.
    out_of_order: BTreeSet<u64>,
    meter: ThroughputMeter,
    packets: u64,
}

impl TcpSink {
    /// Creates a sink binning goodput into `bin`-second intervals.
    pub fn new(bin: f64) -> Self {
        TcpSink {
            expected: 0,
            out_of_order: BTreeSet::new(),
            meter: ThroughputMeter::new(bin),
            packets: 0,
        }
    }

    /// Goodput meter (in-order bytes delivered).
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Number of data segments received (including out-of-order ones).
    pub fn packets(&self) -> u64 {
        self.packets
    }

    fn absorb(&mut self, seq: u64) {
        if seq == self.expected {
            self.expected += 1;
            // Drain any contiguous out-of-order segments.
            while self.out_of_order.remove(&self.expected) {
                self.expected += 1;
            }
        } else if seq > self.expected {
            self.out_of_order.insert(seq);
        }
        // seq < expected: duplicate (retransmission already covered), ignore.
    }
}

impl Agent for TcpSink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(&TcpSegment::Data { seq, timestamp }) =
            packet.payload.downcast_ref::<TcpSegment>()
        else {
            return;
        };
        self.packets += 1;
        self.meter.record(ctx.now(), u64::from(packet.size));
        self.absorb(seq);
        let ack = TcpSegment::Ack {
            ack: self.expected,
            echo_timestamp: timestamp,
        };
        let reply = Packet::new(
            ctx.addr(),
            Dest::Unicast(packet.src),
            ACK_SIZE,
            packet.flow,
            Payload::new(ack),
        );
        ctx.send(reply);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_tracks_cumulative_and_out_of_order() {
        let mut s = TcpSink::new(1.0);
        s.absorb(0);
        s.absorb(1);
        assert_eq!(s.expected, 2);
        // A hole at 2; 3 and 4 buffered.
        s.absorb(3);
        s.absorb(4);
        assert_eq!(s.expected, 2);
        // Filling the hole releases the buffered segments.
        s.absorb(2);
        assert_eq!(s.expected, 5);
        // Duplicates are harmless.
        s.absorb(1);
        assert_eq!(s.expected, 5);
        assert!(s.out_of_order.is_empty());
    }
}
