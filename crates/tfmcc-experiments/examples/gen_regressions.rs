//! Regenerates the checked-in replay files under `tests/regressions/`.
//!
//! ```text
//! cargo run -p tfmcc-experiments --example gen_regressions -- tests/regressions
//! ```
//!
//! Two files are produced:
//!
//! * `clr_leave_report_lost.replay` — a model-check schedule on the `smoke3`
//!   preset in which a receiver's leave announcement is dropped by the
//!   network (the classic lost-CLR-departure scenario).  The schedule is
//!   *quarantined*: it carries no `invariant=` key, so the regression test
//!   asserts it replays **clean** — the protocol must tolerate it.
//! * `worst_jain_seed.replay` — one scenario-search point with its expected
//!   Jain index and CLR recovery recorded bit-exactly.
//!
//! The generator validates everything it writes by re-executing it first,
//! so a stale grid or protocol change fails here, not in CI.

use tfmcc_experiments::scenario_search::{
    evaluate_scenario, replay_scenario, to_replay, Objective, Scenario,
};
use tfmcc_mc::{run_schedule, Action, McConfig, McModel, Model, Replay};

/// Builds the lost-leave-report schedule by driving the model greedily:
/// send one data packet, deliver every copy (so receivers learn the rate
/// and arm timers), make receiver 0 leave, drop its leave report, then run
/// the clock out — firing any due feedback timers and delivering whatever
/// the receivers send, so the sender must cope with the loss using only the
/// surviving receivers' reports.
fn model_check_schedule(model: &McModel) -> Vec<Action> {
    let mut schedule = Vec::new();
    let mut state = model.initial();
    let step =
        |state: &mut <McModel as Model>::State, schedule: &mut Vec<Action>, action: Action| {
            assert!(
                model.enabled(state).contains(&action),
                "{action} is not enabled after {schedule:?}"
            );
            *state = model.apply(state, &action);
            schedule.push(action);
        };

    step(&mut state, &mut schedule, Action::SendData);
    // Deliver all three data copies (indices shift as messages resolve; any
    // feedback the deliveries produce lands at the tail of the bag).
    for _ in 0..3 {
        step(&mut state, &mut schedule, Action::Deliver(0));
    }
    step(&mut state, &mut schedule, Action::Leave(0));
    // The leave announcement is the youngest message: drop it.
    let last = state.network.len() - 1;
    step(&mut state, &mut schedule, Action::Drop(last));
    // Run the clock out, draining timers and feedback as they come due.
    loop {
        let enabled = model.enabled(&state);
        if let Some(&fire) = enabled.iter().find(|a| matches!(a, Action::FireTimer(_))) {
            step(&mut state, &mut schedule, fire);
        } else if enabled.contains(&Action::Deliver(0)) {
            step(&mut state, &mut schedule, Action::Deliver(0));
        } else if enabled.contains(&Action::Tick) {
            step(&mut state, &mut schedule, Action::Tick);
        } else {
            break;
        }
    }
    schedule
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .expect("usage: gen_regressions <output-dir>");
    std::fs::create_dir_all(&dir).expect("create output dir");

    // --- model-check replay ---------------------------------------------
    let model = McModel::new(McConfig::preset("smoke3").unwrap());
    let schedule = model_check_schedule(&model);
    run_schedule(&model, &schedule).expect("quarantined schedule must replay clean");
    let mut replay = Replay::new("model-check");
    replay.set("preset", "smoke3");
    replay.set(
        "schedule",
        &schedule
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" "),
    );
    let path = format!("{dir}/clr_leave_report_lost.replay");
    std::fs::write(&path, replay.render()).expect("write replay");
    println!("wrote {path} ({} steps)", schedule.len());

    // --- scenario replay -------------------------------------------------
    let scenario = Scenario {
        sessions_idx: 1, // 2 sessions
        receivers_idx: 0,
        loss_idx: 2, // 1% bottleneck loss, both directions
        delay_idx: 1,
        churn_idx: 2, // 4 s on / 4 s off
        queue_idx: 0, // drop-tail, matching the checked-in seed replay
        seed: 7,
    };
    let duration = 15.0;
    let outcome = evaluate_scenario(&scenario, duration);
    let replay = to_replay(Objective::WorstJain, &scenario, duration, &outcome);
    replay_scenario(&Replay::parse(&replay.render()).unwrap())
        .expect("scenario replay must re-execute bit-exactly");
    let path = format!("{dir}/worst_jain_seed.replay");
    std::fs::write(&path, replay.render()).expect("write replay");
    println!(
        "wrote {path} (jain={:.4} recovery={:.3}s)",
        outcome.jain, outcome.clr_recovery
    );
}
