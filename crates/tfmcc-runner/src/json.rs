//! A tiny deterministic JSON document model.
//!
//! Result files must be byte-identical across runs and thread counts, so
//! rendering is fully specified: object keys keep insertion order, numbers
//! use Rust's shortest round-trip `Display` (deterministic for any `f64`),
//! non-finite numbers render as `null`, and there is no whitespace except a
//! single trailing newline added by callers that write files.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numbers.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is the shortest representation
                    // that round-trips — deterministic and valid JSON (it
                    // may use exponent notation, which JSON permits).
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let doc = Json::Obj(vec![
            ("id".into(), Json::str("fig07")),
            ("n".into(), Json::num(3.0)),
            ("half".into(), Json::num(0.5)),
            (
                "points".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::num(1.0), Json::num(2.5)]),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"id":"fig07","n":3,"half":0.5,"points":[[1,2.5],null,true]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN).render(), "null");
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rendering_is_deterministic() {
        let doc = Json::Arr((0..64).map(|i| Json::num(i as f64 * 0.1)).collect());
        assert_eq!(doc.render(), doc.render());
    }
}
