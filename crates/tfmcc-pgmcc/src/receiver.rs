//! PGMCC receiver: acks every packet when elected acker, otherwise sends
//! occasional reports with its loss rate.

use std::any::Any;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use netsim::packet::{Address, Dest, FlowId, GroupId, Packet, Payload};
use netsim::sim::{Agent, Context};
use netsim::stats::ThroughputMeter;

use crate::{PgmccMessage, CONTROL_PACKET_SIZE};

const REPORT_TOKEN: u64 = 1;

/// The PGMCC receiver agent.
pub struct PgmccReceiverAgent {
    id: u64,
    sender_addr: Address,
    group: GroupId,
    flow: FlowId,
    /// Next in-order sequence number expected.
    expected: u64,
    /// Total number of missing packets observed (sequence holes).
    lost_total: u64,
    /// Smoothed loss rate (EWMA over per-packet loss indications).
    loss_rate: f64,
    /// Timestamp of the most recent data packet (sender clock).
    last_timestamp: f64,
    /// True while this receiver believes it is the acker.
    is_acker: bool,
    meter: ThroughputMeter,
    rng: SmallRng,
    packets: u64,
}

impl PgmccReceiverAgent {
    /// Creates a receiver with session-unique `id`, reporting to
    /// `sender_addr`.
    pub fn new(id: u64, sender_addr: Address, group: GroupId, flow: FlowId) -> Self {
        PgmccReceiverAgent {
            id,
            sender_addr,
            group,
            flow,
            expected: 0,
            lost_total: 0,
            loss_rate: 0.0,
            last_timestamp: 0.0,
            is_acker: false,
            meter: ThroughputMeter::new(1.0),
            rng: SmallRng::seed_from_u64(id.wrapping_mul(0xA24B_AED4_963E_E407)),
            packets: 0,
        }
    }

    /// Throughput meter over the received data.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Smoothed loss rate estimate.
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    /// True while this receiver is the acker.
    pub fn is_acker(&self) -> bool {
        self.is_acker
    }

    fn send(&self, ctx: &mut Context<'_>, msg: PgmccMessage) {
        let pkt = Packet::new(
            ctx.addr(),
            Dest::Unicast(self.sender_addr),
            CONTROL_PACKET_SIZE,
            self.flow,
            Payload::new(msg),
        );
        ctx.send(pkt);
    }
}

impl Agent for PgmccReceiverAgent {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.group);
        // Stagger the first report to avoid synchronisation.
        let delay: f64 = self.rng.gen_range(0.5..1.5);
        ctx.schedule(delay, REPORT_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token != REPORT_TOKEN {
            return;
        }
        // Non-acker receivers report their conditions every 1-2 seconds; the
        // acker's state travels in its ACKs so it stays silent here.
        if !self.is_acker && self.packets > 0 {
            let msg = PgmccMessage::Report {
                receiver: self.id,
                echo_timestamp: self.last_timestamp,
                loss_rate: self.loss_rate,
            };
            self.send(ctx, msg);
        }
        let delay: f64 = self.rng.gen_range(1.0..2.0);
        ctx.schedule(delay, REPORT_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(&PgmccMessage::Data {
            seq,
            timestamp,
            acker,
        }) = packet.payload.downcast_ref::<PgmccMessage>()
        else {
            return;
        };
        self.packets += 1;
        self.meter.record(ctx.now(), u64::from(packet.size));
        self.last_timestamp = timestamp;
        self.is_acker = acker == Some(self.id);
        // Loss estimate: exponentially weighted fraction of missing packets.
        if seq >= self.expected {
            let lost = seq - self.expected;
            self.lost_total += lost;
            let weight = 0.05;
            // Each missing packet contributes a 1, the received packet a 0.
            for _ in 0..lost.min(64) {
                self.loss_rate = (1.0 - weight) * self.loss_rate + weight;
            }
            self.loss_rate *= 1.0 - weight;
            self.expected = seq + 1;
        }
        if self.is_acker {
            let msg = PgmccMessage::Ack {
                receiver: self.id,
                cumulative: self.expected,
                latest: seq,
                lost_total: self.lost_total,
                echo_timestamp: timestamp,
                loss_rate: self.loss_rate,
            };
            self.send(ctx, msg);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::PgmccSenderAgent;
    use netsim::prelude::*;

    fn build_session(
        sim: &mut Simulator,
        sender_node: NodeId,
        receiver_nodes: &[NodeId],
    ) -> (netsim::packet::AgentId, Vec<netsim::packet::AgentId>) {
        let group = GroupId(77);
        let data_port = Port(7000);
        let sender_port = Port(7001);
        let sender_addr = Address::new(sender_node, sender_port);
        let sender = sim.add_agent(
            sender_node,
            sender_port,
            Box::new(PgmccSenderAgent::new(group, data_port, FlowId(7), 1000)),
        );
        let receivers = receiver_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                sim.add_agent(
                    node,
                    data_port,
                    Box::new(PgmccReceiverAgent::new(
                        i as u64 + 1,
                        sender_addr,
                        group,
                        FlowId(7),
                    )),
                )
            })
            .collect();
        (sender, receivers)
    }

    #[test]
    fn single_receiver_roughly_fills_bottleneck() {
        let mut sim = Simulator::new(401);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_duplex_link(a, b, 125_000.0, 0.02, QueueDiscipline::drop_tail(30));
        let (sender, receivers) = build_session(&mut sim, a, &[b]);
        sim.run_until(SimTime::from_secs(60.0));
        let r: &PgmccReceiverAgent = sim.agent(receivers[0]).unwrap();
        let rate = r.meter().average_between(20.0, 55.0);
        assert!(
            (70_000.0..=126_000.0).contains(&rate),
            "PGMCC should fill most of the bottleneck, got {rate}"
        );
        let s: &PgmccSenderAgent = sim.agent(sender).unwrap();
        assert_eq!(s.acker(), Some(1));
        assert!(s.stats().loss_events > 0, "the sawtooth needs loss events");
    }

    #[test]
    fn acker_is_the_receiver_behind_the_worst_path() {
        let mut sim = Simulator::new(402);
        let legs = vec![
            StarLeg::clean(1_250_000.0, 0.02),
            StarLeg::clean(1_250_000.0, 0.02).with_downstream_loss(0.05),
        ];
        let st = star(&mut sim, &StarConfig::default(), &legs);
        let (sender, _) = build_session(&mut sim, st.sender, &st.receivers.clone());
        sim.run_until(SimTime::from_secs(60.0));
        let s: &PgmccSenderAgent = sim.agent(sender).unwrap();
        assert_eq!(s.acker(), Some(2), "the lossy receiver must be the acker");
    }

    #[test]
    fn loss_estimate_tracks_gap_fraction() {
        let mut sim = Simulator::new(403);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (down, _) =
            sim.add_duplex_link(a, b, 1_250_000.0, 0.01, QueueDiscipline::drop_tail(500));
        sim.set_link_loss(down, LossModel::Bernoulli { p: 0.1 });
        let (_, receivers) = build_session(&mut sim, a, &[b]);
        sim.run_until(SimTime::from_secs(60.0));
        let r: &PgmccReceiverAgent = sim.agent(receivers[0]).unwrap();
        assert!(
            (0.03..=0.25).contains(&r.loss_rate()),
            "loss estimate should be near 10%, got {}",
            r.loss_rate()
        );
    }
}
