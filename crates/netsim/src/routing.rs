//! Unicast routing tables and multicast distribution trees.
//!
//! Routes use shortest paths over link propagation delay (ties broken by hop
//! count via a tiny per-hop epsilon), which makes the unicast paths of all
//! evaluation topologies the obvious shortest paths.  Multicast distribution
//! trees are shortest-path source trees — exactly what DVMRP/PIM-SM would
//! build on these topologies.
//!
//! # Scaling
//!
//! Nothing here is all-pairs.  Unicast next hops are computed **lazily per
//! destination** (one reverse Dijkstra the first time any node needs a route
//! toward that destination), and a multicast tree is **one forward Dijkstra**
//! from the source plus an incrementally maintained, reference-counted
//! member overlay ([`SourceTree`]): joining or leaving a group touches only
//! the member's path to the source, not the whole tree.  This is what lets a
//! single simulation hold 10⁵ receivers — the seed implementation ran one
//! Dijkstra per *node* up front and rebuilt every tree on every membership
//! change.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

use crate::packet::{GroupId, LinkId, NodeId};

/// Per-hop cost epsilon added to the delay metric so that equal-delay paths
/// prefer fewer hops.
const HOP_EPSILON: f64 = 1e-9;

/// Directed adjacency description used for route computation.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Link id of this edge.
    pub link: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Propagation delay used as the routing metric.
    pub delay: f64,
}

/// One directed hop in an adjacency list: (neighbour, link, cost).
type Hop = (NodeId, LinkId, f64);

/// Min-heap entry for Dijkstra; ordered by (distance, node) so the pop order
/// — and therefore tie-breaking between equal-cost paths — is deterministic.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap; distances are finite and non-NaN.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are never NaN")
            .then(other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-path parents of a single-source Dijkstra: for every node, the
/// predecessor hop on its shortest path from the source (`None` for the
/// source itself and for unreachable nodes).
#[derive(Debug, Clone)]
pub struct PathParents {
    source: NodeId,
    parent: Vec<Option<(NodeId, LinkId)>>,
}

impl PathParents {
    /// The predecessor hop of `node`: the node the path arrives from and the
    /// link it arrives over.
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, LinkId)> {
        self.parent[node.0]
    }

    /// True if `node` is reachable from the source.
    pub fn reachable(&self, node: NodeId) -> bool {
        node == self.source || self.parent[node.0].is_some()
    }
}

/// Unicast routing state over a fixed topology.
///
/// Construction ([`RoutingTable::compute`]) only builds adjacency lists; the
/// per-destination next-hop tables are filled in on first use.
#[derive(Debug, Default)]
pub struct RoutingTable {
    node_count: usize,
    /// Outgoing hops per node.
    fwd: Vec<Vec<Hop>>,
    /// Incoming hops per node (the forward edges reversed), for the
    /// per-destination reverse Dijkstra.
    rev: Vec<Vec<Hop>>,
    /// `to` node of every link, indexed by `LinkId`.
    link_to: BTreeMap<LinkId, NodeId>,
    /// Lazily computed: for destination `d`, `toward[&d][src]` is the next
    /// outgoing link at `src` on the shortest path to `d`.
    toward: BTreeMap<NodeId, Vec<Option<LinkId>>>,
}

impl RoutingTable {
    /// Builds the adjacency for `node_count` nodes over the given directed
    /// edges.  Cheap: next hops are computed lazily per destination.
    pub fn compute(node_count: usize, edges: &[Edge]) -> Self {
        let mut fwd: Vec<Vec<Hop>> = vec![Vec::new(); node_count];
        let mut rev: Vec<Vec<Hop>> = vec![Vec::new(); node_count];
        let mut link_to = BTreeMap::new();
        for e in edges {
            let cost = e.delay + HOP_EPSILON;
            fwd[e.from.0].push((e.to, e.link, cost));
            rev[e.to.0].push((e.from, e.link, cost));
            link_to.insert(e.link, e.to);
        }
        RoutingTable {
            node_count,
            fwd,
            rev,
            link_to,
            toward: BTreeMap::new(),
        }
    }

    /// The outgoing link at `from` toward `to`, if a route exists.
    ///
    /// The first query for a destination runs one reverse Dijkstra rooted at
    /// it; later queries for the same destination are an array lookup.
    pub fn next_hop(&mut self, from: NodeId, to: NodeId) -> Option<LinkId> {
        if from.0 >= self.node_count || to.0 >= self.node_count || from == to {
            return None;
        }
        if !self.toward.contains_key(&to) {
            let table = self.compute_toward(to);
            self.toward.insert(to, table);
        }
        self.toward[&to][from.0]
    }

    /// The full path of links from `from` to `to`, if a route exists.
    pub fn path(&mut self, from: NodeId, to: NodeId) -> Option<Vec<LinkId>> {
        if from.0 >= self.node_count || to.0 >= self.node_count {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = from;
        let mut guard = 0usize;
        while cur != to {
            let link = self.next_hop(cur, to)?;
            path.push(link);
            cur = *self.link_to.get(&link)?;
            guard += 1;
            if guard > self.node_count + 1 {
                return None; // routing loop, should not happen
            }
        }
        Some(path)
    }

    /// Single-source shortest-path parents from `source` over the forward
    /// graph (used to build and incrementally maintain multicast trees).
    pub fn parents_from(&self, source: NodeId) -> PathParents {
        PathParents {
            source,
            parent: dijkstra_hops(&self.fwd, source.0),
        }
    }

    /// Reverse Dijkstra rooted at destination `to`: for every node, the
    /// first link on its shortest path toward `to`.
    ///
    /// A relaxed reverse hop (from, link) means the forward edge
    /// `from -link-> node`: `from` reaches `to` by entering `link` first.
    fn compute_toward(&self, to: NodeId) -> Vec<Option<LinkId>> {
        dijkstra_hops(&self.rev, to.0)
            .into_iter()
            .map(|hop| hop.map(|(_, link)| link))
            .collect()
    }
}

/// Dijkstra from `root` over an adjacency, recording for every node the hop
/// `(neighbour, link)` chosen when the node was last relaxed (`None` for the
/// root and unreachable nodes).  Over the forward adjacency this yields
/// shortest-path parents; over the reversed adjacency, first hops toward the
/// root.  One body means cost metric and tie-breaking (deterministic via
/// [`HeapEntry`]'s (dist, node) order) can never diverge between unicast
/// routes and multicast trees.
fn dijkstra_hops(adjacency: &[Vec<Hop>], root: usize) -> Vec<Option<(NodeId, LinkId)>> {
    let node_count = adjacency.len();
    let mut dist = vec![f64::INFINITY; node_count];
    let mut hop: Vec<Option<(NodeId, LinkId)>> = vec![None; node_count];
    let mut done = vec![false; node_count];
    let mut heap = BinaryHeap::new();
    dist[root] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: root,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if done[node] {
            continue;
        }
        done[node] = true;
        for &(next, link, cost) in &adjacency[node] {
            let nd = d + cost;
            if nd < dist[next.0] {
                dist[next.0] = nd;
                hop[next.0] = Some((NodeId(node), link));
                heap.push(HeapEntry {
                    dist: nd,
                    node: next.0,
                });
            }
        }
    }
    hop
}

/// A source-rooted multicast distribution tree built from scratch as the
/// union of shortest paths to every member.
///
/// This is the **clone-based reference implementation** of the tree (what
/// the simulator did before incremental maintenance): it is rebuilt in full
/// whenever the membership changes.  The live fan-out path uses
/// [`SourceTree`]; this type remains for the reference fan-out mode that the
/// equivalence tests and the fan-out microbench compare against.
#[derive(Debug, Clone, Default)]
pub struct DistributionTree {
    children: BTreeMap<NodeId, Vec<LinkId>>,
}

impl DistributionTree {
    /// Builds the tree rooted at `source` spanning `members` (node ids of
    /// the group's receivers) as the union of shortest paths.
    pub fn build(source: NodeId, members: &BTreeSet<NodeId>, routes: &RoutingTable) -> Self {
        let parents = routes.parents_from(source);
        let mut children: BTreeMap<NodeId, BTreeSet<LinkId>> = BTreeMap::new();
        for &member in members {
            if member == source || !parents.reachable(member) {
                continue; // unreachable member: skip
            }
            let mut cur = member;
            while let Some((up, link)) = parents.parent(cur) {
                children.entry(up).or_default().insert(link);
                cur = up;
            }
        }
        DistributionTree {
            // BTreeSet iterates in order, so the per-node link lists come out
            // sorted without an explicit sort.
            children: children
                .into_iter()
                .map(|(n, set)| (n, set.into_iter().collect()))
                .collect(),
        }
    }

    /// Outgoing links at `node` for this tree.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        self.children.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of edges in the tree.
    pub fn edge_count(&self) -> usize {
        self.children.values().map(Vec::len).sum()
    }
}

/// An incrementally maintained source-rooted multicast tree.
///
/// Built with one forward Dijkstra from the source; after that, member joins
/// and leaves walk only the member's path to the source, maintaining a
/// per-node reference count (how many members' paths pass through the node)
/// and the per-node sorted out-link lists.  The out-link lists are shared
/// (`Arc`) so the fan-out can iterate them without copying while the event
/// handler mutates the world.
#[derive(Debug)]
pub struct SourceTree {
    parents: PathParents,
    /// Number of members whose delivery path passes through each node
    /// (the source itself is not counted).
    cnt: Vec<u32>,
    /// Sorted replication links out of each node; slots share one empty
    /// allocation until first use.
    out: Vec<Arc<Vec<LinkId>>>,
}

impl SourceTree {
    /// Builds the tree rooted at `source` and attaches every current member.
    pub fn build(source: NodeId, members: &BTreeSet<NodeId>, routes: &RoutingTable) -> Self {
        let parents = routes.parents_from(source);
        let node_count = parents.parent.len();
        let empty = Arc::new(Vec::new());
        let mut tree = SourceTree {
            parents,
            cnt: vec![0; node_count],
            out: vec![empty; node_count],
        };
        // BTreeSet iteration is already the deterministic (ascending) attach
        // order.
        for &member in members {
            tree.add_member(member);
        }
        tree
    }

    /// Attaches a member: walks its path to the source, incrementing the
    /// per-node counts and materialising newly needed replication links.
    pub fn add_member(&mut self, member: NodeId) {
        if !self.parents.reachable(member) || member == self.parents.source {
            return;
        }
        let mut cur = member;
        while let Some((up, link)) = self.parents.parent(cur) {
            self.cnt[cur.0] += 1;
            if self.cnt[cur.0] == 1 {
                let list = Arc::make_mut(&mut self.out[up.0]);
                if let Err(pos) = list.binary_search(&link) {
                    list.insert(pos, link);
                }
            }
            cur = up;
        }
    }

    /// Detaches a member: the mirror image of [`SourceTree::add_member`].
    pub fn remove_member(&mut self, member: NodeId) {
        if !self.parents.reachable(member) || member == self.parents.source {
            return;
        }
        let mut cur = member;
        while let Some((up, link)) = self.parents.parent(cur) {
            debug_assert!(self.cnt[cur.0] > 0, "leave without matching join");
            self.cnt[cur.0] = self.cnt[cur.0].saturating_sub(1);
            if self.cnt[cur.0] == 0 {
                let list = Arc::make_mut(&mut self.out[up.0]);
                if let Ok(pos) = list.binary_search(&link) {
                    list.remove(pos);
                }
            }
            cur = up;
        }
    }

    /// The shared, sorted out-link list at `node` — cloning the `Arc` is the
    /// zero-copy way to iterate it while mutating the simulation.
    pub fn out_links(&self, node: NodeId) -> &Arc<Vec<LinkId>> {
        &self.out[node.0]
    }

    /// Total number of edges in the tree.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(|v| v.len()).sum()
    }
}

/// Multicast group membership plus cached distribution trees.
#[derive(Debug, Default)]
pub struct MulticastState {
    /// Group -> member node set.
    members: BTreeMap<GroupId, BTreeSet<NodeId>>,
    /// Incrementally maintained trees keyed by (group, source node).
    trees: BTreeMap<(GroupId, NodeId), SourceTree>,
    /// Rebuild-from-scratch trees for the clone-based reference fan-out;
    /// invalidated (seed behaviour) on every membership change.
    ref_trees: BTreeMap<(GroupId, NodeId), DistributionTree>,
}

impl MulticastState {
    /// Adds `node` to `group`, updating cached trees for the group in place.
    pub fn join(&mut self, group: GroupId, node: NodeId) {
        if self.members.entry(group).or_default().insert(node) {
            for ((g, _), tree) in self.trees.iter_mut() {
                if *g == group {
                    tree.add_member(node);
                }
            }
            self.ref_trees.retain(|(g, _), _| *g != group);
        }
    }

    /// Removes `node` from `group`, updating cached trees for the group in
    /// place.
    pub fn leave(&mut self, group: GroupId, node: NodeId) {
        let removed = self
            .members
            .get_mut(&group)
            .is_some_and(|set| set.remove(&node));
        if removed {
            for ((g, _), tree) in self.trees.iter_mut() {
                if *g == group {
                    tree.remove_member(node);
                }
            }
            self.ref_trees.retain(|(g, _), _| *g != group);
        }
    }

    /// Member node set of a group (empty if the group does not exist).
    pub fn members(&self, group: GroupId) -> BTreeSet<NodeId> {
        self.members.get(&group).cloned().unwrap_or_default()
    }

    /// Whether `node` is currently a member of `group`.
    pub fn is_member(&self, group: GroupId, node: NodeId) -> bool {
        self.members
            .get(&group)
            .is_some_and(|set| set.contains(&node))
    }

    /// Iterates every group's member node set in group order (used by the
    /// domain sharding layer to seed per-shard membership replicas).
    pub fn group_members(&self) -> impl Iterator<Item = (GroupId, &BTreeSet<NodeId>)> {
        self.members.iter().map(|(&g, set)| (g, set))
    }

    /// Returns (building and caching if necessary) the incrementally
    /// maintained distribution tree for `group` rooted at `source`.
    pub fn tree(&mut self, group: GroupId, source: NodeId, routes: &RoutingTable) -> &SourceTree {
        let members = self.members.get(&group);
        self.trees.entry((group, source)).or_insert_with(|| {
            let empty = BTreeSet::new();
            SourceTree::build(source, members.unwrap_or(&empty), routes)
        })
    }

    /// Returns (building and caching if necessary) the rebuild-from-scratch
    /// reference tree for `group` rooted at `source`.
    ///
    /// Faithful to the seed implementation, this clones the group's entire
    /// member set on every call — cache hit or not — which is part of the
    /// per-send cost the zero-copy fan-out removed.
    pub fn ref_tree(
        &mut self,
        group: GroupId,
        source: NodeId,
        routes: &RoutingTable,
    ) -> &DistributionTree {
        let members = self.members(group);
        self.ref_trees
            .entry((group, source))
            .or_insert_with(|| DistributionTree::build(source, &members, routes))
    }

    /// Drops every cached tree (used after topology changes).
    pub fn invalidate(&mut self) {
        self.trees.clear();
        self.ref_trees.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a small test graph:
    ///
    /// ```text
    ///      0 ── 1 ── 2
    ///            │
    ///            3
    /// ```
    /// with unit delays; links are numbered in creation order, both
    /// directions.
    fn line_graph() -> (usize, Vec<Edge>) {
        let mut edges = Vec::new();
        let mut add = |from: usize, to: usize, delay: f64| {
            let id = edges.len();
            edges.push(Edge {
                link: LinkId(id),
                from: NodeId(from),
                to: NodeId(to),
                delay,
            });
        };
        add(0, 1, 0.01);
        add(1, 0, 0.01);
        add(1, 2, 0.01);
        add(2, 1, 0.01);
        add(1, 3, 0.01);
        add(3, 1, 0.01);
        (4, edges)
    }

    #[test]
    fn unicast_routes_follow_shortest_path() {
        let (n, edges) = line_graph();
        let mut rt = RoutingTable::compute(n, &edges);
        // 0 -> 2 goes via node 1.
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), Some(LinkId(0)));
        assert_eq!(rt.next_hop(NodeId(1), NodeId(2)), Some(LinkId(2)));
        // 2 -> 3 goes back through 1.
        assert_eq!(rt.next_hop(NodeId(2), NodeId(3)), Some(LinkId(3)));
        // Full path reconstruction.
        let path = rt.path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(path, vec![LinkId(0), LinkId(4)]);
    }

    #[test]
    fn unreachable_destination_has_no_route() {
        let edges = vec![Edge {
            link: LinkId(0),
            from: NodeId(0),
            to: NodeId(1),
            delay: 0.01,
        }];
        let mut rt = RoutingTable::compute(3, &edges);
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(rt.next_hop(NodeId(1), NodeId(0)), None); // one-way link
    }

    #[test]
    fn dijkstra_prefers_lower_delay() {
        // Two paths 0->2: direct (delay 0.1) and via 1 (total 0.04).
        let edges = vec![
            Edge {
                link: LinkId(0),
                from: NodeId(0),
                to: NodeId(2),
                delay: 0.1,
            },
            Edge {
                link: LinkId(1),
                from: NodeId(0),
                to: NodeId(1),
                delay: 0.02,
            },
            Edge {
                link: LinkId(2),
                from: NodeId(1),
                to: NodeId(2),
                delay: 0.02,
            },
        ];
        let mut rt = RoutingTable::compute(3, &edges);
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), Some(LinkId(1)));
        // The forward parents agree with the reverse next hops.
        let parents = rt.parents_from(NodeId(0));
        assert_eq!(parents.parent(NodeId(2)), Some((NodeId(1), LinkId(2))));
    }

    #[test]
    fn distribution_tree_is_union_of_paths() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let members: BTreeSet<NodeId> = [NodeId(2), NodeId(3)].into_iter().collect();
        let tree = DistributionTree::build(NodeId(0), &members, &rt);
        // Node 0 forwards once toward node 1; node 1 branches to 2 and 3.
        assert_eq!(tree.out_links(NodeId(0)), &[LinkId(0)]);
        let mut at1 = tree.out_links(NodeId(1)).to_vec();
        at1.sort();
        assert_eq!(at1, vec![LinkId(2), LinkId(4)]);
        assert_eq!(tree.out_links(NodeId(2)), &[] as &[LinkId]);
        assert_eq!(tree.edge_count(), 3);
    }

    #[test]
    fn source_tree_incremental_updates_match_rebuilds() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let mut members: BTreeSet<NodeId> = BTreeSet::new();
        let mut tree = SourceTree::build(NodeId(0), &members, &rt);
        assert_eq!(tree.edge_count(), 0);

        for step in [
            (NodeId(2), true),
            (NodeId(3), true),
            (NodeId(2), false),
            (NodeId(1), true),
            (NodeId(3), false),
            (NodeId(1), false),
        ] {
            let (node, joining) = step;
            if joining {
                members.insert(node);
                tree.add_member(node);
            } else {
                members.remove(&node);
                tree.remove_member(node);
            }
            let reference = DistributionTree::build(NodeId(0), &members, &rt);
            assert_eq!(
                tree.edge_count(),
                reference.edge_count(),
                "edge count diverged after {step:?}"
            );
            for v in 0..n {
                assert_eq!(
                    tree.out_links(NodeId(v)).as_slice(),
                    reference.out_links(NodeId(v)),
                    "out links diverged at node {v} after {step:?}"
                );
            }
        }
    }

    #[test]
    fn multicast_membership_and_tree_cache() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let mut mc = MulticastState::default();
        let g = GroupId(1);
        mc.join(g, NodeId(2));
        assert_eq!(mc.members(g).len(), 1);
        let t1_edges = mc.tree(g, NodeId(0), &rt).edge_count();
        assert_eq!(t1_edges, 2); // 0->1->2
        mc.join(g, NodeId(3));
        let t2_edges = mc.tree(g, NodeId(0), &rt).edge_count();
        assert_eq!(t2_edges, 3); // tree updated in place after join
        mc.leave(g, NodeId(2));
        let t3_edges = mc.tree(g, NodeId(0), &rt).edge_count();
        assert_eq!(t3_edges, 2); // 0->1->3
        mc.leave(g, NodeId(3));
        assert_eq!(mc.tree(g, NodeId(0), &rt).edge_count(), 0);
        // The reference tree agrees at every point it is queried.
        mc.join(g, NodeId(2));
        assert_eq!(mc.ref_tree(g, NodeId(0), &rt).edge_count(), 2);
    }

    #[test]
    fn source_inside_member_set_is_ignored() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let members: BTreeSet<NodeId> = [NodeId(0), NodeId(2)].into_iter().collect();
        let tree = DistributionTree::build(NodeId(0), &members, &rt);
        assert_eq!(tree.edge_count(), 2); // only the path to node 2
        let inc = SourceTree::build(NodeId(0), &members, &rt);
        assert_eq!(inc.edge_count(), 2);
    }

    #[test]
    fn duplicate_joins_and_leaves_are_idempotent() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let mut mc = MulticastState::default();
        let g = GroupId(9);
        mc.join(g, NodeId(3));
        mc.join(g, NodeId(3));
        assert_eq!(mc.tree(g, NodeId(0), &rt).edge_count(), 2);
        mc.leave(g, NodeId(3));
        mc.leave(g, NodeId(3));
        assert_eq!(mc.tree(g, NodeId(0), &rt).edge_count(), 0);
        let _ = n;
    }
}
