//! Special functions needed by the analytic models.
//!
//! Only what the rest of the crate requires is implemented: the natural log of
//! the gamma function (Lanczos approximation) and the regularized lower
//! incomplete gamma function `P(a, x)` (series + continued-fraction forms),
//! which together give the CDF of the gamma distribution used in the
//! loss-path-multiplicity analysis of paper Section 3.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, which is
/// accurate to roughly 15 significant digits over the positive real axis.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for small arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF at `x` of a Gamma(shape = `a`, scale = 1) random
/// variable.  For `x < a + 1` the series representation converges quickly and
/// is used; otherwise the continued-fraction representation of the upper
/// function `Q(a, x)` is evaluated and `P = 1 - Q` returned.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

/// CDF of a Gamma(shape, scale) distribution evaluated at `x`.
pub fn gamma_cdf(shape: f64, scale: f64, x: f64) -> f64 {
    assert!(scale > 0.0, "gamma_cdf requires scale > 0, got {scale}");
    if x <= 0.0 {
        0.0
    } else {
        gamma_p(shape, x / scale)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction of Q(a, x).
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Harmonic number `H_n = sum_{k=1..n} 1/k`, exact summation for small `n`
/// and the asymptotic expansion for large `n`.
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 10_000 {
        (1..=n).map(|k| 1.0 / k as f64).sum()
    } else {
        let nf = n as f64;
        // Euler–Mascheroni constant.
        const GAMMA: f64 = 0.577_215_664_901_532_9;
        nf.ln() + GAMMA + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {a} ≈ {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64), fact.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi).
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2.
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn gamma_p_known_values() {
        // For shape 1 the gamma distribution is exponential: P(1, x) = 1 - e^-x.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        // Median of Gamma(shape=2, scale=1) is about 1.6783.
        assert_close(gamma_p(2.0, 1.678_35), 0.5, 1e-4);
    }

    fn x_f(x: f64) -> f64 {
        x
    }

    #[test]
    fn gamma_p_is_monotone_and_bounded() {
        let mut last = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(3.5, x);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last - 1e-12);
            last = p;
        }
        assert!(gamma_p(3.5, 60.0) > 0.999_999);
    }

    #[test]
    fn gamma_cdf_scale_is_respected() {
        // Scaling x and the scale parameter together leaves the CDF unchanged.
        assert_close(gamma_cdf(2.0, 3.0, 6.0), gamma_cdf(2.0, 1.0, 2.0), 1e-12);
    }

    #[test]
    fn harmonic_small_and_large_agree() {
        assert_close(harmonic(1), 1.0, 1e-15);
        assert_close(harmonic(4), 1.0 + 0.5 + 1.0 / 3.0 + 0.25, 1e-15);
        // The asymptotic branch should agree with direct summation to ~1e-10.
        let direct: f64 = (1..=20_000u64).map(|k| 1.0 / k as f64).sum();
        assert_close(harmonic(20_000), direct, 1e-10);
    }
}
