//! A multicast "video streaming" scenario: TFMCC sharing an 8 Mbit/s
//! backbone with TCP cross traffic, with a viewer on a slow DSL line joining
//! mid-session.
//!
//! This is the application domain the paper motivates (long-lived streams to
//! many receivers).  The example prints the per-interval TFMCC rate so the
//! smooth adaptation — first to TCP cross traffic, then to the slow viewer —
//! is visible, and compares smoothness (coefficient of variation) against one
//! of the TCP flows.
//!
//! Run with `cargo run --release --example video_streaming`.

use tfmcc::prelude::*;
use tfmcc::tcp::{TcpSender, TcpSenderConfig, TcpSink};

fn main() {
    let mut sim = Simulator::new(99);
    let src = sim.add_node("streamer");
    let hub = sim.add_node("backbone");
    sim.add_duplex_link(src, hub, 1_000_000.0, 0.02, QueueDiscipline::drop_tail(125));

    // Five broadband viewers plus one DSL viewer (512 kbit/s) who joins late.
    let mut viewers = Vec::new();
    for i in 0..5 {
        let v = sim.add_node(&format!("viewer-{i}"));
        sim.add_duplex_link(hub, v, 12_500_000.0, 0.01, QueueDiscipline::drop_tail(100));
        viewers.push(v);
    }
    let dsl = sim.add_node("dsl-viewer");
    sim.add_duplex_link(hub, dsl, 64_000.0, 0.03, QueueDiscipline::drop_tail(20));

    let mut specs: Vec<ReceiverSpec> = viewers.iter().map(|&v| ReceiverSpec::always(v)).collect();
    specs.push(ReceiverSpec::joining_at(dsl, 120.0).leaving_at(200.0));
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        src,
        &PopulationSpec::packets(&specs),
    );

    // Two TCP downloads share the backbone for the whole session.
    let mut tcp_sinks = Vec::new();
    for (i, &viewer) in viewers.iter().enumerate().take(2) {
        let sink = sim.add_agent(viewer, Port(1), Box::new(TcpSink::new(5.0)));
        sim.add_agent(
            src,
            Port(100 + i as u16),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(viewer, Port(1)),
                FlowId(900 + i as u64),
            ))),
        );
        tcp_sinks.push(sink);
    }

    println!("interval_s,tfmcc_kbit,clr");
    for step in 1..=14 {
        let t = step as f64 * 20.0;
        sim.run_until(SimTime::from_secs(t));
        let agent = session.receiver_agent(&sim, 0);
        let rate = agent.meter().average_between(t - 20.0, t) * 8.0 / 1000.0;
        let sender = session.sender_agent(&sim).protocol();
        println!("{:.0}-{:.0},{rate:.0},{:?}", t - 20.0, t, sender.clr());
    }

    let tfmcc_meter = session.receiver_agent(&sim, 0).meter();
    let tcp_meter = sim.agent::<TcpSink>(tcp_sinks[0]).unwrap().meter();
    println!(
        "\nsmoothness (coefficient of variation, 40-110 s): TFMCC {:.2} vs TCP {:.2}",
        tfmcc_meter.coefficient_of_variation(40.0, 110.0),
        tcp_meter.coefficient_of_variation(40.0, 110.0)
    );
    println!(
        "While the DSL viewer (joins at 120 s, leaves at 200 s) is subscribed, the whole group is limited to its ~512 kbit/s link — the cost of single-rate multicast the paper discusses."
    );
}
