//! Workspace self-check: the repository this linter ships in must itself
//! lint clean.  Runs as part of `cargo test -q`, so a determinism regression
//! (a new `HashMap` in a sim-visible crate, a wall-clock read in protocol
//! code, a reason-less suppression) fails the plain test suite even before
//! the dedicated CI leg runs.

use std::path::Path;

use tfmcc_lint::{find_workspace_root, lint_workspace};

#[test]
fn workspace_lints_clean() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest_dir).expect("workspace root above crates/tfmcc-lint");
    let (findings, summary) = lint_workspace(&root).expect("scan workspace");
    assert!(
        summary.files_scanned > 20,
        "suspiciously few files scanned ({}) — scan roots moved?",
        summary.files_scanned
    );
    if !findings.is_empty() {
        let mut msg = String::from("workspace has unsuppressed determinism findings:\n");
        for f in &findings {
            msg.push_str(&format!(
                "  {}:{}:{}: {} {}\n",
                f.path, f.line, f.column, f.rule, f.message
            ));
        }
        panic!("{msg}");
    }
}
