//! TCP throughput models used as TFMCC's control equation.
//!
//! Two models are provided:
//!
//! * [`padhye_throughput`] — the full TCP Reno model of Padhye et al. (paper
//!   Eq. 1), which accounts for both triple-duplicate-ACK loss recovery and
//!   retransmission timeouts.  This is the control equation TFMCC receivers
//!   evaluate.
//! * [`mathis_throughput`] — the simplified "square-root p" model of Mathis
//!   et al. (paper Eq. 4), used where an easily invertible expression is
//!   sufficient (loss-history initialisation, PGMCC's acker election).
//!
//! Both have numeric inverses ([`padhye_loss_rate`], [`mathis_loss_rate`])
//! that recover the loss event rate from a target rate, as required by paper
//! Appendix B.

/// Which TCP throughput model to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TcpModel {
    /// Full model of Padhye et al. (paper Eq. 1).
    #[default]
    Padhye,
    /// Simplified square-root model of Mathis et al. (paper Eq. 4).
    Mathis,
}

impl TcpModel {
    /// Expected throughput in bytes/second for this model.
    pub fn throughput(self, packet_size: f64, rtt: f64, loss_event_rate: f64) -> f64 {
        match self {
            TcpModel::Padhye => padhye_throughput(packet_size, rtt, loss_event_rate),
            TcpModel::Mathis => mathis_throughput(packet_size, rtt, loss_event_rate),
        }
    }

    /// Loss event rate that would produce `rate` bytes/second under this model.
    pub fn loss_rate(self, packet_size: f64, rtt: f64, rate: f64) -> f64 {
        match self {
            TcpModel::Padhye => padhye_loss_rate(packet_size, rtt, rate),
            TcpModel::Mathis => mathis_loss_rate(packet_size, rtt, rate),
        }
    }
}

/// A practically-infinite rate returned when the loss event rate is zero.
///
/// TFRC/TFMCC treat "no loss observed yet" specially (slowstart); the model
/// itself diverges as `p -> 0`, so we cap it at a terabyte per second to keep
/// arithmetic finite.
pub const MAX_RATE: f64 = 1e12;

/// Full TCP throughput model of Padhye et al. (paper Eq. 1), in bytes/second.
///
/// ```text
///                              s
/// X = -------------------------------------------------------
///     R*sqrt(2p/3) + t_RTO * (3*sqrt(3p/8)) * p * (1 + 32 p^2)
/// ```
///
/// * `packet_size` — segment size `s` in bytes,
/// * `rtt` — round-trip time `R` in seconds,
/// * `loss_event_rate` — steady-state loss event rate `p` in (0, 1].
///
/// The retransmission timeout is approximated as `t_RTO = 4 R`, the value
/// used by TFRC and by the TFMCC paper, and one packet is assumed to be
/// acknowledged per ACK (`b = 1`).  A loss event rate of zero returns
/// [`MAX_RATE`].
pub fn padhye_throughput(packet_size: f64, rtt: f64, loss_event_rate: f64) -> f64 {
    padhye_throughput_full(packet_size, rtt, loss_event_rate, 4.0 * rtt, 1.0)
}

/// Full TCP throughput model with explicit retransmission timeout `t_rto` and
/// number of packets acknowledged per ACK `b` (2 models delayed ACKs).
///
/// ```text
///                                   s
/// X = -----------------------------------------------------------------
///     R*sqrt(2bp/3) + t_RTO * min(1, 3*sqrt(3bp/8)) * p * (1 + 32 p^2)
/// ```
pub fn padhye_throughput_full(
    packet_size: f64,
    rtt: f64,
    loss_event_rate: f64,
    t_rto: f64,
    b: f64,
) -> f64 {
    assert!(packet_size > 0.0, "packet size must be positive");
    assert!(rtt > 0.0, "rtt must be positive");
    assert!(t_rto > 0.0, "t_rto must be positive");
    assert!(b >= 1.0, "b must be at least 1");
    assert!(
        (0.0..=1.0).contains(&loss_event_rate),
        "loss event rate must be in [0, 1], got {loss_event_rate}"
    );
    if loss_event_rate <= 0.0 {
        return MAX_RATE;
    }
    let p = loss_event_rate;
    let denom = rtt * (2.0 * b * p / 3.0).sqrt()
        + t_rto * (3.0 * (3.0 * b * p / 8.0).sqrt()).min(1.0) * p * (1.0 + 32.0 * p * p);
    (packet_size / denom).min(MAX_RATE)
}

/// Simplified TCP throughput model of Mathis et al. (paper Eq. 4), bytes/second.
///
/// `X = s * C / (R * sqrt(p))` with `C = sqrt(3/2)`.
pub fn mathis_throughput(packet_size: f64, rtt: f64, loss_event_rate: f64) -> f64 {
    assert!(packet_size > 0.0, "packet size must be positive");
    assert!(rtt > 0.0, "rtt must be positive");
    assert!(
        (0.0..=1.0).contains(&loss_event_rate),
        "loss event rate must be in [0, 1], got {loss_event_rate}"
    );
    if loss_event_rate <= 0.0 {
        return MAX_RATE;
    }
    let c = (3.0_f64 / 2.0).sqrt();
    (packet_size * c / (rtt * loss_event_rate.sqrt())).min(MAX_RATE)
}

/// Inverse of the simplified model: the loss event rate at which a TCP flow
/// with the given packet size and RTT would achieve `rate` bytes/second.
///
/// `p = (s * C / (R * X))^2`, clamped to `[0, 1]`.  Used by paper Appendix B
/// to initialise the loss history from the rate at which the first loss was
/// observed.
pub fn mathis_loss_rate(packet_size: f64, rtt: f64, rate: f64) -> f64 {
    assert!(packet_size > 0.0, "packet size must be positive");
    assert!(rtt > 0.0, "rtt must be positive");
    assert!(rate > 0.0, "rate must be positive");
    let c = (3.0_f64 / 2.0).sqrt();
    let p = (packet_size * c / (rtt * rate)).powi(2);
    p.clamp(0.0, 1.0)
}

/// Inverse of the full Padhye model, computed by bisection on `p in [1e-12, 1]`.
///
/// Returns the loss event rate for which [`padhye_throughput`] equals `rate`.
/// If `rate` exceeds the model's value at `p = 1e-12` the minimum loss rate is
/// returned; if it is below the value at `p = 1` the maximum (1.0) is returned.
pub fn padhye_loss_rate(packet_size: f64, rtt: f64, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let mut lo = 1e-12;
    let mut hi = 1.0;
    // Throughput is monotonically decreasing in p.
    if padhye_throughput(packet_size, rtt, lo) <= rate {
        return lo;
    }
    if padhye_throughput(packet_size, rtt, hi) >= rate {
        return hi;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if padhye_throughput(packet_size, rtt, mid) > rate {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-15 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Loss events per RTT as a function of the loss event rate (paper Fig. 17).
///
/// With `X(p)` the model throughput in packets/second, a flow sending at the
/// model rate experiences `L = p * X(p) * R / s` loss events per RTT.  The
/// paper uses this curve (maximum ≈ 0.13) to argue that aggregating losses
/// with an overestimated initial RTT is safe (Appendix A).  The paper's
/// plotted peak of ≈0.13 corresponds to the delayed-ACK variant of the model
/// (`b = 2`), which is what this function evaluates.
pub fn loss_events_per_rtt(loss_event_rate: f64) -> f64 {
    // The ratio is independent of s and R: X ∝ s/R, so p*X*R/s depends only on p.
    let s = 1000.0;
    let rtt = 0.1;
    if loss_event_rate <= 0.0 {
        return 0.0;
    }
    loss_event_rate * padhye_throughput_full(s, rtt, loss_event_rate, 4.0 * rtt, 2.0) * rtt / s
}

/// Convenience: bits/second → bytes/second.
pub fn bits_to_bytes(bits_per_second: f64) -> f64 {
    bits_per_second / 8.0
}

/// Convenience: bytes/second → bits/second.
pub fn bytes_to_bits(bytes_per_second: f64) -> f64 {
    bytes_per_second * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padhye_matches_mathis_at_low_loss() {
        // For small p the timeout term is negligible and the models agree to
        // within a few percent.
        let s = 1000.0;
        let rtt = 0.1;
        for &p in &[1e-4, 3e-4, 1e-3] {
            let full = padhye_throughput(s, rtt, p);
            let simple = mathis_throughput(s, rtt, p);
            let ratio = full / simple;
            assert!(
                (0.9..=1.01).contains(&ratio),
                "p={p}: ratio {ratio} out of range"
            );
        }
    }

    #[test]
    fn padhye_decreasing_in_loss_rate() {
        let s = 1000.0;
        let rtt = 0.05;
        let mut last = f64::INFINITY;
        for i in 1..=1000 {
            let p = i as f64 / 1000.0;
            let x = padhye_throughput(s, rtt, p);
            assert!(x <= last + 1e-9, "throughput must decrease with p");
            assert!(x > 0.0);
            last = x;
        }
    }

    #[test]
    fn padhye_decreasing_in_rtt() {
        let s = 1000.0;
        let p = 0.01;
        let x1 = padhye_throughput(s, 0.01, p);
        let x2 = padhye_throughput(s, 0.1, p);
        let x3 = padhye_throughput(s, 1.0, p);
        assert!(x1 > x2 && x2 > x3);
    }

    #[test]
    fn zero_loss_returns_max_rate() {
        assert_eq!(padhye_throughput(1000.0, 0.1, 0.0), MAX_RATE);
        assert_eq!(mathis_throughput(1000.0, 0.1, 0.0), MAX_RATE);
    }

    #[test]
    fn paper_fair_rate_example() {
        // Section 3: loss 10%, RTT 50 ms, the fair rate is "around 300 kbit/s".
        // With 1000-byte packets the full model should land in that ballpark.
        let rate = padhye_throughput(1000.0, 0.05, 0.10);
        let kbit = bytes_to_bits(rate) / 1000.0;
        assert!(
            (150.0..=450.0).contains(&kbit),
            "expected ≈300 kbit/s, got {kbit:.1} kbit/s"
        );
    }

    #[test]
    fn mathis_inverse_round_trips() {
        let s = 1500.0;
        let rtt = 0.08;
        for &p in &[1e-4, 1e-3, 1e-2, 0.1, 0.3] {
            let rate = mathis_throughput(s, rtt, p);
            let back = mathis_loss_rate(s, rtt, rate);
            assert!((back - p).abs() < 1e-9 * p.max(1e-9), "p={p} back={back}");
        }
    }

    #[test]
    fn padhye_inverse_round_trips() {
        let s = 1000.0;
        let rtt = 0.06;
        for &p in &[1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.3] {
            let rate = padhye_throughput(s, rtt, p);
            let back = padhye_loss_rate(s, rtt, rate);
            assert!(
                (back - p).abs() < 1e-6 * p.max(1e-6),
                "p={p} back={back} rate={rate}"
            );
        }
    }

    #[test]
    fn padhye_inverse_clamps_extremes() {
        let s = 1000.0;
        let rtt = 0.06;
        // Absurdly high target rate -> essentially zero loss.
        assert!(padhye_loss_rate(s, rtt, 1e13) <= 1e-10);
        // Absurdly low target rate -> loss rate of 1.
        assert!(padhye_loss_rate(s, rtt, 1e-6) >= 0.999);
    }

    #[test]
    fn loss_events_per_rtt_peak_matches_paper() {
        // Paper Appendix A: the maximum is approximately 0.13 loss events/RTT.
        let mut max = 0.0_f64;
        for i in 1..=10_000 {
            let p = i as f64 / 10_000.0;
            max = max.max(loss_events_per_rtt(p));
        }
        assert!(
            (0.10..=0.16).contains(&max),
            "expected peak ≈ 0.13, got {max}"
        );
    }

    #[test]
    fn loss_events_per_rtt_is_small_at_extremes() {
        assert!(loss_events_per_rtt(1e-4) < 0.02);
        assert!(loss_events_per_rtt(0.9999) < 0.05);
        assert_eq!(loss_events_per_rtt(0.0), 0.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(bits_to_bytes(8.0), 1.0);
        assert_eq!(bytes_to_bits(1.0), 8.0);
    }

    #[test]
    fn model_enum_dispatch() {
        let s = 1000.0;
        let rtt = 0.1;
        let p = 0.01;
        assert_eq!(
            TcpModel::Padhye.throughput(s, rtt, p),
            padhye_throughput(s, rtt, p)
        );
        assert_eq!(
            TcpModel::Mathis.throughput(s, rtt, p),
            mathis_throughput(s, rtt, p)
        );
        let r = 1e5;
        assert_eq!(
            TcpModel::Mathis.loss_rate(s, rtt, r),
            mathis_loss_rate(s, rtt, r)
        );
        assert_eq!(
            TcpModel::Padhye.loss_rate(s, rtt, r),
            padhye_loss_rate(s, rtt, r)
        );
    }
}
