//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the *subset* of the `rand` 0.8 API its sources use:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`].  The generator is xoshiro256++ seeded through
//! splitmix64, so draws are deterministic, portable and of good statistical
//! quality — everything the simulator needs.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        // The closed upper bound matters only at f64 resolution; nudging the
        // uniform draw by one ulp-scale step keeps `hi` reachable.
        lo + ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) * (hi - lo)
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

/// High-level convenience methods over a random source.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Matches the role of `rand::rngs::SmallRng`: not cryptographically
    /// secure, but excellent for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(10u64..20);
            assert!((10..20).contains(&y));
            let z = rng.gen_range(1e-12f64..=1.0);
            assert!(z > 0.0 && z <= 1.0);
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
