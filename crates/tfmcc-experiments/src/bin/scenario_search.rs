//! Worst-case scenario search: simulated annealing over the churn / loss /
//! RTT / session-count grids, hunting the lowest Jain index and the slowest
//! CLR recovery.  Prints the per-iteration trajectories as CSV; the note
//! line carries both worst cases.  Set `TFMCC_REPLAY_DIR` to also write the
//! worst cases as `tfmcc-replay-v1` files for the regression suite.
//!
//! Shared CLI: `--quick` / `--paper` select the scale (quick: 4 iterations
//! of 20 s simulations; paper: 24 iterations of 120 s), `--threads N` sizes
//! the sweep executor (results are byte-identical for any N), `--out FILE`
//! writes the figure as deterministic JSON and `--bench-out FILE` the run's
//! timing trajectory.

fn main() {
    tfmcc_experiments::cli::figure_main(tfmcc_experiments::scenario_search::scenario_search);
}
