//! Figure 7 (loss path multiplicity / receiver-set scaling) and Figure 17
//! (loss events per RTT).
//!
//! Figure 7 is the paper's headline scaling sweep (receiver sets up to 10⁴).
//! Each Monte-Carlo estimate is sharded into seed replicas so the executor
//! can spread even a single receiver-count's trials over many workers; every
//! replica derives its seed from the sweep, so the averaged results are
//! byte-identical for any thread count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tfmcc_model::order_stats::scaling_throughput;
use tfmcc_model::population::{Dist, PopulationProfile};
use tfmcc_model::throughput::{bytes_to_bits, loss_events_per_rtt, padhye_throughput};
use tfmcc_runner::{ParamGrid, Sweep, SweepRunner};

use crate::output::{Figure, Series};
use crate::scale::Scale;

/// Parameters of the Figure 7 scenario: 10 % loss, 50 ms RTT, 1000-byte
/// packets, an 8-interval loss history.
const LOSS_RATE: f64 = 0.1;
const RTT: f64 = 0.05;
const PACKET: f64 = 1000.0;
const HISTORY: usize = 8;

/// Samples the average loss interval a receiver with loss rate `p` would
/// measure: the mean of `HISTORY` geometric loss intervals.
fn sample_avg_interval(p: f64, rng: &mut SmallRng) -> f64 {
    let mut acc = 0.0;
    for _ in 0..HISTORY {
        // Geometric interval with mean 1/p, sampled via the exponential
        // approximation the paper's analysis uses.
        let u: f64 = rng.gen_range(1e-12..1.0);
        acc += (-u.ln() / p).max(1.0);
    }
    acc / HISTORY as f64
}

/// Monte-Carlo estimate of the expected TFMCC throughput when the sender
/// tracks the minimum calculated rate over `n` receivers with the given
/// per-receiver loss rates.
fn tracked_minimum_throughput(loss_rates: &[f64], trials: usize, rng: &mut SmallRng) -> f64 {
    let mut acc = 0.0;
    for _ in 0..trials {
        let mut min_rate = f64::INFINITY;
        for &p in loss_rates {
            let interval = sample_avg_interval(p, rng);
            let rate = padhye_throughput(PACKET, RTT, (1.0 / interval).min(1.0));
            min_rate = min_rate.min(rate);
        }
        acc += min_rate;
    }
    acc / trials as f64
}

/// The paper's "distributed" loss assignment: the vast majority of receivers
/// have 0.5–2 % loss, some 2–5 %, and on the order of `c·log(n)` receivers
/// 5–10 %.
fn stratified_loss_rates(n: usize, rng: &mut SmallRng) -> Vec<f64> {
    let high = ((n as f64).ln().ceil() as usize).clamp(1, n);
    let mid = (n / 10).clamp(high, n);
    (0..n)
        .map(|i| {
            if i < high {
                rng.gen_range(0.05..0.10)
            } else if i < mid {
                rng.gen_range(0.02..0.05)
            } else {
                rng.gen_range(0.005..0.02)
            }
        })
        .collect()
}

/// The fluid-tier estimate of the sender's tracked minimum rate for the
/// stratified population: the rate of the slowest quantile bin of the
/// high-loss stratum (the `~ln(n)` receivers at 5–10 % loss that govern
/// the minimum under the comonotone coupling).  Entirely closed-form, so
/// the receiver axis extends to 10⁶–10⁷ where Monte-Carlo sampling of
/// individual receivers is no longer feasible.
fn population_min_throughput(n: usize) -> f64 {
    let high = ((n as f64).ln().ceil() as u64).clamp(1, n as u64);
    let profile = PopulationProfile {
        count: high,
        loss: Dist::Uniform { lo: 0.05, hi: 0.10 },
        rtt: Dist::Point(RTT),
        bins: (high as usize).min(64),
    };
    let bins = profile.quantize(PACKET);
    bins.last().expect("at least one bin").rate
}

/// Averages replica estimates back into one point per receiver count,
/// in fixed (point) order so the reduction is deterministic.
fn mean_per_count(ns: &[usize], replicas: usize, estimates: &[f64]) -> Vec<(f64, f64)> {
    ns.iter()
        .zip(estimates.chunks(replicas))
        .map(|(&n, chunk)| {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            (n as f64, bytes_to_bits(mean) / 1000.0)
        })
        .collect()
}

/// Figure 7: throughput versus receiver-set size for constant (identical,
/// independent) loss and for the stratified loss distribution.
pub fn fig07_scaling(runner: &SweepRunner, scale: Scale) -> Figure {
    let ns: Vec<usize> = scale.pick(
        vec![1, 10, 100, 1000],
        vec![1, 3, 10, 30, 100, 300, 1000, 3000, 10_000],
    );
    // Shard the Monte-Carlo trials of each receiver count into seed
    // replicas: the estimate is the mean over replicas, and each replica is
    // one sweep point, so even the largest n parallelises.
    let replicas = scale.pick(4, 8);
    let trials_per_replica = scale.pick(20, 200) / replicas;
    let mut fig = Figure::new(
        "fig07",
        "Scaling of throughput with the receiver-set size",
        "number of receivers",
        "throughput (kbit/s)",
    );

    let constant_sweep = ParamGrid::new()
        .receivers(ns.clone())
        .loss_rates(vec![LOSS_RATE])
        .replicas(replicas)
        .build("fig07/constant", 7);
    let constant = runner.run(&constant_sweep, |pt| {
        let mut rng = SmallRng::seed_from_u64(pt.seed);
        let rates = vec![pt.value.loss_rate; pt.value.receivers];
        tracked_minimum_throughput(&rates, trials_per_replica, &mut rng)
    });
    fig.push_series(Series::new(
        "constant",
        mean_per_count(&ns, replicas, &constant),
    ));

    let distrib_sweep = ParamGrid::new()
        .receivers(ns.clone())
        .replicas(replicas)
        .build("fig07/distrib", 1007);
    let distributed = runner.run(&distrib_sweep, |pt| {
        let mut rng = SmallRng::seed_from_u64(pt.seed);
        let rates = stratified_loss_rates(pt.value.receivers, &mut rng);
        tracked_minimum_throughput(&rates, trials_per_replica, &mut rng)
    });
    fig.push_series(Series::new(
        "distrib.",
        mean_per_count(&ns, replicas, &distributed),
    ));

    // Analytic (order statistics) reference for the constant case.
    let analytic_sweep = Sweep::new("fig07/analytic", 0, ns.clone());
    let analytic: Vec<(f64, f64)> = ns
        .iter()
        .zip(runner.run(&analytic_sweep, |pt| {
            scaling_throughput(*pt.value as u64, HISTORY as u32, LOSS_RATE, RTT, PACKET)
        }))
        .map(|(&n, bytes)| (n as f64, bytes_to_bits(bytes) / 1000.0))
        .collect();
    fig.push_series(Series::new("constant (analytic, sqrt model)", analytic));

    // The fluid-population extension of the stratified sweep: closed-form
    // minimum-rate estimates carry the receiver axis to 10⁶ (quick) and
    // 10⁷ (paper) — the regime the hybrid packet/fluid tier simulates.
    let extended_ns: Vec<usize> = scale.pick(
        vec![1000, 10_000, 100_000, 1_000_000],
        vec![10_000, 100_000, 1_000_000, 10_000_000],
    );
    let population_sweep = Sweep::new("fig07/population", 0, extended_ns.clone());
    let population: Vec<(f64, f64)> = extended_ns
        .iter()
        .zip(runner.run(&population_sweep, |pt| population_min_throughput(*pt.value)))
        .map(|(&n, bytes)| (n as f64, bytes_to_bits(bytes) / 1000.0))
        .collect();
    fig.push_series(Series::new("stratified (population model)", population));

    let fair = fig.series("constant").unwrap().points[0].1;
    let worst = fig.series("constant").unwrap().last_y().unwrap_or(0.0);
    let distrib_worst = fig.series("distrib.").unwrap().last_y().unwrap_or(0.0);
    let population_worst = fig
        .series("stratified (population model)")
        .unwrap()
        .last_y()
        .unwrap_or(0.0);
    fig.note(format!(
        "fair rate at n=1: {fair:.0} kbit/s; constant-loss degradation at largest n: {:.2}x; stratified distribution retains {:.0}% of the single-receiver rate (paper: ~1/6 and ~70%); population model holds {:.0} kbit/s at n=10^{:.0}",
        worst / fair.max(1e-9),
        100.0 * distrib_worst / fig.series("distrib.").unwrap().points[0].1.max(1e-9),
        population_worst,
        (*extended_ns.last().unwrap() as f64).log10()
    ));
    fig
}

/// Figure 17: loss events per RTT as a function of the loss event rate.
pub fn fig17_loss_events_per_rtt(runner: &SweepRunner, _scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "fig17",
        "Loss events per RTT",
        "loss event rate",
        "loss events / RTT",
    );
    let mut ps = Vec::new();
    let mut p = 1e-4;
    while p <= 1.0 {
        ps.push(p);
        p *= 1.15;
    }
    let sweep = Sweep::new("fig17", 17, ps.clone());
    let points: Vec<(f64, f64)> = ps
        .iter()
        .zip(runner.run(&sweep, |pt| loss_events_per_rtt(*pt.value)))
        .map(|(&p, y)| (p, y))
        .collect();
    let peak = points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
    fig.push_series(Series::new("loss events per RTT", points));
    fig.note(format!(
        "maximum {peak:.3} loss events per RTT (paper: approximately 0.13)"
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_constant_loss_degrades_and_stratified_degrades_less() {
        let fig = fig07_scaling(&SweepRunner::new(2), Scale::Quick);
        let constant = fig.series("constant").unwrap();
        let distrib = fig.series("distrib.").unwrap();
        let c_first = constant.points[0].1;
        let c_last = constant.last_y().unwrap();
        assert!(
            c_last < c_first * 0.6,
            "constant loss must degrade strongly"
        );
        let d_first = distrib.points[0].1;
        let d_last = distrib.last_y().unwrap();
        // The stratified distribution retains a much larger fraction.
        assert!(
            d_last / d_first > c_last / c_first,
            "stratified ({:.2}) should degrade less than constant ({:.2})",
            d_last / d_first,
            c_last / c_first
        );
        // Fair rate at n = 1 is in the ~300 kbit/s ballpark.
        assert!((150.0..=500.0).contains(&c_first), "fair rate {c_first}");
    }

    #[test]
    fn fig07_population_series_extends_the_axis_to_1e6() {
        let fig = fig07_scaling(&SweepRunner::new(2), Scale::Quick);
        let pop = fig.series("stratified (population model)").unwrap();
        assert_eq!(
            pop.points.last().unwrap().0,
            1_000_000.0,
            "the population-model axis must reach 10⁶ at quick scale"
        );
        // The fluid estimate degrades monotonically — larger populations push
        // the lossiest receiver's quantile toward the 10 % loss cap — but the
        // session keeps a usable rate even at 10⁶ receivers.
        for w in pop.points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "non-monotone: {:?}", pop.points);
        }
        assert!(
            pop.last_y().unwrap() > 10.0,
            "rate collapsed: {:?}",
            pop.points
        );
    }

    #[test]
    fn fig07_is_thread_count_invariant() {
        let serial = fig07_scaling(&SweepRunner::new(1), Scale::Quick);
        let parallel = fig07_scaling(&SweepRunner::new(8), Scale::Quick);
        assert_eq!(serial.to_json().render(), parallel.to_json().render());
    }

    #[test]
    fn fig17_peak_matches_paper() {
        let fig = fig17_loss_events_per_rtt(&SweepRunner::serial(), Scale::Quick);
        let peak = fig.series[0]
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(0.0, f64::max);
        assert!((0.10..=0.16).contains(&peak), "peak {peak}");
    }
}
