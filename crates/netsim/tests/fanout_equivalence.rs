//! Property test: the zero-copy shared fan-out delivers exactly the same
//! (time, agent, packet id, payload) sequences as the clone-based reference
//! path, over randomized star topologies with loss and membership churn.
//!
//! The reference path ([`FanoutMode::CloneReference`]) reproduces the seed
//! implementation send for send: per-send subscriber collect + sort, one
//! `PacketData` copy per replica, member-set clone per send, and
//! distribution trees rebuilt from scratch on every membership change.  If
//! the incremental trees, the cached subscriber lists or the shared packet
//! handles ever diverge from it, this test fails.

use std::any::Any;

use netsim::prelude::*;
use netsim::sim::Agent;
use proptest::prelude::*;

/// Payload carrying a recognizable sequence number.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Marked {
    seq: u64,
}

/// Joins `group`, records every delivery, and optionally leaves/rejoins on a
/// fixed schedule (toggling membership every `toggle_every` seconds).
struct RecordingMember {
    group: GroupId,
    toggle_every: Option<f64>,
    joined: bool,
    log: Vec<(SimTime, u64, u64, u32)>, // (time, packet id, payload seq, size)
}

impl Agent for RecordingMember {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.group);
        self.joined = true;
        if let Some(t) = self.toggle_every {
            ctx.schedule(t, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.joined {
            ctx.leave_group(self.group);
        } else {
            ctx.join_group(self.group);
        }
        self.joined = !self.joined;
        if let Some(t) = self.toggle_every {
            ctx.schedule(t, 0);
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let seq = packet
            .payload
            .downcast_ref::<Marked>()
            .map(|m| m.seq)
            .unwrap_or(u64::MAX);
        self.log.push((ctx.now(), packet.id, seq, packet.size));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Multicast source sending `count` marked packets at a fixed interval.
struct MarkedSource {
    dst: Dest,
    count: u64,
    interval: f64,
    sent: u64,
}

impl Agent for MarkedSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        if self.count > 0 {
            ctx.schedule(0.01, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        let pkt = Packet::new(
            ctx.addr(),
            self.dst,
            400 + (self.sent % 3) as u32 * 300,
            FlowId(1),
            Payload::new(Marked { seq: self.sent }),
        );
        ctx.send(pkt);
        self.sent += 1;
        if self.sent < self.count {
            ctx.schedule(self.interval, 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One delivery record: (time, packet id, payload seq, size).
type DeliveryLog = Vec<(SimTime, u64, u64, u32)>;

/// Runs the randomized scenario in the given mode and returns, per receiver,
/// the full delivery log plus the aggregate link statistics.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    mode: FanoutMode,
    seed: u64,
    receivers: usize,
    churners: usize,
    loss_percent: u64,
    queue_len: usize,
    packet_count: u64,
    toggle_every_ms: u64,
) -> (Vec<DeliveryLog>, u64, u64) {
    let mut sim = Simulator::new(seed);
    sim.set_fanout_mode(mode);
    let legs: Vec<StarLeg> = (0..receivers)
        .map(|i| {
            let mut leg = StarLeg::clean(
                50_000.0 + 10_000.0 * (i % 4) as f64,
                0.005 + 0.002 * (i % 3) as f64,
            )
            .with_queue(QueueDiscipline::drop_tail(queue_len));
            if i % 2 == 0 && loss_percent > 0 {
                leg = leg.with_downstream_loss(loss_percent as f64 / 100.0);
            }
            leg
        })
        .collect();
    let star = star(&mut sim, &StarConfig::default(), &legs);
    let group = GroupId(3);
    let mut ids = Vec::new();
    for (i, &node) in star.receivers.iter().enumerate() {
        let toggle_every = if i < churners {
            Some(0.05 + toggle_every_ms as f64 / 1000.0 + 0.013 * i as f64)
        } else {
            None
        };
        ids.push(sim.add_agent(
            node,
            Port(7),
            Box::new(RecordingMember {
                group,
                toggle_every,
                joined: false,
                log: Vec::new(),
            }),
        ));
    }
    sim.add_agent(
        star.sender,
        Port(7),
        Box::new(MarkedSource {
            dst: Dest::Multicast {
                group,
                port: Port(7),
            },
            count: packet_count,
            interval: 0.02,
            sent: 0,
        }),
    );
    sim.run_until(SimTime::from_secs(5.0));
    let logs = ids
        .iter()
        .map(|&id| sim.agent::<RecordingMember>(id).unwrap().log.clone())
        .collect();
    let mut delivered = 0;
    let mut dropped = 0;
    for l in 0..receivers {
        let stats = sim.link_stats(star.downstream_links[l]);
        delivered += stats.delivered;
        dropped += stats.dropped_loss + stats.dropped_queue;
    }
    (logs, delivered, dropped)
}

proptest! {
    #[test]
    fn shared_and_clone_fanout_deliver_identical_sequences(
        seed in 0u64..1_000_000,
        receivers in 1usize..14,
        churn_fraction in 0usize..=2,
        loss_percent in 0u64..30,
        queue_len in 2usize..20,
        packet_count in 1u64..60,
        toggle_every_ms in 0u64..400,
    ) {
        let churners = receivers * churn_fraction / 2;
        let shared = run_scenario(
            FanoutMode::Shared,
            seed, receivers, churners, loss_percent, queue_len, packet_count, toggle_every_ms,
        );
        let clone = run_scenario(
            FanoutMode::CloneReference,
            seed, receivers, churners, loss_percent, queue_len, packet_count, toggle_every_ms,
        );
        prop_assert_eq!(&shared.0, &clone.0,
            "delivery sequences diverged between shared and clone-based fan-out");
        prop_assert_eq!(shared.1, clone.1, "delivered link counts diverged");
        prop_assert_eq!(shared.2, clone.2, "drop counts diverged");
    }
}
