//! Receive-rate measurement.
//!
//! Receivers report the rate at which data is arriving; the sender uses the
//! minimum over the group during slowstart (target = 2 × min receive rate,
//! paper Section 2.6) and the receiver uses it to initialise the loss history
//! at the first loss event (Appendix B).

use std::collections::VecDeque;
use std::hash::Hasher;

use crate::step::{hash_f64, StateFingerprint};

/// Sliding-window receive-rate meter.
///
/// Samples live in a ring buffer ([`VecDeque`]) that is recycled in place:
/// arrivals push at the tail while [`ReceiveRateMeter::record`] expires
/// aged-out samples from the head, so the ring's capacity settles at the
/// peak window occupancy and the per-packet path stops allocating entirely
/// (the receiver allocation-count test pins this).
#[derive(Debug, Clone)]
pub struct ReceiveRateMeter {
    window: f64,
    samples: VecDeque<(f64, u32)>,
    bytes_in_window: u64,
}

/// Initial ring capacity; covers a couple of RTTs of data at typical
/// simulated rates before the ring ever has to grow.
const INITIAL_SAMPLE_CAPACITY: usize = 64;

impl ReceiveRateMeter {
    /// Creates a meter averaging over `window` seconds.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        ReceiveRateMeter {
            window,
            samples: VecDeque::with_capacity(INITIAL_SAMPLE_CAPACITY),
            bytes_in_window: 0,
        }
    }

    /// Changes the averaging window (e.g. once the RTT is known).
    pub fn set_window(&mut self, window: f64) {
        assert!(window > 0.0, "window must be positive");
        self.window = window;
    }

    /// Records the arrival of `bytes` at time `now`.
    pub fn record(&mut self, now: f64, bytes: u32) {
        self.samples.push_back((now, bytes));
        self.bytes_in_window += u64::from(bytes);
        self.expire(now);
    }

    fn expire(&mut self, now: f64) {
        while let Some(&(t, b)) = self.samples.front() {
            if now - t > self.window {
                self.samples.pop_front();
                self.bytes_in_window -= u64::from(b);
            } else {
                break;
            }
        }
    }

    /// Receive rate in bytes/second over the window ending at `now`.
    ///
    /// Before a full window of data has been observed the rate is computed
    /// over the span actually covered, so early estimates are meaningful
    /// rather than biased low.
    pub fn rate(&mut self, now: f64) -> f64 {
        self.expire(now);
        let Some(&(first, _)) = self.samples.front() else {
            return 0.0;
        };
        // Use the observed span when it is shorter than the window, with a
        // small floor so a burst of back-to-back packets does not read as an
        // absurdly high rate.
        let floor = self.window.min(0.05);
        let span = (now - first).clamp(floor, self.window);
        self.bytes_in_window as f64 / span
    }

    /// Total bytes currently inside the window.
    pub fn bytes_in_window(&self) -> u64 {
        self.bytes_in_window
    }
}

impl StateFingerprint for ReceiveRateMeter {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        hash_f64(h, self.window);
        h.write_usize(self.samples.len());
        for &(t, b) in &self.samples {
            hash_f64(h, t);
            h.write_u32(b);
        }
        h.write_u64(self.bytes_in_window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_measures_its_rate() {
        let mut m = ReceiveRateMeter::new(1.0);
        // 100 packets of 1000 B over 1 second = 100 kB/s.
        for i in 0..200 {
            m.record(i as f64 * 0.01, 1000);
        }
        let r = m.rate(2.0);
        assert!((90_000.0..=110_000.0).contains(&r), "rate {r}");
    }

    #[test]
    fn rate_drops_when_stream_stops() {
        let mut m = ReceiveRateMeter::new(0.5);
        for i in 0..50 {
            m.record(i as f64 * 0.01, 1000);
        }
        assert!(m.rate(0.5) > 50_000.0);
        // Much later the window is empty.
        assert_eq!(m.rate(10.0), 0.0);
        assert_eq!(m.bytes_in_window(), 0);
    }

    #[test]
    fn early_estimate_uses_observed_span() {
        let mut m = ReceiveRateMeter::new(2.0);
        m.record(0.0, 1000);
        m.record(0.1, 1000);
        let r = m.rate(0.1);
        // 2000 bytes over ~0.1 s ≈ 20 kB/s, not 2000/2.0 = 1 kB/s.
        assert!(r > 10_000.0, "rate {r}");
    }

    #[test]
    fn window_can_be_adjusted() {
        let mut m = ReceiveRateMeter::new(10.0);
        for i in 0..100 {
            m.record(i as f64 * 0.1, 1000);
        }
        m.set_window(1.0);
        let r = m.rate(10.0);
        assert!((8_000.0..=12_000.0).contains(&r), "rate {r}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = ReceiveRateMeter::new(0.0);
    }
}
