//! Greedy TCP Reno sender.

use std::any::Any;
use std::collections::BTreeMap;

use netsim::packet::{Address, Dest, FlowId, Packet, Payload};
use netsim::sim::{Agent, Context};
use netsim::stats::ThroughputMeter;

use crate::segment::TcpSegment;

/// Timer token used for the retransmission timer; the value encodes an epoch
/// so that stale timers can be recognised.
const RTO_TOKEN_BASE: u64 = 1 << 32;
/// Timer token used to delay the start of the flow.
const START_TOKEN: u64 = 1;

/// Configuration of a [`TcpSender`].
#[derive(Debug, Clone)]
pub struct TcpSenderConfig {
    /// Destination sink address.
    pub dst: Address,
    /// Flow id for statistics.
    pub flow: FlowId,
    /// Segment size in bytes.
    pub packet_size: u32,
    /// Time at which the flow starts sending.
    pub start_at: f64,
    /// Initial slow-start threshold in packets.
    pub initial_ssthresh: f64,
    /// Maximum congestion window in packets (receiver window).
    pub max_cwnd: f64,
    /// Minimum retransmission timeout in seconds.
    pub min_rto: f64,
}

impl TcpSenderConfig {
    /// A sender with common defaults: 1000-byte segments, essentially
    /// unlimited window, 200 ms minimum RTO.
    pub fn new(dst: Address, flow: FlowId) -> Self {
        TcpSenderConfig {
            dst,
            flow,
            packet_size: 1000,
            start_at: 0.0,
            initial_ssthresh: 64.0,
            max_cwnd: 10_000.0,
            min_rto: 0.2,
        }
    }

    /// Sets the start time.
    pub fn starting_at(mut self, t: f64) -> Self {
        self.start_at = t;
        self
    }

    /// Sets the segment size.
    pub fn with_packet_size(mut self, size: u32) -> Self {
        self.packet_size = size;
        self
    }
}

/// Counters exposed by the sender.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TcpSenderStats {
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
}

/// A greedy (always backlogged) TCP Reno sender.
pub struct TcpSender {
    cfg: TcpSenderConfig,
    /// Congestion window in packets.
    cwnd: f64,
    ssthresh: f64,
    /// Lowest unacknowledged sequence number.
    snd_una: u64,
    /// Next new sequence number to send.
    snd_nxt: u64,
    dup_acks: u32,
    in_fast_recovery: bool,
    /// Send time of in-flight segments without a retransmission (for RTT
    /// sampling, Karn's rule).
    send_times: BTreeMap<u64, f64>,
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    rto_epoch: u64,
    started: bool,
    /// Bytes acknowledged, binned over time (goodput seen by the sender).
    acked_meter: ThroughputMeter,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Creates a sender.
    pub fn new(cfg: TcpSenderConfig) -> Self {
        TcpSender {
            cwnd: 2.0,
            ssthresh: cfg.initial_ssthresh,
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            in_fast_recovery: false,
            send_times: BTreeMap::new(),
            srtt: None,
            rttvar: 0.0,
            rto: 1.0,
            rto_epoch: 0,
            started: false,
            acked_meter: ThroughputMeter::new(1.0),
            stats: TcpSenderStats::default(),
            cfg,
        }
    }

    /// Current congestion window in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Counters.
    pub fn stats(&self) -> TcpSenderStats {
        self.stats
    }

    /// Throughput meter over acknowledged bytes (goodput).
    pub fn acked_meter(&self) -> &ThroughputMeter {
        &self.acked_meter
    }

    /// Current smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn send_segment(&mut self, ctx: &mut Context<'_>, seq: u64, is_retransmission: bool) {
        let now = ctx.now().as_secs();
        let seg = TcpSegment::Data {
            seq,
            timestamp: now,
        };
        let pkt = Packet::new(
            ctx.addr(),
            Dest::Unicast(self.cfg.dst),
            self.cfg.packet_size,
            self.cfg.flow,
            Payload::new(seg),
        );
        ctx.send(pkt);
        self.stats.segments_sent += 1;
        if is_retransmission {
            self.stats.retransmissions += 1;
            // Karn's rule: never sample RTT from a retransmitted segment.
            self.send_times.remove(&seq);
        } else {
            self.send_times.insert(seq, now);
        }
    }

    /// Sends as many new segments as the window allows.
    fn fill_window(&mut self, ctx: &mut Context<'_>) {
        let window = self.cwnd.min(self.cfg.max_cwnd).floor().max(1.0) as u64;
        while self.flight_size() < window {
            let seq = self.snd_nxt;
            self.snd_nxt += 1;
            self.send_segment(ctx, seq, false);
        }
    }

    fn arm_rto(&mut self, ctx: &mut Context<'_>) {
        self.rto_epoch += 1;
        ctx.schedule(self.rto, RTO_TOKEN_BASE + self.rto_epoch);
    }

    fn update_rtt(&mut self, sample: f64) {
        let sample = sample.max(1e-4);
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
        self.rto = (self.srtt.unwrap_or(sample) + 4.0 * self.rttvar).clamp(self.cfg.min_rto, 60.0);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_>, ack: u64, echo_timestamp: f64) {
        let now = ctx.now().as_secs();
        if ack > self.snd_una {
            // New data acknowledged.
            let newly_acked = ack - self.snd_una;
            self.acked_meter
                .record(ctx.now(), newly_acked * u64::from(self.cfg.packet_size));
            // RTT sample from the echoed timestamp (valid because the sink
            // echoes the timestamp of the segment that triggered the ACK and
            // retransmitted segments never carry a sampled timestamp).
            if self.send_times.contains_key(&(ack - 1)) || echo_timestamp > 0.0 {
                self.update_rtt(now - echo_timestamp);
            }
            // Drop the send-time records below the new snd_una.
            let keep = self.send_times.split_off(&ack);
            self.send_times = keep;
            self.snd_una = ack;
            // After a timeout rolled snd_nxt back, late ACKs for old in-flight
            // data can overtake it; keep the invariant snd_nxt >= snd_una.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.dup_acks = 0;
            if self.in_fast_recovery {
                // Reno: leave recovery once the retransmitted segment (and
                // everything before the recovery point) is acknowledged.
                self.in_fast_recovery = false;
                self.cwnd = self.ssthresh;
            } else if self.cwnd < self.ssthresh {
                // Slow start.
                self.cwnd = (self.cwnd + newly_acked as f64).min(self.cfg.max_cwnd);
            } else {
                // Congestion avoidance: one packet per window per RTT.
                self.cwnd = (self.cwnd + newly_acked as f64 / self.cwnd).min(self.cfg.max_cwnd);
            }
            self.arm_rto(ctx);
            self.fill_window(ctx);
        } else if ack == self.snd_una && self.flight_size() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_fast_recovery {
                // Fast retransmit / fast recovery.
                self.stats.fast_retransmits += 1;
                self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.in_fast_recovery = true;
                self.send_segment(ctx, self.snd_una, true);
                self.arm_rto(ctx);
            } else if self.in_fast_recovery {
                // Window inflation during recovery lets new data trickle out.
                self.cwnd += 1.0;
                self.fill_window(ctx);
                self.cwnd -= 1.0;
            }
        }
    }

    fn on_rto(&mut self, ctx: &mut Context<'_>) {
        if self.flight_size() == 0 {
            return;
        }
        self.stats.timeouts += 1;
        self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.in_fast_recovery = false;
        // Go-back-N at packet granularity: resend from the first hole; the
        // rest is resent as the window reopens.
        self.snd_nxt = self.snd_una + 1;
        self.send_times.clear();
        self.send_segment(ctx, self.snd_una, true);
        self.rto = (self.rto * 2.0).min(60.0);
        self.arm_rto(ctx);
    }
}

impl Agent for TcpSender {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let delay = (self.cfg.start_at - ctx.now().as_secs()).max(0.0);
        ctx.schedule(delay, START_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == START_TOKEN {
            if !self.started {
                self.started = true;
                self.fill_window(ctx);
                self.arm_rto(ctx);
            }
        } else if token == RTO_TOKEN_BASE + self.rto_epoch {
            self.on_rto(ctx);
        }
        // Stale RTO timers (superseded epochs) are ignored.
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        if !self.started {
            return;
        }
        if let Some(&TcpSegment::Ack {
            ack,
            echo_timestamp,
        }) = packet.payload.downcast_ref::<TcpSegment>()
        {
            self.on_ack(ctx, ack, echo_timestamp);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TcpSink;
    use netsim::prelude::*;
    use tfmcc_model::throughput::padhye_throughput;

    /// One TCP flow across a configurable bottleneck; returns (sink agent id,
    /// sender agent id, simulator).
    fn run_single_flow(
        bottleneck_bytes_per_sec: f64,
        delay: f64,
        queue: usize,
        loss: Option<f64>,
        duration: f64,
        seed: u64,
    ) -> (Simulator, netsim::packet::AgentId, netsim::packet::AgentId) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node("sender");
        let b = sim.add_node("receiver");
        let (forward, _) = sim.add_duplex_link(
            a,
            b,
            bottleneck_bytes_per_sec,
            delay,
            QueueDiscipline::drop_tail(queue),
        );
        if let Some(p) = loss {
            sim.set_link_loss(forward, LossModel::Bernoulli { p });
        }
        let sink = sim.add_agent(b, Port(1), Box::new(TcpSink::new(1.0)));
        let sender = sim.add_agent(
            a,
            Port(1),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(b, Port(1)),
                FlowId(1),
            ))),
        );
        sim.run_until(SimTime::from_secs(duration));
        (sim, sink, sender)
    }

    #[test]
    fn single_flow_fills_the_bottleneck() {
        // 1 Mbit/s bottleneck, 20 ms one-way delay.
        let (sim, sink, sender) = run_single_flow(125_000.0, 0.02, 30, None, 60.0, 1);
        let s: &TcpSink = sim.agent(sink).unwrap();
        let rate = s.meter().average_between(10.0, 55.0);
        assert!(
            (105_000.0..=126_000.0).contains(&rate),
            "TCP should saturate the 125 kB/s bottleneck, got {rate}"
        );
        let tx: &TcpSender = sim.agent(sender).unwrap();
        assert!(
            tx.stats().timeouts < 10,
            "excessive timeouts: {:?}",
            tx.stats()
        );
        assert!(tx.srtt().unwrap() > 0.03);
    }

    #[test]
    fn slow_start_grows_window_exponentially_at_first() {
        let (sim, _, sender) = run_single_flow(1_250_000.0, 0.05, 200, None, 1.0, 2);
        let tx: &TcpSender = sim.agent(sender).unwrap();
        // After ~9 RTTs of uncongested slow start the window should be large.
        assert!(tx.cwnd() > 16.0, "cwnd after slow start: {}", tx.cwnd());
    }

    #[test]
    fn random_loss_reduces_throughput_roughly_per_model() {
        let p = 0.02;
        let (sim, sink, sender) = run_single_flow(12_500_000.0, 0.04, 1000, Some(p), 120.0, 3);
        let s: &TcpSink = sim.agent(sink).unwrap();
        let rate = s.meter().average_between(20.0, 110.0);
        // RTT ≈ 80 ms (uncongested), packet 1000 B.
        let model = padhye_throughput(1000.0, 0.08, p);
        assert!(
            rate < 0.35 * 12_500_000.0,
            "2% loss must keep TCP far below the 100 Mbit/s link: {rate}"
        );
        let ratio = rate / model;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "throughput {rate} should be within 3x of the Padhye model {model}"
        );
        let tx: &TcpSender = sim.agent(sender).unwrap();
        assert!(tx.stats().fast_retransmits > 0);
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_fairly() {
        let mut sim = Simulator::new(4);
        let cfg = DumbbellConfig {
            pairs: 2,
            bottleneck_bandwidth: 250_000.0,
            bottleneck_delay: 0.02,
            bottleneck_queue: QueueDiscipline::drop_tail(40),
            ..DumbbellConfig::default()
        };
        let d = netsim::topology::dumbbell(&mut sim, &cfg);
        let mut sinks = Vec::new();
        for i in 0..2 {
            let sink = sim.add_agent(d.receivers[i], Port(1), Box::new(TcpSink::new(1.0)));
            sim.add_agent(
                d.senders[i],
                Port(1),
                Box::new(TcpSender::new(TcpSenderConfig::new(
                    Address::new(d.receivers[i], Port(1)),
                    FlowId(i as u64),
                ))),
            );
            sinks.push(sink);
        }
        sim.run_until(SimTime::from_secs(120.0));
        let r0 = sim
            .agent::<TcpSink>(sinks[0])
            .unwrap()
            .meter()
            .average_between(20.0, 110.0);
        let r1 = sim
            .agent::<TcpSink>(sinks[1])
            .unwrap()
            .meter()
            .average_between(20.0, 110.0);
        let total = r0 + r1;
        assert!(
            (200_000.0..=260_000.0).contains(&total),
            "two flows should fill the 250 kB/s bottleneck: {total}"
        );
        let fairness = r0.min(r1) / r0.max(r1);
        assert!(
            fairness > 0.4,
            "long-term shares should be in the same ballpark: {r0} vs {r1}"
        );
    }

    #[test]
    fn sender_recovers_after_total_blackout_via_timeout() {
        // A queue of 1 packet and a tiny link force drops of whole windows,
        // exercising the RTO path.
        let (sim, sink, sender) = run_single_flow(12_500.0, 0.05, 1, None, 60.0, 5);
        let tx: &TcpSender = sim.agent(sender).unwrap();
        let s: &TcpSink = sim.agent(sink).unwrap();
        assert!(tx.stats().timeouts + tx.stats().fast_retransmits > 0);
        // Despite the hostile path, data keeps flowing.
        assert!(s.packets() > 100, "only {} packets delivered", s.packets());
    }

    #[test]
    fn delayed_start_honoured() {
        let mut sim = Simulator::new(6);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_duplex_link(a, b, 125_000.0, 0.01, QueueDiscipline::drop_tail(50));
        let sink = sim.add_agent(b, Port(1), Box::new(TcpSink::new(1.0)));
        sim.add_agent(
            a,
            Port(1),
            Box::new(TcpSender::new(
                TcpSenderConfig::new(Address::new(b, Port(1)), FlowId(1)).starting_at(5.0),
            )),
        );
        sim.run_until(SimTime::from_secs(10.0));
        let s: &TcpSink = sim.agent(sink).unwrap();
        assert_eq!(s.meter().average_between(0.0, 4.0), 0.0);
        assert!(s.meter().average_between(6.0, 9.0) > 50_000.0);
    }
}
