//! Machine-readable JSON report, hand-rolled (the linter is std-only) and
//! deterministic: findings are emitted in `(path, line, column, rule)` order
//! so two runs over the same tree produce byte-identical reports — the
//! linter holds itself to the contract it enforces.

use crate::rules::Finding;

/// Scan-wide counters reported alongside the findings.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    /// `.rs` files lexed and checked.
    pub files_scanned: usize,
    /// Findings suppressed by a well-formed, reasoned pragma.
    pub suppressed: usize,
}

/// Renders the report as a JSON document.
pub fn to_json(findings: &[Finding], summary: Summary) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"tool\": \"tfmcc-lint\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"finding_count\": {},\n",
        summary.files_scanned,
        summary.suppressed,
        findings.len()
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"rule\": {}, \"path\": {}, \"line\": {}, \"column\": {}, \"message\": {}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            f.column,
            escape(&f.message)
        ));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_valid_shape_and_escaped() {
        let findings = vec![Finding {
            rule: "D001",
            path: "crates/netsim/src/sim.rs".to_string(),
            line: 3,
            column: 7,
            message: "a \"quoted\" message\nwith a newline".to_string(),
        }];
        let json = to_json(
            &findings,
            Summary {
                files_scanned: 12,
                suppressed: 1,
            },
        );
        assert!(json.contains("\"files_scanned\": 12"));
        assert!(json.contains("\"suppressed\": 1"));
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(!json.contains('\u{0}'));
    }

    #[test]
    fn empty_report_has_empty_array() {
        let json = to_json(&[], Summary::default());
        assert!(json.contains("\"findings\": []"));
    }
}
