//! Micro-benchmarks of the TFMCC protocol hot paths: the control equation,
//! loss-history updates, feedback timer draws and receiver data processing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tfmcc_model::throughput::{padhye_loss_rate, padhye_throughput};
use tfmcc_proto::prelude::*;

fn bench_control_equation(c: &mut Criterion) {
    c.bench_function("padhye_throughput", |b| {
        b.iter(|| padhye_throughput(black_box(1000.0), black_box(0.1), black_box(0.02)))
    });
    c.bench_function("padhye_loss_rate_inverse", |b| {
        b.iter(|| padhye_loss_rate(black_box(1000.0), black_box(0.1), black_box(100_000.0)))
    });
}

fn bench_loss_history(c: &mut Criterion) {
    c.bench_function("loss_history_update_per_packet", |b| {
        let config = TfmccConfig::default();
        let mut history = LossHistory::new(&config);
        let mut seq = 0u64;
        let mut now = 0.0;
        b.iter(|| {
            // Drop every 100th packet.
            if seq % 100 == 99 {
                seq += 1;
            }
            let update = history.on_packet(seq, now, 0.05);
            seq += 1;
            now += 0.001;
            black_box(update)
        })
    });
}

fn bench_feedback_timer(c: &mut Criterion) {
    c.bench_function("feedback_timer_draw", |b| {
        let planner = FeedbackPlanner::from_config(&TfmccConfig::default());
        let mut x = 0.0_f64;
        b.iter(|| {
            x = (x + 0.001) % 1.0;
            black_box(planner.timer(black_box(x), black_box(3.0), black_box(0.5 + x / 3.0)))
        })
    });
}

fn bench_receiver_on_data(c: &mut Criterion) {
    c.bench_function("receiver_on_data", |b| {
        let config = TfmccConfig::default();
        let mut receiver = TfmccReceiver::new(ReceiverId(1), config);
        let mut seq = 0u64;
        let mut now = 0.0;
        b.iter(|| {
            let data = DataPacket {
                seqno: seq,
                timestamp: now,
                current_rate: 200_000.0,
                max_rtt: 0.2,
                feedback_round: seq / 100,
                slowstart: false,
                clr: None,
                rtt_echo: None,
                suppression: None,
                size: 1000,
            };
            seq += 1;
            now += 0.005;
            black_box(receiver.on_data(now, &data))
        })
    });
}

criterion_group!(
    benches,
    bench_control_equation,
    bench_loss_history,
    bench_feedback_timer,
    bench_receiver_on_data
);
criterion_main!(benches);
