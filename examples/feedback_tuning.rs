//! Explore the feedback-suppression design space (paper Section 2.5).
//!
//! For a range of receiver-set sizes this example compares the number of
//! responses per feedback round, the response delay and the quality of the
//! reported rate for the three timer-biasing methods and the three
//! cancellation strategies — the trade-off TFMCC resolves with the modified
//! offset bias and α = 0.1.
//!
//! Run with `cargo run --release --example feedback_tuning`.

use tfmcc::feedback::round::{
    mean_first_response, mean_quality_absolute, mean_responses, FeedbackRound,
};
use tfmcc::feedback::{BiasMethod, FeedbackPlanner};
use tfmcc::proto::config::TfmccConfig;

fn main() {
    let window = 6.0; // T = 6 network delays (TFMCC default)
    let delay = 1.0;
    let runs = 20;

    println!("== biasing methods (cancellation: on any feedback) ==");
    println!("n,method,responses,first_response_rtt,quality");
    for &n in &[10usize, 100, 1000, 10_000] {
        for method in [
            BiasMethod::Unbiased,
            BiasMethod::BasicOffset,
            BiasMethod::ModifiedOffset,
        ] {
            let mut planner = FeedbackPlanner::from_config(&TfmccConfig::default());
            planner.method = method;
            planner.cancel_alpha = 1.0;
            let round = FeedbackRound::new(planner, window, delay);
            let outcomes = round.simulate_uniform(n, runs, 3);
            println!(
                "{n},{method:?},{:.1},{:.2},{:.3}",
                mean_responses(&outcomes),
                mean_first_response(&outcomes),
                mean_quality_absolute(&outcomes),
            );
        }
    }

    println!("\n== cancellation strategies (modified offset bias) ==");
    println!("n,alpha,responses,quality");
    for &n in &[100usize, 1000, 10_000] {
        for alpha in [0.0, 0.1, 1.0] {
            let mut planner = FeedbackPlanner::from_config(&TfmccConfig::default());
            planner.cancel_alpha = alpha;
            let round = FeedbackRound::new(planner, window, delay);
            let outcomes = round.simulate_uniform_range(n, runs, 0.0, 0.2, 9);
            println!(
                "{n},{alpha},{:.1},{:.3}",
                mean_responses(&outcomes),
                mean_quality_absolute(&outcomes),
            );
        }
    }

    println!(
        "\nTFMCC's choice — modified offset bias with alpha = 0.1 — keeps the response count nearly \
         constant in n while reporting a rate within a few percent of the true minimum."
    );
}
