//! TFMCC — TCP-Friendly Multicast Congestion Control (sans-I/O protocol core).
//!
//! This crate implements the protocol described in Widmer & Handley,
//! *Extending Equation-based Congestion Control to Multicast Applications*
//! (SIGCOMM 2001): a single-rate, equation-based multicast congestion control
//! scheme that extends unicast TFRC to multicast groups of thousands of
//! receivers.
//!
//! The implementation is **sans-I/O**: [`sender::TfmccSender`] and
//! [`receiver::TfmccReceiver`] are pure state machines that consume packets
//! and clock readings and produce packets and timer deadlines.  Adapters bind
//! them to an environment:
//!
//! * `tfmcc-agents` runs them inside the `netsim` discrete-event simulator
//!   (the configuration used for all paper experiments);
//! * `tfmcc-transport` runs them over real UDP sockets.
//!
//! # Protocol overview
//!
//! * Each **receiver** measures its loss event rate ([`loss::LossHistory`])
//!   and RTT ([`rtt::RttEstimator`]) and evaluates the TCP throughput
//!   equation to obtain the rate a TCP flow would achieve on its path.
//! * Receivers report this rate to the sender, using biased exponentially
//!   distributed random timers ([`feedback::FeedbackPlanner`]) so that the
//!   most limited receivers answer first and a feedback implosion is
//!   impossible.
//! * The **sender** tracks the *current limiting receiver* (CLR) and adjusts
//!   its sending rate to the CLR's calculated rate — decreases immediately,
//!   increases limited to one packet per RTT ([`sender::TfmccSender`]).
//! * A slowstart phase doubles the rate up to twice the minimum receive rate
//!   until the first loss is reported.
//!
//! # Example
//!
//! ```
//! use tfmcc_proto::prelude::*;
//!
//! let config = TfmccConfig::default();
//! let mut sender = TfmccSender::new(config.clone());
//! let mut receiver = TfmccReceiver::new(ReceiverId(1), config);
//!
//! // One data packet travels sender -> receiver (50 ms one-way delay).
//! let data = sender.next_data(0.0);
//! let feedback = receiver.on_data(0.05, &data);
//! // Slowstart: the receiver schedules a biased feedback timer.
//! assert!(feedback.is_some() || receiver.next_timer().is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregator;
pub mod config;
pub mod feedback;
pub mod loss;
pub mod packets;
pub mod rate_meter;
pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod step;

/// Commonly used types.
pub mod prelude {
    pub use crate::aggregator::{AggregatorKind, FeedbackAggregator};
    pub use crate::config::TfmccConfig;
    pub use crate::feedback::{BiasMethod, FeedbackPlanner};
    pub use crate::loss::LossHistory;
    pub use crate::packets::{DataPacket, FeedbackPacket, ReceiverId, RttEcho, SuppressionEcho};
    pub use crate::rate_meter::ReceiveRateMeter;
    pub use crate::receiver::{ReceiverStats, TfmccReceiver};
    pub use crate::rtt::RttEstimator;
    pub use crate::sender::{SenderStats, TfmccSender};
    pub use crate::step::{ReceiverStep, SenderStep, StateFingerprint};
}
