//! The event-queue core of the simulator: the [`EventQueue`] abstraction and
//! its two implementations, a binary heap ([`HeapQueue`]) and a calendar
//! queue ([`CalendarQueue`]).
//!
//! # The scheduler contract
//!
//! A queue stores `(time, seq, item)` entries, where `seq` is a caller-owned
//! sequence number, unique among live entries (the simulator assigns one per
//! scheduled event).  [`EventQueue::pop`] must return entries in ascending
//! `(time, seq)` order — time first, `seq` within a time.  Entries may be
//! scheduled at times *behind* the last popped entry's time: the
//! domain-sharded runtime replays cross-domain handoffs and deferred
//! cut-link events with their original timestamps, which lie behind the
//! shard's clock at the window boundary.  A late insert simply pops next (in
//! `(time, seq)` order among the remaining entries); it cannot, of course,
//! retroactively order before entries that were already popped.  Both
//! implementations honour all of this exactly, so swapping one for the other
//! reproduces every simulation bit for bit (the `scheduler_equivalence`
//! property test and the golden figure outputs pin this).
//!
//! # Cancellation
//!
//! Entries are cancelled by their `(time, seq)` key via
//! [`EventQueue::cancel`].  The caller (the simulator's timer table) only
//! cancels entries it knows are still queued, which is what lets both
//! implementations keep cancellation state bounded:
//!
//! * [`HeapQueue`] records the `seq` in a tombstone set and silently drains
//!   tombstoned entries when they surface at the top of the heap — the set
//!   never holds more than the number of cancelled entries still queued;
//! * [`CalendarQueue`] removes the entry from its bucket immediately
//!   (an O(bucket-length) splice, O(1) at the maintained load factor), so it
//!   needs no tombstones at all.
//!
//! A cancelled entry is never returned from `pop` and is not counted by
//! [`EventQueue::len`] in either implementation.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::time::SimTime;

/// How the simulator's event queue is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The binary-heap scheduler (the fallback, `TFMCC_SCHEDULER=heap`):
    /// `O(log n)` push/pop on a `BinaryHeap`, cancellation via tombstones
    /// drained on pop.
    Heap,
    /// The calendar-queue scheduler (the default): amortized `O(1)` push/pop
    /// on a bucketed rotating wheel that resizes itself on load-factor
    /// drift, cancellation by in-place bucket removal.
    #[default]
    Calendar,
}

impl SchedulerKind {
    /// Reads the `TFMCC_SCHEDULER` environment override (`heap` /
    /// `binary-heap` or `calendar`, case-insensitive).  Returns `None` when
    /// unset; unknown values warn on stderr and are ignored so a typo cannot
    /// silently select a different scheduler.
    pub fn from_env() -> Option<Self> {
        let value = std::env::var("TFMCC_SCHEDULER").ok()?;
        match value.to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binary_heap" => Some(SchedulerKind::Heap),
            "calendar" => Some(SchedulerKind::Calendar),
            other => {
                eprintln!(
                    "warning: ignoring unknown TFMCC_SCHEDULER value '{other}' (use 'heap' or 'calendar')"
                );
                None
            }
        }
    }

    /// Resolves the scheduler for a new simulation: the `TFMCC_SCHEDULER`
    /// environment override when set, otherwise the built-in default
    /// ([`SchedulerKind::Calendar`]).
    pub fn resolve() -> Self {
        Self::from_env().unwrap_or_default()
    }

    /// Builds an empty event queue of this kind.
    pub fn build<T: Send + 'static>(self) -> Box<dyn EventQueue<T>> {
        match self {
            SchedulerKind::Heap => Box::new(HeapQueue::new()),
            SchedulerKind::Calendar => Box::new(CalendarQueue::new()),
        }
    }
}

/// A priority queue of timestamped events, popped in `(time, seq)` order.
///
/// See the [module documentation](self) for the ordering and cancellation
/// contract shared by all implementations.
pub trait EventQueue<T>: Send {
    /// Enqueues `item` at `time`.  `seq` must be unique among live entries;
    /// `time` may lie behind the last popped entry's time (a late insert
    /// pops next, see the [module documentation](self)).
    fn schedule(&mut self, time: SimTime, seq: u64, item: T);

    /// Removes and returns the entry with the smallest `(time, seq)`.
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;

    /// The time of the entry [`Self::pop`] would return, without removing
    /// it.  Takes `&mut self` so implementations may drain cancelled entries
    /// or rotate their internal cursor while looking.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Cancels the queued entry with exactly this `(time, seq)` key.  The
    /// caller must only cancel keys it has scheduled and not yet popped or
    /// cancelled; the entry will never be returned from [`Self::pop`].
    fn cancel(&mut self, time: SimTime, seq: u64);

    /// Number of live (scheduled, not yet popped or cancelled) entries.
    fn len(&self) -> usize;

    /// True when no live entries remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cancelled-but-still-stored entries (tombstones).  Zero for
    /// implementations that remove cancelled entries in place.
    fn tombstones(&self) -> usize {
        0
    }
}

/// One queued entry.
#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The binary-heap event queue.
///
/// # Determinism
///
/// `BinaryHeap` is not a stable heap, but entries are ordered by the full
/// `(time, seq)` key and `seq` is unique, so the pop order is total and
/// deterministic: ascending time, insertion order within a time.  This is
/// the reference ordering the calendar queue must (and does) reproduce.
///
/// # Example: schedule/cancel round-trip
///
/// ```
/// use netsim::events::{EventQueue, HeapQueue};
/// use netsim::time::SimTime;
///
/// let mut q = HeapQueue::new();
/// q.schedule(SimTime::from_secs(0.3), 0, "late");
/// q.schedule(SimTime::from_secs(0.1), 1, "early");
/// q.schedule(SimTime::from_secs(0.2), 2, "cancelled");
/// q.cancel(SimTime::from_secs(0.2), 2);
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop().map(|(_, _, item)| item), Some("early"));
/// assert_eq!(q.pop().map(|(_, _, item)| item), Some("late"));
/// assert_eq!(q.pop(), None);
/// assert_eq!(q.tombstones(), 0); // drained when the entry surfaced
/// ```
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    /// `seq`s of cancelled entries still inside the heap; drained as the
    /// entries surface at the top (in `pop`/`peek_time`), so the set stays
    /// bounded by the number of cancelled entries still queued.
    tombstones: BTreeSet<u64>,
}

impl<T> HeapQueue<T> {
    /// Creates an empty heap queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(1024),
            tombstones: BTreeSet::new(),
        }
    }

    /// Drops cancelled entries sitting at the top of the heap.
    fn drain_tombstones(&mut self) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if self.tombstones.remove(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> EventQueue<T> for HeapQueue<T> {
    fn schedule(&mut self, time: SimTime, seq: u64, item: T) {
        self.heap.push(Reverse(Entry { time, seq, item }));
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.drain_tombstones();
        let Reverse(entry) = self.heap.pop()?;
        Some((entry.time, entry.seq, entry.item))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.drain_tombstones();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    fn cancel(&mut self, _time: SimTime, seq: u64) {
        self.tombstones.insert(seq);
    }

    fn len(&self) -> usize {
        self.heap.len() - self.tombstones.len()
    }

    fn tombstones(&self) -> usize {
        self.tombstones.len()
    }
}

/// Minimum (and initial) bucket count of the calendar queue.
const MIN_BUCKETS: usize = 16;
/// Maximum bucket count (a resize never grows past this).
const MAX_BUCKETS: usize = 1 << 20;
/// Bucket width floor, so degenerate spreads cannot produce a zero width.
const MIN_WIDTH: f64 = 1e-9;
/// Pops per cost-observation window.  At each window boundary the queue
/// checks whether the wheel is actually hurting (long in-bucket splices =
/// width too wide for the local event density; long empty-bucket scans =
/// width too narrow) and only then rebuckets — estimate-driven resizing
/// would thrash on bursty gap patterns whose window averages swing wildly
/// while the wheel is performing fine.
const COST_WINDOW: u64 = 1024;
/// Rebucket when the average in-bucket splice distance per insert exceeds
/// this over a window.
const MAX_AVG_SPLICE: u64 = 4;
/// Rebucket when the average empty-bucket scan steps per pop exceed this
/// over a window.
const MAX_AVG_SCAN: u64 = 8;

/// The calendar event queue (R. Brown, CACM 1988): a rotating wheel of
/// `nbuckets` time buckets of `width` seconds each.  An entry at time `t`
/// lives in bucket `floor(t / width) mod nbuckets`; a pop scans from the
/// current bucket for an entry whose own "year" (absolute bucket number)
/// has been reached, falling back to a direct minimum search when the
/// queue is sparse.  Push, pop and
/// cancel are all amortized O(1) at the maintained load factor, versus the
/// heap's O(log n) — the difference the `event_core_microbench` measures at
/// 10⁵ queued events.
///
/// # Determinism
///
/// Pop order is exactly ascending `(time, seq)`, identical to [`HeapQueue`]:
///
/// * buckets are kept sorted by `(time, seq)` (binary-search insertion), so
///   within a bucket-year entries leave in heap order — FIFO by `seq` within
///   a timestamp;
/// * the rotation only yields an entry when its time falls inside the
///   current bucket's year window, so no later bucket can hold an earlier
///   entry (given the no-past-scheduling invariant);
/// * resizing is triggered purely by deterministic operation counters
///   (entry counts, windowed splice/scan costs), so identical
///   schedule/pop/cancel sequences resize identically.
///
/// The `scheduler_equivalence` property test drives both implementations
/// over random churning topologies and asserts identical delivery sequences.
///
/// # Example: schedule/cancel round-trip
///
/// ```
/// use netsim::events::{CalendarQueue, EventQueue};
/// use netsim::time::SimTime;
///
/// let mut q = CalendarQueue::new();
/// for seq in 0..100u64 {
///     q.schedule(SimTime::from_secs(seq as f64 * 0.25), seq, seq);
/// }
/// q.cancel(SimTime::from_secs(0.25), 1); // removed in place, no tombstone
/// assert_eq!(q.len(), 99);
/// assert_eq!(q.tombstones(), 0);
/// assert_eq!(q.pop().map(|(_, seq, _)| seq), Some(0));
/// assert_eq!(q.pop().map(|(_, seq, _)| seq), Some(2));
/// ```
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// The wheel.  Each bucket is sorted ascending by `(time, seq)`.
    buckets: Vec<VecDeque<Entry<T>>>,
    /// Seconds of simulated time covered by one bucket.
    width: f64,
    /// Cached `1.0 / width`; the bucket mapping multiplies by this instead
    /// of dividing (see [`Self::abs_bucket`]).
    inv_width: f64,
    /// Live entry count across all buckets.
    count: usize,
    /// Absolute index (`floor(time / width)`) of the bucket the rotation is
    /// currently serving; `cur_abs % nbuckets` is the wheel position and
    /// `(cur_abs + 1) * width` the bucket's year boundary.
    cur_abs: u64,
    /// Set after a resize (or at construction): the rotation position is
    /// stale and the next pop must re-locate the global minimum directly.
    needs_reposition: bool,
    /// Sum of the time gaps between successive pops since the last
    /// rebucketing; `width` is re-derived from this (Brown's estimator: a
    /// bucket should span a few average inter-dequeue gaps).  Accumulated
    /// over the whole inter-rebucket span so bursty workloads average out.
    pop_gap_sum: f64,
    /// Pops since the last rebucketing (the gap estimator's denominator).
    gap_pops: u64,
    /// Time of the most recent pop (the gap estimator's reference point).
    last_pop_time: Option<f64>,
    /// Pops in the current cost window.
    win_pops: u64,
    /// Empty-bucket rotation steps in the current cost window.
    win_scan_steps: u64,
    /// Summed in-bucket splice distances in the current cost window.
    win_insert_cost: u64,
    /// Inserts in the current cost window.
    win_inserts: u64,
    /// Pops since the last rebucketing, for the rebucket cooldown (a
    /// rebucketing is O(count), so one is allowed per ~count/2 pops at
    /// most, bounding the amortized cost).
    pops_since_rebucket: u64,
    /// Full rebucketings performed (diagnostics).
    pub rebuckets: u64,
}

impl<T> CalendarQueue<T> {
    /// Creates an empty calendar queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            width: 0.01,
            inv_width: 100.0,
            count: 0,
            cur_abs: 0,
            needs_reposition: true,
            pop_gap_sum: 0.0,
            gap_pops: 0,
            last_pop_time: None,
            win_pops: 0,
            win_scan_steps: 0,
            win_insert_cost: 0,
            win_inserts: 0,
            pops_since_rebucket: 0,
            rebuckets: 0,
        }
    }

    /// Current bucket count (for tests and diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in simulated seconds (for tests and
    /// diagnostics).
    pub fn bucket_width(&self) -> f64 {
        self.width
    }

    /// Length of the fullest bucket (for tests and diagnostics).
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    fn bucket_index(&self, time: SimTime) -> usize {
        // The wheel size is always a power of two (see `bucket_target`).
        (self.abs_bucket(time) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// The absolute (non-wrapped) bucket number of `time`.  This is the one
    /// pure function defining where an entry lives and when its year
    /// arrives; every consumer (insert, cancel, rotation) goes through it,
    /// so float rounding at bucket boundaries cannot produce disagreement.
    fn abs_bucket(&self, time: SimTime) -> u64 {
        // `as u64` truncates toward zero, which is `floor` for the
        // non-negative times `SimTime` guarantees.
        (time.as_secs() * self.inv_width) as u64
    }

    fn insert_entry(&mut self, entry: Entry<T>) {
        // The rotation cursor tracks the *next* entry to pop, which can sit
        // ahead of the caller's clock (e.g. a peek that ran past a
        // `run_until` horizon).  An insert landing behind it would be
        // skipped for a whole rotation, so flag a direct re-positioning.
        if self.abs_bucket(entry.time) < self.cur_abs {
            self.needs_reposition = true;
        }
        let idx = self.bucket_index(entry.time);
        let bucket = &mut self.buckets[idx];
        let key = entry.key();
        match bucket.binary_search_by(|e| e.key().cmp(&key)) {
            // `seq` is unique, so an exact hit cannot happen; Err gives the
            // sorted insertion point either way.
            Ok(pos) | Err(pos) => {
                // The splice moves min(pos, len - pos) entries; feed the
                // cost observer that decides when rebucketing pays off.
                self.win_insert_cost += pos.min(bucket.len() - pos) as u64;
                self.win_inserts += 1;
                bucket.insert(pos, entry);
            }
        }
    }

    /// Points `cur_abs` at the bucket holding the global minimum entry.
    fn reposition_to_min(&mut self) {
        debug_assert!(self.count > 0);
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            if let Some(front) = bucket.front() {
                let key = (front.time, front.seq, idx);
                if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                    best = Some(key);
                }
            }
        }
        let (time, _, _) = best.expect("count > 0 implies a non-empty bucket");
        self.cur_abs = self.abs_bucket(time);
        self.needs_reposition = false;
    }

    /// Advances the rotation to the bucket whose front is the next entry to
    /// pop and returns its wheel index.
    fn position_next(&mut self) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        if self.needs_reposition {
            self.reposition_to_min();
        }
        let mask = self.buckets.len() as u64 - 1;
        // One full rotation: a bucket's front whose own absolute bucket
        // number has been reached is the global minimum — entries are
        // sorted within buckets, `abs_bucket` is monotone in time, and
        // no-past-scheduling keeps every entry at or after the last popped
        // time.  Comparing bucket numbers (rather than times against a
        // recomputed bucket-boundary product) makes the test agree with the
        // insert mapping by construction, so float rounding at bucket
        // boundaries cannot strand an entry.
        for _ in 0..self.buckets.len() {
            let idx = (self.cur_abs & mask) as usize;
            if let Some(front) = self.buckets[idx].front() {
                if self.abs_bucket(front.time) <= self.cur_abs {
                    return Some(idx);
                }
            }
            self.cur_abs += 1;
            self.win_scan_steps += 1;
        }
        // Sparse queue: everything lives more than a year ahead.  Jump the
        // rotation straight to the global minimum.
        self.reposition_to_min();
        let idx = (self.cur_abs & mask) as usize;
        Some(idx)
    }

    /// Rebuilds the wheel at `new_buckets` buckets, re-deriving the bucket
    /// width from [`Self::estimate_width`] (a bucket should span ~3 average
    /// event separations — the classic sweet spot between bucket scan cost
    /// and empty-bucket rotation cost).  Skipped entirely when neither the
    /// wheel size nor the width would change.
    fn resize(&mut self, new_buckets: usize) {
        let new_width = match self.estimate_width() {
            Some(w) => w,
            None => self.width,
        };
        self.reset_observers();
        // Rebucketing is O(count); skip it when neither the wheel size nor
        // the width would change materially — cost triggers can fire on
        // workloads (e.g. periodic same-instant waves) whose occasional
        // long cursor walk is already optimal for the width we have.
        let ratio = new_width / self.width;
        if new_buckets == self.buckets.len() && (0.667..=1.5).contains(&ratio) {
            return;
        }
        self.rebuckets += 1;
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.count);
        for bucket in &mut self.buckets {
            entries.extend(bucket.drain(..));
        }
        self.width = new_width;
        self.inv_width = 1.0 / new_width;
        // Reuse the surviving buckets' backing storage (`clear` keeps
        // capacity); only a growth allocates new, empty deques.
        self.buckets.truncate(new_buckets);
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize_with(new_buckets, VecDeque::new);
        for entry in entries {
            self.insert_entry(entry);
        }
        self.reset_observers();
        self.needs_reposition = true;
    }

    /// Restarts the gap estimator, the cost window and the rebucket
    /// cooldown.
    fn reset_observers(&mut self) {
        self.pop_gap_sum = 0.0;
        self.gap_pops = 0;
        self.win_pops = 0;
        self.win_scan_steps = 0;
        self.win_insert_cost = 0;
        self.win_inserts = 0;
        self.pops_since_rebucket = 0;
    }

    /// A bucket should span ~3 average event separations.  The estimate
    /// prefers the observed inter-dequeue gaps (Brown's estimator) and
    /// falls back to the global spread of queued times before enough pops
    /// have been seen.
    fn estimate_width(&self) -> Option<f64> {
        let separation = if self.gap_pops >= 64 {
            // Observed gaps; all-zero gaps (a burst of simultaneous events)
            // yield no estimate rather than falling back to the O(n) spread
            // scan on a hot path.
            (self.pop_gap_sum > 0.0).then(|| self.pop_gap_sum / self.gap_pops as f64)
        } else if self.count >= 2 {
            let (mut min_t, mut max_t) = (f64::INFINITY, f64::NEG_INFINITY);
            for e in self.buckets.iter().flatten() {
                min_t = min_t.min(e.time.as_secs());
                max_t = max_t.max(e.time.as_secs());
            }
            (max_t > min_t).then(|| (max_t - min_t) / self.count as f64)
        } else {
            None
        };
        separation.map(|sep| (3.0 * sep).max(MIN_WIDTH))
    }

    fn maybe_grow(&mut self) {
        let target = Self::bucket_target(self.count);
        if target > self.buckets.len() {
            self.resize(target);
        }
    }

    /// Wheel size for `count` live entries: the power of two near
    /// `count / 4`.  With the width spanning ~3 average separations, this
    /// makes one wheel rotation cover roughly the whole span of queued
    /// times while keeping the bucket headers cache-resident; in-bucket
    /// splices stay a handful of entries either way.
    fn bucket_target(count: usize) -> usize {
        (count / 4)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS)
    }

    fn maybe_shrink(&mut self) {
        // Quartered, not halved: a shrink only once the wheel is 4x
        // oversized keeps a count hovering near a power-of-two boundary
        // from thrashing grow/shrink cycles.
        let target = Self::bucket_target(self.count.max(1));
        if target * 4 <= self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize(target.max(MIN_BUCKETS));
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> EventQueue<T> for CalendarQueue<T> {
    fn schedule(&mut self, time: SimTime, seq: u64, item: T) {
        self.insert_entry(Entry { time, seq, item });
        self.count += 1;
        self.maybe_grow();
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let idx = self.position_next()?;
        let entry = self.buckets[idx].pop_front().expect("positioned bucket");
        self.count -= 1;
        let now = entry.time.as_secs();
        if let Some(prev) = self.last_pop_time {
            self.pop_gap_sum += (now - prev).max(0.0);
        }
        self.last_pop_time = Some(now);
        self.gap_pops += 1;
        self.win_pops += 1;
        self.pops_since_rebucket += 1;
        self.maybe_shrink();
        // Cost-triggered re-tuning: at each window boundary, rebucket (with
        // a freshly estimated width) only when the wheel is measurably
        // hurting and the O(count) rebucket cost has been amortized by
        // enough pops since the previous one.
        if self.win_pops >= COST_WINDOW {
            let splicing = self.win_insert_cost > MAX_AVG_SPLICE * self.win_inserts.max(1);
            let scanning = self.win_scan_steps > MAX_AVG_SCAN * self.win_pops;
            let cooled = self.pops_since_rebucket as usize >= self.count / 2;
            self.win_pops = 0;
            self.win_scan_steps = 0;
            self.win_insert_cost = 0;
            self.win_inserts = 0;
            if (splicing || scanning) && cooled {
                self.resize(Self::bucket_target(self.count.max(1)));
            }
        }
        Some((entry.time, entry.seq, entry.item))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        let idx = self.position_next()?;
        self.buckets[idx].front().map(|e| e.time)
    }

    fn cancel(&mut self, time: SimTime, seq: u64) {
        let idx = self.bucket_index(time);
        let key = (time, seq);
        if let Ok(pos) = self.buckets[idx].binary_search_by(|e| e.key().cmp(&key)) {
            self.buckets[idx].remove(pos);
            self.count -= 1;
        } else {
            debug_assert!(false, "cancel of an entry that is not queued");
        }
    }

    fn len(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// Drains a queue completely, asserting (time, seq) never goes backward.
    fn drain<T>(q: &mut dyn EventQueue<T>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        let mut last: Option<(SimTime, u64)> = None;
        while let Some((time, seq, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(
                    (time, seq) > prev,
                    "pop order went backward: {prev:?} then {:?}",
                    (time, seq)
                );
            }
            last = Some((time, seq));
            out.push((time, seq));
        }
        out
    }

    /// A deterministic pseudo-random stream for the comparison tests.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Both implementations accept inserts behind the last popped entry's
    /// time (the domain-sharded runtime replays cross-domain handoffs and
    /// deferred cut-link events at their original, past timestamps) and
    /// surface them next, in `(time, seq)` order among the remaining
    /// entries.
    #[test]
    fn accepts_late_inserts_behind_the_clock() {
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut calendar: CalendarQueue<u64> = CalendarQueue::new();
        for q in [
            &mut heap as &mut dyn EventQueue<u64>,
            &mut calendar as &mut dyn EventQueue<u64>,
        ] {
            q.schedule(t(1.0), 0, 0);
            q.schedule(t(5.0), 1, 1);
            assert_eq!(q.pop().map(|(time, ..)| time), Some(t(1.0)));
            // The clock is at 1.0; replay two handoffs behind it, one of
            // them tying an existing time with a smaller seq band.
            q.schedule(t(0.5), 100, 2);
            q.schedule(t(0.25), 101, 3);
            q.schedule(t(5.0), 50, 4);
            assert_eq!(q.peek_time(), Some(t(0.25)));
            let order: Vec<(SimTime, u64)> = drain(q);
            assert_eq!(
                order,
                vec![(t(0.25), 101), (t(0.5), 100), (t(5.0), 1), (t(5.0), 50)]
            );
        }
    }

    /// Runs an identical schedule/pop/cancel workload against both queue
    /// implementations and asserts identical pop sequences.
    fn compare_impls(seed: u64, prefill: usize, ops: usize) {
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut calendar: CalendarQueue<u64> = CalendarQueue::new();
        let run = |q: &mut dyn EventQueue<u64>| -> Vec<(SimTime, u64, u64)> {
            let mut rng = Mix(seed);
            let mut seq = 0u64;
            let mut now = 0.0f64;
            let mut cancel_pool: Vec<(SimTime, u64)> = Vec::new();
            let mut popped = Vec::new();
            for _ in 0..prefill {
                let at = t(now + rng.unit() * 5.0);
                q.schedule(at, seq, seq);
                if seq % 7 == 3 {
                    cancel_pool.push((at, seq));
                }
                seq += 1;
            }
            for i in 0..ops {
                match q.pop() {
                    Some((time, s, item)) => {
                        now = time.as_secs();
                        popped.push((time, s, item));
                    }
                    None => break,
                }
                // Reschedule a little ahead, sometimes in bursts.
                let burst = 1 + (i % 3);
                for _ in 0..burst {
                    let at = t(now + rng.unit() * 2.0);
                    q.schedule(at, seq, seq);
                    if seq % 11 == 5 {
                        cancel_pool.push((at, seq));
                    }
                    seq += 1;
                }
                // Cancel an outstanding entry now and then (skipping any that
                // already popped).
                if i % 5 == 2 {
                    while let Some((at, s)) = cancel_pool.pop() {
                        if popped.iter().all(|&(_, ps, _)| ps != s) {
                            q.cancel(at, s);
                            break;
                        }
                    }
                }
            }
            while let Some(e) = q.pop() {
                popped.push(e);
            }
            popped
        };
        let h = run(&mut heap);
        let c = run(&mut calendar);
        assert_eq!(h.len(), c.len(), "pop counts diverged (seed {seed})");
        assert_eq!(h, c, "pop sequences diverged (seed {seed})");
        assert_eq!(heap.tombstones(), 0, "tombstones must drain by exhaustion");
    }

    #[test]
    fn heap_and_calendar_pop_identically() {
        for seed in [1, 2, 7, 42, 1234] {
            compare_impls(seed, 64, 500);
        }
    }

    #[test]
    fn heap_and_calendar_pop_identically_at_scale() {
        compare_impls(99, 5000, 4000);
    }

    #[test]
    fn calendar_resizes_with_load() {
        let mut q: CalendarQueue<usize> = CalendarQueue::new();
        for seq in 0..10_000u64 {
            q.schedule(t(seq as f64 * 0.001), seq, seq as usize);
        }
        assert!(
            q.bucket_count() >= 4096,
            "expected the wheel to grow, still at {} buckets",
            q.bucket_count()
        );
        let order = drain(&mut q);
        assert_eq!(order.len(), 10_000);
        assert!(
            q.bucket_count() <= MIN_BUCKETS * 2,
            "expected the wheel to shrink after draining, still at {} buckets",
            q.bucket_count()
        );
    }

    #[test]
    fn identical_times_pop_in_seq_order() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = kind.build::<u64>();
            for seq in 0..100u64 {
                q.schedule(t(1.0), seq, seq);
            }
            let order = drain(q.as_mut());
            let seqs: Vec<u64> = order.iter().map(|&(_, s)| s).collect();
            assert_eq!(seqs, (0..100).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        // Everything lives many "years" past the initial rotation position;
        // the direct-search fallback must find the minimum, not spin.
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = kind.build::<u64>();
            q.schedule(t(5_000.0), 0, 0);
            q.schedule(t(90_000.0), 1, 1);
            q.schedule(t(5_500.0), 2, 2);
            assert_eq!(q.peek_time(), Some(t(5_000.0)), "{kind:?}");
            let order = drain(q.as_mut());
            assert_eq!(
                order,
                vec![(t(5_000.0), 0), (t(5_500.0), 2), (t(90_000.0), 1)]
            );
        }
    }

    /// A peek can park the rotation cursor at a far-future bucket (that is
    /// how `run_until` decides to stop); a later insert *between* the last
    /// pop and that parked position must still pop first.
    #[test]
    fn insert_behind_a_peeked_cursor_is_not_stranded() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = kind.build::<u64>();
            q.schedule(t(1.0), 0, 0);
            q.schedule(t(2.0), 1, 1);
            assert_eq!(q.pop().map(|(_, s, _)| s), Some(0), "{kind:?}");
            // Parks the cursor at 2.0's bucket.
            assert_eq!(q.peek_time(), Some(t(2.0)), "{kind:?}");
            // Legal insert (>= last popped time) behind the parked cursor.
            q.schedule(t(1.5), 2, 2);
            assert_eq!(
                q.pop().map(|(ti, s, _)| (ti, s)),
                Some((t(1.5), 2)),
                "{kind:?}"
            );
            assert_eq!(
                q.pop().map(|(ti, s, _)| (ti, s)),
                Some((t(2.0), 1)),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn cancel_keeps_len_and_tombstones_bounded() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = kind.build::<u64>();
            for seq in 0..1000u64 {
                q.schedule(t(1.0 + seq as f64), seq, seq);
            }
            for seq in 0..1000u64 {
                if seq % 2 == 0 {
                    q.cancel(t(1.0 + seq as f64), seq);
                }
            }
            assert_eq!(q.len(), 500, "{kind:?}");
            let order = drain(q.as_mut());
            assert_eq!(order.len(), 500, "{kind:?}");
            assert!(order.iter().all(|&(_, s)| s % 2 == 1), "{kind:?}");
            assert_eq!(q.tombstones(), 0, "{kind:?}: tombstones must drain");
        }
    }

    #[test]
    fn scheduler_kind_env_round_trip() {
        // `SchedulerKind::from_env` is exercised via the string matcher only;
        // mutating the process environment here would race other tests.
        assert_eq!(SchedulerKind::default(), SchedulerKind::Calendar);
        assert_eq!(SchedulerKind::Heap.build::<u8>().len(), 0);
        assert_eq!(SchedulerKind::Calendar.build::<u8>().len(), 0);
    }
}
