//! Scale probe: how large a multicast fan-out can one simulation hold?
//!
//! Builds an N-leg star (one node, two links and one receiver agent per
//! leg), multicasts CBR traffic into it, and reports build time, run time
//! and the event/delivery counts.  Optionally a tenth of the receivers
//! churn (leave and rejoin the group on sub-second cycles), and the fan-out
//! can be switched to the clone-based reference path for comparison.
//!
//! ```text
//! cargo run --release --example scale_probe -- [RECEIVERS] [shared|clone] [churn] [heap|calendar]
//! cargo run --release --example scale_probe -- 100000 shared churn calendar
//! ```
//!
//! The scheduler token (or the `TFMCC_SCHEDULER` environment variable)
//! selects the event-queue implementation, so the heap and the calendar
//! queue can be compared at 10⁵ receivers; both produce identical runs
//! (see `netsim::events`), only the wall clock differs.

use netsim::prelude::*;
use std::time::Instant;

fn main() {
    let mut n: usize = 10_000;
    let mut mode = FanoutMode::Shared;
    let mut churn = false;
    let mut scheduler = SchedulerKind::resolve();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "shared" => mode = FanoutMode::Shared,
            "clone" => mode = FanoutMode::CloneReference,
            "churn" => churn = true,
            "heap" => scheduler = SchedulerKind::Heap,
            "calendar" => scheduler = SchedulerKind::Calendar,
            other => match other.parse() {
                Ok(count) => n = count,
                Err(_) => {
                    eprintln!(
                        "error: unknown argument '{other}' (expected a receiver count, shared|clone, churn, heap|calendar)"
                    );
                    std::process::exit(2);
                }
            },
        }
    }

    let t0 = Instant::now();
    let mut sim = Simulator::with_scheduler(1, scheduler);
    sim.set_fanout_mode(mode);
    let legs: Vec<StarLeg> = (0..n).map(|_| StarLeg::clean(125_000.0, 0.02)).collect();
    let st = star(&mut sim, &StarConfig::default(), &legs);
    let group = GroupId(1);
    let mut sinks = Vec::with_capacity(n);
    for (i, &r) in st.receivers.iter().enumerate() {
        let mut sink = GroupSink::new(group, 1.0);
        if churn && i % 10 == 1 {
            sink = sink.churning(0.25 + (i % 7) as f64 * 0.05);
        }
        sinks.push(sim.add_agent(r, Port(5), Box::new(sink)));
    }
    sim.add_agent(
        st.sender,
        Port(5),
        Box::new(CbrSource::new(
            Dest::Multicast {
                group,
                port: Port(5),
            },
            FlowId(1),
            1000,
            50_000.0,
            0.0,
        )),
    );
    let built = t0.elapsed();

    let t1 = Instant::now();
    sim.run_until(SimTime::from_secs(10.0));
    let ran = t1.elapsed();
    let delivered: u64 = sinks
        .iter()
        .map(|&s| sim.agent::<GroupSink>(s).unwrap().packets())
        .sum();
    println!(
        "n={n} mode={mode:?} scheduler={scheduler:?} churn={churn} build={built:?} run={ran:?} events={} delivered={delivered}",
        sim.events_processed()
    );
}
