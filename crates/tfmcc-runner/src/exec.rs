//! The work-stealing sweep executor.
//!
//! Points of a sweep are independent, so the executor is a self-scheduling
//! pool: workers steal the next unclaimed point index from a shared atomic
//! cursor, run it, and send the result back over a channel.  Determinism
//! comes from the seed derivation (per-point, index-based — see
//! [`crate::seed`]) and from collecting results into point order before
//! returning, so the output of [`SweepRunner::run`] is identical for any
//! thread count.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::progress::{PointRecord, RunReport};
use crate::sweep::Sweep;

/// One scheduled point handed to the sweep closure: the point value plus its
/// index and deterministic seed.
#[derive(Debug, Clone, Copy)]
pub struct Point<'a, P> {
    /// The point's parameter assignment.
    pub value: &'a P,
    /// Index of the point within its sweep.
    pub index: usize,
    /// The point's derived RNG seed (stable for any thread count).
    pub seed: u64,
}

/// Executes sweeps on a pool of worker threads and accumulates per-point
/// timing into a [`RunReport`].
///
/// A runner with one thread executes inline on the calling thread; more
/// threads use `std::thread::scope` workers that self-schedule points from a
/// shared queue (work stealing degenerates to an atomic cursor because every
/// point is visible to every worker).  Results are always returned in point
/// order.
pub struct SweepRunner {
    threads: usize,
    created: Instant,
    records: Mutex<Vec<PointRecord>>,
}

impl SweepRunner {
    /// Creates a runner with the given worker-thread count (min 1).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
            created: Instant::now(),
            records: Mutex::new(Vec::new()),
        }
    }

    /// A single-threaded runner (tests, benches, library callers).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every point of `sweep` through `f` and returns the results in
    /// point order.
    ///
    /// `f` is called with a [`Point`] carrying the value, index and derived
    /// seed; it must derive all randomness from that seed for the sweep to be
    /// reproducible across thread counts.
    pub fn run<P, T, F>(&self, sweep: &Sweep<P>, f: F) -> Vec<T>
    where
        P: Sync,
        T: Send,
        F: Fn(Point<'_, P>) -> T + Sync,
    {
        let n = sweep.len();
        let workers = self.threads.min(n).max(1);
        let mut results: Vec<Option<T>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut records: Vec<PointRecord> = Vec::with_capacity(n);

        if workers == 1 {
            for (index, value) in sweep.points().iter().enumerate() {
                let seed = sweep.seed_for(index);
                let start = Instant::now();
                let out = f(Point { value, index, seed });
                records.push(PointRecord {
                    sweep: sweep.name().to_string(),
                    index,
                    seed,
                    secs: start.elapsed().as_secs_f64(),
                    worker: 0,
                });
                results[index] = Some(out);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let (tx, rx) = crossbeam::channel::bounded(n);
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move || loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let value = &sweep.points()[index];
                        let seed = sweep.seed_for(index);
                        let start = Instant::now();
                        let out = f(Point { value, index, seed });
                        let secs = start.elapsed().as_secs_f64();
                        // The receiver only disappears if the collecting side
                        // panicked; the scope will propagate that panic.
                        let _ = tx.send((index, seed, out, secs, worker));
                    });
                }
                drop(tx);
                while let Ok((index, seed, out, secs, worker)) = rx.recv() {
                    results[index] = Some(out);
                    records.push(PointRecord {
                        sweep: sweep.name().to_string(),
                        index,
                        seed,
                        secs,
                        worker,
                    });
                }
            });
            // Completion order is nondeterministic; the report is kept in
            // point order so it, too, is stable.
            records.sort_by_key(|r| r.index);
        }

        self.records
            .lock()
            .expect("runner record lock poisoned")
            .extend(records);
        results
            .into_iter()
            .map(|slot| slot.expect("worker finished every claimed point"))
            .collect()
    }

    /// Snapshot of everything run so far: per-point timings plus the wall
    /// clock elapsed since the runner was created.
    pub fn report(&self) -> RunReport {
        RunReport {
            threads: self.threads,
            wall_secs: self.created.elapsed().as_secs_f64(),
            records: self
                .records
                .lock()
                .expect("runner record lock poisoned")
                .clone(),
        }
    }

    /// Writes the current [`RunReport`] as a `BENCH_*.json`-style trajectory
    /// to `path`.
    pub fn write_bench_json(&self, name: &str, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.report().to_bench_json(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ParamGrid;

    /// A deterministic, seed-sensitive workload.
    fn mix(seed: u64, extra: u64) -> u64 {
        let mut x = seed ^ extra.wrapping_mul(0x2545_F491_4F6C_DD1D);
        for _ in 0..32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    }

    #[test]
    fn results_are_in_point_order_and_thread_count_invariant() {
        let sweep = ParamGrid::new()
            .receivers(vec![1, 2, 4, 8, 16, 32, 64])
            .replicas(13)
            .build("exec-test", 99);
        let work = |pt: Point<'_, crate::sweep::GridPoint>| mix(pt.seed, pt.value.receivers as u64);
        let serial = SweepRunner::new(1).run(&sweep, work);
        for threads in [2, 3, 8] {
            let parallel = SweepRunner::new(threads).run(&sweep, work);
            assert_eq!(serial, parallel, "results differ at {threads} threads");
        }
    }

    #[test]
    fn report_records_every_point_in_order() {
        let sweep = Sweep::new("timed", 5, (0..40).collect::<Vec<u64>>());
        let runner = SweepRunner::new(4);
        let out = runner.run(&sweep, |pt| mix(pt.seed, *pt.value));
        assert_eq!(out.len(), 40);
        let report = runner.report();
        assert_eq!(report.threads, 4);
        assert_eq!(report.records.len(), 40);
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(rec.index, i);
            assert_eq!(rec.sweep, "timed");
            assert_eq!(rec.seed, sweep.seed_for(i));
            assert!(rec.secs >= 0.0);
        }
    }

    #[test]
    fn empty_sweep_returns_empty() {
        let sweep: Sweep<u32> = Sweep::new("empty", 0, Vec::new());
        let out = SweepRunner::new(8).run(&sweep, |pt| *pt.value);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let sweep = Sweep::new("tiny", 1, vec![10u64, 20]);
        let out = SweepRunner::new(16).run(&sweep, |pt| *pt.value + pt.index as u64);
        assert_eq!(out, vec![10, 21]);
    }
}
