//! Property tests: feedback suppression stays within the paper's analytic
//! bounds from 10³ up to 10⁵ receivers.
//!
//! The paper argues (Section 2.5.4, Figure 4) that exponential timers with
//! suppression keep the expected number of responses per round small and
//! nearly independent of the receiver count; `tfmcc-model`'s
//! [`expected_responses`] evaluates the analytic expectation.  These tests
//! drive the Monte-Carlo round simulator over receiver sets up to 10⁵ —
//! one order of magnitude *above* the timers' `N = 10⁴` design estimate, the
//! regime the large-scale simulations run in — and pin:
//!
//! * **accounting**: every receiver either responds or is suppressed;
//! * **no implosion**: the simulated response count stays within a small
//!   multiple of the analytic expectation (which itself grows only when `n`
//!   exceeds the `N` estimate, via the `1/N` immediate-response atom);
//! * **liveness**: suppression never cancels the round entirely;
//! * **feedback quality**: with TFMCC's cancellation threshold `α = 0.1`,
//!   the best report of a round stays within `α/(1−α)` of the true minimum
//!   rate ratio (paper Section 2.5.2), independent of the receiver count.

use proptest::prelude::*;

use tfmcc_feedback::round::{mean_responses, FeedbackRound};
use tfmcc_model::feedback_expectation::expected_responses;
use tfmcc_proto::feedback::{BiasMethod, FeedbackPlanner};
use tfmcc_proto::prelude::TfmccConfig;

/// Planner with the given bias method and cancellation threshold, otherwise
/// TFMCC defaults (`N` estimate 10⁴).
fn planner(method: BiasMethod, alpha: f64) -> FeedbackPlanner {
    let mut p = FeedbackPlanner::from_config(&TfmccConfig::default());
    p.method = method;
    p.cancel_alpha = alpha;
    p
}

/// Window of 4 network-delay units: the paper's suppression interval
/// `T' = 4 RTTs` expressed with `D = 1`.
const WINDOW: f64 = 4.0;
const DELAY: f64 = 1.0;

proptest! {
    /// Worst case (every receiver reports the same saturated value) with
    /// plain exponential timers and cancel-on-any-feedback — the exact
    /// setting of the analytic model.  Receiver counts are drawn
    /// log-uniformly over 10³..10⁵.
    #[test]
    fn worst_case_responses_track_the_analytic_expectation(
        exponent in 3.0f64..5.0,
        seed in 0u64..1_000_000,
    ) {
        let n = 10f64.powf(exponent) as usize;
        let round = FeedbackRound::new(planner(BiasMethod::Unbiased, 1.0), WINDOW, DELAY);
        let runs = 2;
        let outcomes = round.simulate_worst_case(n, runs, seed);
        for o in &outcomes {
            prop_assert_eq!(
                o.responses.len() + o.suppressed,
                n,
                "every receiver responds or is suppressed"
            );
            prop_assert!(!o.responses.is_empty(), "suppression must not kill the round");
        }
        let analytic = expected_responses(n as u64, 10_000.0, WINDOW, DELAY);
        let simulated = mean_responses(&outcomes);
        // Monte-Carlo mean of 2 runs versus the expectation: generous
        // multiplicative slack, additive floor for the small-count regime.
        prop_assert!(
            simulated <= 4.0 * analytic + 5.0,
            "implosion at n={}: {} responses vs {:.1} expected",
            n, simulated, analytic
        );
        prop_assert!(
            simulated >= (analytic / 6.0).min(1.0).max(1.0 / runs as f64),
            "over-suppression at n={}: {} responses vs {:.1} expected",
            n, simulated, analytic
        );
    }

    /// TFMCC's production setting (modified-offset bias, α = 0.1) over
    /// uniformly distributed rate ratios: the winning report stays within
    /// the paper's α/(1−α) bound of the true minimum at every receiver
    /// count, and the response count stays bounded.
    #[test]
    fn biased_rounds_keep_quality_within_alpha_bound(
        exponent in 3.0f64..5.0,
        seed in 0u64..1_000_000,
    ) {
        let n = 10f64.powf(exponent) as usize;
        let alpha = 0.1;
        let round = FeedbackRound::new(planner(BiasMethod::ModifiedOffset, alpha), WINDOW, DELAY);
        let outcomes = round.simulate_uniform(n, 2, seed);
        let bound = alpha / (1.0 - alpha);
        for o in &outcomes {
            prop_assert_eq!(o.responses.len() + o.suppressed, n);
            let q = o.quality().expect("someone always responds");
            prop_assert!(
                q <= bound + 1e-9,
                "n={}: best report {:.4} above the true minimum exceeds α/(1−α) = {:.4}",
                n, q, bound
            );
        }
        // The α = 0.1 threshold deliberately admits more reports than the
        // cancel-on-anything analytic model (receivers more than 10 % below
        // the echoed minimum keep firing and re-lower it), so the cap here
        // is sublinearity, not the analytic curve: the response count must
        // stay a vanishing fraction of the receiver set (measured ≈ 60–350
        // responses across 10³..10⁵, i.e. ≤ 0.4 % at 10⁵, up to ≈ 15 % at
        // 10³ where the population is small).
        let simulated = mean_responses(&outcomes);
        let cap = (0.25 * n as f64).min(1500.0);
        prop_assert!(
            simulated <= cap,
            "implosion with biased timers at n={}: {} responses exceed the {:.0} cap",
            n, simulated, cap
        );
    }
}

/// Deterministic spot check at the three decades the roadmap names, with
/// enough runs for a stable mean: the simulated response count lands within
/// a factor of ~2.5 of the analytic curve at 10³ and 10⁴ receivers, and the
/// `n > N` implosion regime at 10⁵ is reproduced (≈ `n/N` immediate
/// responses from the `1/N` atom).
#[test]
fn response_counts_match_analytic_curve_at_each_decade() {
    let round = FeedbackRound::new(planner(BiasMethod::Unbiased, 1.0), WINDOW, DELAY);
    for (n, runs) in [(1_000usize, 8), (10_000, 6), (100_000, 4)] {
        let analytic = expected_responses(n as u64, 10_000.0, WINDOW, DELAY);
        let simulated = mean_responses(&round.simulate_worst_case(n, runs, 99));
        assert!(
            simulated <= 2.5 * analytic + 2.0 && simulated >= analytic / 2.5 - 2.0,
            "n={n}: simulated {simulated:.1} vs analytic {analytic:.1}"
        );
    }
    // The atom alone guarantees ≈ n/N immediate responses once n > N.
    let at_1e5 = mean_responses(&round.simulate_worst_case(100_000, 4, 99));
    assert!(
        at_1e5 >= 5.0,
        "n=10⁵ with N=10⁴ must show the beginning implosion, got {at_1e5:.1}"
    );
}
