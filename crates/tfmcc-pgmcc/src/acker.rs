//! Acker election: track per-receiver conditions and pick the one a TCP flow
//! would serve most slowly.

use std::collections::BTreeMap;

use tfmcc_model::throughput::mathis_throughput;

/// What the sender knows about one receiver for acker election.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverConditions {
    /// Smoothed loss rate reported by the receiver.
    pub loss_rate: f64,
    /// RTT to the receiver measured by the sender from echoed timestamps.
    pub rtt: f64,
    /// Last time a report or ACK from this receiver was processed.
    pub last_heard: f64,
}

/// Tracks receiver conditions and elects the acker.
///
/// The election rule follows PGMCC: a candidate replaces the current acker
/// when its modelled TCP throughput is lower by more than the hysteresis
/// factor (to avoid flapping between receivers with similar conditions).
#[derive(Debug, Clone)]
pub struct AckerTracker {
    packet_size: f64,
    hysteresis: f64,
    receivers: BTreeMap<u64, ReceiverConditions>,
    acker: Option<u64>,
}

impl AckerTracker {
    /// Creates a tracker.  `hysteresis` of 0.85 means a candidate must have a
    /// modelled throughput below 85 % of the acker's to take over.
    pub fn new(packet_size: f64, hysteresis: f64) -> Self {
        assert!(packet_size > 0.0);
        assert!((0.0..=1.0).contains(&hysteresis));
        AckerTracker {
            packet_size,
            hysteresis,
            receivers: BTreeMap::new(),
            acker: None,
        }
    }

    /// The current acker, if any.
    pub fn acker(&self) -> Option<u64> {
        self.acker
    }

    /// Number of receivers that have reported so far.
    pub fn known_receivers(&self) -> usize {
        self.receivers.len()
    }

    /// Modelled throughput of a receiver under the simplified TCP equation.
    fn modelled_throughput(&self, c: &ReceiverConditions) -> f64 {
        if c.loss_rate <= 0.0 {
            f64::INFINITY
        } else {
            mathis_throughput(self.packet_size, c.rtt.max(1e-3), c.loss_rate.min(1.0))
        }
    }

    /// Records a report (or ACK-carried state) from `receiver` and returns
    /// `true` if this changed the acker.
    pub fn update(&mut self, receiver: u64, loss_rate: f64, rtt: f64, now: f64) -> bool {
        self.receivers.insert(
            receiver,
            ReceiverConditions {
                loss_rate,
                rtt,
                last_heard: now,
            },
        );
        let current = self.acker.and_then(|id| self.receivers.get(&id).copied());
        let candidate = self.receivers[&receiver];

        match current {
            None => {
                self.acker = Some(receiver);
                true
            }
            Some(acker_cond) => {
                let acker_rate = self.modelled_throughput(&acker_cond);
                let cand_rate = self.modelled_throughput(&candidate);
                if Some(receiver) != self.acker && cand_rate < self.hysteresis * acker_rate {
                    self.acker = Some(receiver);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Drops receivers not heard from since `deadline` and re-elects if the
    /// acker vanished.  Returns `true` if the acker changed.
    pub fn expire(&mut self, deadline: f64) -> bool {
        self.receivers.retain(|_, c| c.last_heard >= deadline);
        match self.acker {
            Some(id) if !self.receivers.contains_key(&id) => {
                // The map iterates in ascending id order and `min_by` keeps
                // the first of equally-minimal elements, so a modelled-rate
                // tie always elects the lowest id — replay-stable.
                self.acker = self
                    .receivers
                    .iter()
                    .min_by(|a, b| {
                        self.modelled_throughput(a.1)
                            .partial_cmp(&self.modelled_throughput(b.1))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(id, _)| *id);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reporter_becomes_acker() {
        let mut t = AckerTracker::new(1000.0, 0.85);
        assert!(t.update(1, 0.01, 0.05, 0.0));
        assert_eq!(t.acker(), Some(1));
    }

    #[test]
    fn worse_receiver_takes_over_with_hysteresis() {
        let mut t = AckerTracker::new(1000.0, 0.85);
        t.update(1, 0.01, 0.05, 0.0);
        // Slightly worse: within hysteresis, no change.
        assert!(!t.update(2, 0.011, 0.05, 1.0));
        assert_eq!(t.acker(), Some(1));
        // Much worse: takes over.
        assert!(t.update(3, 0.05, 0.1, 2.0));
        assert_eq!(t.acker(), Some(3));
    }

    #[test]
    fn lossless_receiver_never_preempts_a_lossy_acker() {
        let mut t = AckerTracker::new(1000.0, 0.85);
        t.update(1, 0.02, 0.05, 0.0);
        assert!(!t.update(2, 0.0, 0.4, 1.0));
        assert_eq!(t.acker(), Some(1));
    }

    #[test]
    fn hysteresis_boundary_is_strict() {
        // A candidate must be *strictly* below hysteresis × acker to take
        // over; equal modelled throughput (same conditions) never flaps.
        let mut t = AckerTracker::new(1000.0, 0.85);
        t.update(1, 0.01, 0.1, 0.0);
        assert!(!t.update(2, 0.01, 0.1, 1.0), "identical conditions");
        assert_eq!(t.acker(), Some(1));
        // Throughput scales with 1/(rtt·sqrt(p)): quadrupling the loss rate
        // halves the modelled rate, which is below 85% — must take over.
        assert!(t.update(3, 0.04, 0.1, 2.0));
        assert_eq!(t.acker(), Some(3));
        // The reigning acker re-reporting identical conditions never counts
        // as a change.
        assert!(!t.update(3, 0.04, 0.1, 3.0));
    }

    #[test]
    fn expiring_the_last_receiver_leaves_no_acker() {
        let mut t = AckerTracker::new(1000.0, 0.85);
        t.update(1, 0.02, 0.05, 0.0);
        assert!(t.expire(5.0), "the vanished acker must be reported");
        assert_eq!(t.acker(), None);
        assert_eq!(t.known_receivers(), 0);
        // The next reporter is elected immediately.
        assert!(t.update(2, 0.0, 0.2, 6.0));
        assert_eq!(t.acker(), Some(2));
    }

    #[test]
    fn expiry_reelects_among_live_receivers() {
        let mut t = AckerTracker::new(1000.0, 0.85);
        t.update(1, 0.05, 0.05, 0.0);
        t.update(2, 0.01, 0.05, 10.0);
        assert_eq!(t.acker(), Some(1));
        // Receiver 1 has not been heard from since t=0; expire it.
        assert!(t.expire(5.0));
        assert_eq!(t.acker(), Some(2));
        assert_eq!(t.known_receivers(), 1);
    }
}
