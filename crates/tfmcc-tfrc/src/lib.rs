//! Unicast TFRC (TCP-Friendly Rate Control) endpoints.
//!
//! TFRC (Floyd, Handley, Padhye & Widmer, SIGCOMM 2000) is the unicast parent
//! protocol of TFMCC: the receiver measures the loss event rate, the sender
//! measures the RTT from receiver reports, and the control equation sets the
//! sending rate.  TFMCC keeps TFRC's loss measurement and control equation
//! and moves the rate calculation to the receivers (paper Section 1.1).
//!
//! This crate provides the unicast configuration as a baseline: a
//! [`TfrcSession`] is simply a TFMCC session with exactly one receiver whose
//! reports are never suppressed (it behaves like a permanent CLR, reporting
//! once per RTT), which is precisely how the paper positions TFMCC relative
//! to TFRC.  Reusing the same state machines means any fix to the loss
//! history or the control equation benefits both protocols, and the unicast
//! baseline measured in the experiments runs exactly the code the multicast
//! protocol runs.

// Enforced by tfmcc-lint rule U001: pure math/protocol logic, no unsafe.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use netsim::packet::{AgentId, FlowId, GroupId, NodeId, Port};
use netsim::sim::Simulator;

use tfmcc_agents::population::PopulationSpec;
use tfmcc_agents::session::{TfmccSession, TfmccSessionBuilder};
use tfmcc_proto::config::TfmccConfig;

/// A unicast TFRC flow embedded in the simulator.
///
/// Internally this is a single-receiver TFMCC session on a dedicated
/// multicast group (the distribution "tree" degenerates to the unicast path),
/// which matches the protocol relationship described in the paper.
#[derive(Debug, Clone)]
pub struct TfrcSession {
    inner: TfmccSession,
}

/// Builder for a [`TfrcSession`].
#[derive(Debug, Clone)]
pub struct TfrcSessionBuilder {
    /// Protocol configuration (TFRC uses the same parameters as TFMCC).
    pub config: TfmccConfig,
    /// Flow id for statistics.
    pub flow: FlowId,
    /// Port pair used by the flow.
    pub data_port: Port,
    /// Sender report port.
    pub sender_port: Port,
    /// Group id used internally (must be unique per flow in one simulation).
    pub group: GroupId,
    /// Start time of the flow.
    pub start_at: f64,
}

impl Default for TfrcSessionBuilder {
    fn default() -> Self {
        TfrcSessionBuilder {
            config: TfmccConfig::default(),
            flow: FlowId(200),
            data_port: Port(6000),
            sender_port: Port(6001),
            group: GroupId(1000),
            start_at: 0.0,
        }
    }
}

impl TfrcSessionBuilder {
    /// Builds the unicast flow from `sender_node` to `receiver_node`.
    pub fn build(
        &self,
        sim: &mut Simulator,
        sender_node: NodeId,
        receiver_node: NodeId,
    ) -> TfrcSession {
        let builder = TfmccSessionBuilder {
            config: self.config.clone(),
            group: self.group,
            data_port: self.data_port,
            sender_port: self.sender_port,
            flow: self.flow,
            start_at: self.start_at,
            ..TfmccSessionBuilder::default()
        };
        let inner =
            builder.build_population(sim, sender_node, &[PopulationSpec::packet(receiver_node)]);
        TfrcSession { inner }
    }
}

impl TfrcSession {
    /// The sender agent id.
    pub fn sender(&self) -> AgentId {
        self.inner.sender
    }

    /// The receiver agent id.
    pub fn receiver(&self) -> AgentId {
        self.inner.receivers[0]
    }

    /// Average receiver throughput over `[from, to]` in bytes/second.
    pub fn throughput(&self, sim: &Simulator, from: f64, to: f64) -> f64 {
        self.inner.receiver_throughput(sim, 0, from, to)
    }

    /// Current sending rate in bytes/second.
    pub fn current_rate(&self, sim: &Simulator) -> f64 {
        self.inner.sender_agent(sim).protocol().current_rate()
    }

    /// The underlying single-receiver TFMCC session.
    pub fn as_tfmcc(&self) -> &TfmccSession {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;
    use tfmcc_tcp::{TcpSender, TcpSenderConfig, TcpSink};

    #[test]
    fn tfrc_flow_uses_available_bandwidth() {
        let mut sim = Simulator::new(301);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_duplex_link(a, b, 125_000.0, 0.02, QueueDiscipline::drop_tail(30));
        let flow = TfrcSessionBuilder::default().build(&mut sim, a, b);
        sim.run_until(SimTime::from_secs(120.0));
        let rate = flow.throughput(&sim, 60.0, 115.0);
        assert!(
            (60_000.0..=126_000.0).contains(&rate),
            "TFRC should use most of the 125 kB/s link, got {rate}"
        );
    }

    #[test]
    fn tfrc_is_roughly_fair_to_tcp() {
        let mut sim = Simulator::new(302);
        let cfg = DumbbellConfig {
            pairs: 2,
            bottleneck_bandwidth: 250_000.0,
            bottleneck_delay: 0.02,
            bottleneck_queue: QueueDiscipline::drop_tail(40),
            ..DumbbellConfig::default()
        };
        let d = netsim::topology::dumbbell(&mut sim, &cfg);
        let flow = TfrcSessionBuilder::default().build(&mut sim, d.senders[0], d.receivers[0]);
        let tcp_sink = sim.add_agent(d.receivers[1], Port(1), Box::new(TcpSink::new(1.0)));
        sim.add_agent(
            d.senders[1],
            Port(1),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(d.receivers[1], Port(1)),
                FlowId(2),
            ))),
        );
        sim.run_until(SimTime::from_secs(200.0));
        let tfrc_rate = flow.throughput(&sim, 80.0, 195.0);
        let tcp_rate = sim
            .agent::<TcpSink>(tcp_sink)
            .unwrap()
            .meter()
            .average_between(80.0, 195.0);
        let ratio = tfrc_rate / tcp_rate;
        assert!(
            (0.25..=4.0).contains(&ratio),
            "TFRC/TCP ratio {ratio} ({tfrc_rate} vs {tcp_rate})"
        );
    }

    #[test]
    fn tfrc_receiver_behaves_as_a_permanent_clr() {
        // The crate's claim: a TFRC flow is a one-receiver TFMCC session
        // whose receiver reports like a permanent CLR, never suppressed.
        let mut sim = Simulator::new(304);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_duplex_link(a, b, 125_000.0, 0.02, QueueDiscipline::drop_tail(30));
        let flow = TfrcSessionBuilder::default().build(&mut sim, a, b);
        sim.run_until(SimTime::from_secs(60.0));
        let receiver = flow.as_tfmcc().receiver_agent(&sim, 0).protocol();
        assert!(
            receiver.is_clr(),
            "the only receiver must be the CLR of its session"
        );
        assert_eq!(
            receiver.stats().feedback_suppressed,
            0,
            "a lone receiver must never suppress its feedback"
        );
        assert!(
            receiver.stats().feedback_sent > 10,
            "the CLR reports per RTT"
        );
        let sender = flow.as_tfmcc().sender_agent(&sim).protocol();
        assert_eq!(sender.clr(), Some(tfmcc_proto::packets::ReceiverId(1)));
    }

    #[test]
    fn tfrc_rate_responds_to_path_loss() {
        // Same topology twice: a clean path and a 5%-loss path.  The control
        // equation must push the lossy flow's rate well below the clean one.
        let run = |loss: f64, seed: u64| -> f64 {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            let (down, _) =
                sim.add_duplex_link(a, b, 1_250_000.0, 0.02, QueueDiscipline::drop_tail(200));
            if loss > 0.0 {
                sim.set_link_loss(down, LossModel::Bernoulli { p: loss });
            }
            let flow = TfrcSessionBuilder::default().build(&mut sim, a, b);
            sim.run_until(SimTime::from_secs(90.0));
            flow.throughput(&sim, 40.0, 85.0)
        };
        let clean = run(0.0, 305);
        let lossy = run(0.05, 305);
        assert!(
            lossy > 1_000.0,
            "the lossy flow must still progress: {lossy}"
        );
        assert!(
            lossy < clean * 0.5,
            "5% loss must at least halve the rate: clean {clean}, lossy {lossy}"
        );
    }

    #[test]
    fn two_tfrc_flows_need_distinct_groups_and_ports() {
        let mut sim = Simulator::new(303);
        let cfg = DumbbellConfig {
            pairs: 2,
            bottleneck_bandwidth: 250_000.0,
            ..DumbbellConfig::default()
        };
        let d = netsim::topology::dumbbell(&mut sim, &cfg);
        let f1 = TfrcSessionBuilder::default().build(&mut sim, d.senders[0], d.receivers[0]);
        let f2 = TfrcSessionBuilder {
            flow: FlowId(201),
            data_port: Port(6100),
            sender_port: Port(6101),
            group: GroupId(1001),
            ..TfrcSessionBuilder::default()
        }
        .build(&mut sim, d.senders[1], d.receivers[1]);
        sim.run_until(SimTime::from_secs(150.0));
        let r1 = f1.throughput(&sim, 60.0, 145.0);
        let r2 = f2.throughput(&sim, 60.0, 145.0);
        assert!(
            r1 > 20_000.0 && r2 > 20_000.0,
            "both flows must progress: {r1} {r2}"
        );
        let fairness = r1.min(r2) / r1.max(r2);
        assert!(
            fairness > 0.3,
            "intra-protocol fairness too poor: {r1} vs {r2}"
        );
    }
}
