//! Biased exponential feedback timers and cancellation (paper Section 2.5).
//!
//! Each receiver that wishes to report draws a random timer over the
//! feedback window `T`.  The plain mechanism (paper Eq. 2) draws
//! `t = max(T (1 + log_N x), 0)` with `x` uniform in `(0, 1]`, giving an
//! expected handful of responses regardless of the receiver count.  TFMCC
//! biases these timers in favour of low-rate receivers by reserving a
//! fraction `δ` of `T` for a deterministic offset proportional to the
//! (truncated, normalised) ratio of the receiver's calculated rate to the
//! current sending rate (paper Eq. 3), so that the receivers whose feedback
//! matters most tend to answer first while suppression still prevents an
//! implosion.

use std::hash::Hasher;

use crate::config::TfmccConfig;
use crate::step::{hash_f64, StateFingerprint};

/// Which timer-biasing method to use.  TFMCC proper uses
/// [`BiasMethod::ModifiedOffset`]; the others exist so the comparison figures
/// of the paper (Figures 1, 5, 6) can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BiasMethod {
    /// Plain exponentially distributed timers, no bias (paper Eq. 2).
    Unbiased,
    /// Offset proportional to the raw rate ratio `x` (paper Eq. 3).
    BasicOffset,
    /// Offset proportional to the truncated/normalised ratio `x'`
    /// (the method TFMCC uses).
    #[default]
    ModifiedOffset,
    /// Reduce the receiver-set estimate `N` in proportion to the rate ratio
    /// (shown in the paper only to motivate why it is *not* used).
    ModifiedN,
}

/// Computes feedback timer values and cancellation decisions.
#[derive(Debug, Clone)]
pub struct FeedbackPlanner {
    /// Receiver-set size estimate `N`.
    pub n_estimate: f64,
    /// Fraction `δ` of the window used for the offset bias.
    pub offset_fraction: f64,
    /// Cancellation threshold `α`.
    pub cancel_alpha: f64,
    /// Lower truncation bound of the rate ratio (bias saturates below this).
    pub saturation_ratio: f64,
    /// Upper truncation bound of the rate ratio (no bias above this).
    pub start_ratio: f64,
    /// Biasing method.
    pub method: BiasMethod,
}

impl FeedbackPlanner {
    /// Planner configured from the protocol configuration (TFMCC defaults).
    pub fn from_config(config: &TfmccConfig) -> Self {
        FeedbackPlanner {
            n_estimate: config.receiver_set_estimate,
            offset_fraction: config.feedback_offset_fraction,
            cancel_alpha: config.feedback_cancel_alpha,
            saturation_ratio: config.bias_saturation_ratio,
            start_ratio: config.bias_start_ratio,
            method: BiasMethod::ModifiedOffset,
        }
    }

    /// The truncated, normalised rate ratio `x'` of paper Section 2.5.1:
    /// 0 when the receiver's rate is at or below 50 % of the sending rate
    /// (maximum bias), 1 when at or above 90 % (no bias), linear in between.
    pub fn normalized_ratio(&self, rate_ratio: f64) -> f64 {
        let clamped = rate_ratio.clamp(self.saturation_ratio, self.start_ratio);
        (clamped - self.saturation_ratio) / (self.start_ratio - self.saturation_ratio)
    }

    /// Draws a feedback timer value in seconds.
    ///
    /// * `rate_ratio` — the receiver's calculated rate divided by the current
    ///   sending rate (for slowstart: receive rate / sending rate),
    /// * `window` — the feedback window `T` in seconds,
    /// * `uniform` — a fresh uniform random sample in `(0, 1]`.
    pub fn timer(&self, rate_ratio: f64, window: f64, uniform: f64) -> f64 {
        assert!(window > 0.0, "feedback window must be positive");
        let x = uniform.clamp(1e-12, 1.0);
        let exponential = |t_max: f64, n: f64| -> f64 { (t_max * (1.0 + x.log(n))).max(0.0) };
        let delta = self.offset_fraction;
        match self.method {
            BiasMethod::Unbiased => exponential(window, self.n_estimate),
            BiasMethod::BasicOffset => {
                let ratio = rate_ratio.clamp(0.0, 1.0);
                delta * ratio * window + exponential((1.0 - delta) * window, self.n_estimate)
            }
            BiasMethod::ModifiedOffset => {
                let ratio = self.normalized_ratio(rate_ratio);
                delta * ratio * window + exponential((1.0 - delta) * window, self.n_estimate)
            }
            BiasMethod::ModifiedN => {
                // Reduce N in proportion to the ratio; never below 2 so the
                // timer formula stays defined.
                let ratio = rate_ratio.clamp(0.0, 1.0);
                let n = (self.n_estimate * ratio).max(2.0);
                exponential(window, n)
            }
        }
    }

    /// Whether a pending feedback timer should be cancelled after hearing an
    /// echoed report with rate `echoed_rate`, given this receiver's own
    /// calculated rate (paper Section 2.5.2): cancel when
    /// `own_rate ≥ (1 − α) · echoed_rate`.
    pub fn should_cancel(&self, own_rate: f64, echoed_rate: f64) -> bool {
        own_rate >= (1.0 - self.cancel_alpha) * echoed_rate
    }

    /// Maximum possible timer value (used by tests and by adapters sizing
    /// their timer wheels).
    pub fn max_timer(&self, window: f64) -> f64 {
        window
    }
}

impl StateFingerprint for FeedbackPlanner {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        hash_f64(h, self.n_estimate);
        hash_f64(h, self.offset_fraction);
        hash_f64(h, self.cancel_alpha);
        hash_f64(h, self.saturation_ratio);
        hash_f64(h, self.start_ratio);
        h.write_u8(match self.method {
            BiasMethod::Unbiased => 0,
            BiasMethod::BasicOffset => 1,
            BiasMethod::ModifiedOffset => 2,
            BiasMethod::ModifiedN => 3,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn planner() -> FeedbackPlanner {
        FeedbackPlanner::from_config(&TfmccConfig::default())
    }

    #[test]
    fn normalized_ratio_truncates_and_scales() {
        let p = planner();
        assert_eq!(p.normalized_ratio(0.3), 0.0);
        assert_eq!(p.normalized_ratio(0.5), 0.0);
        assert!((p.normalized_ratio(0.7) - 0.5).abs() < 1e-12);
        assert_eq!(p.normalized_ratio(0.9), 1.0);
        assert_eq!(p.normalized_ratio(1.5), 1.0);
    }

    #[test]
    fn timers_stay_within_window() {
        let p = planner();
        let mut rng = SmallRng::seed_from_u64(1);
        for method in [
            BiasMethod::Unbiased,
            BiasMethod::BasicOffset,
            BiasMethod::ModifiedOffset,
            BiasMethod::ModifiedN,
        ] {
            let mut p = p.clone();
            p.method = method;
            for _ in 0..2000 {
                let ratio: f64 = rng.gen();
                let t = p.timer(ratio, 3.0, rng.gen());
                assert!((0.0..=3.0 + 1e-9).contains(&t), "{method:?}: timer {t}");
            }
        }
    }

    #[test]
    fn low_rate_receivers_respond_earlier_on_average() {
        let p = planner();
        let mut rng = SmallRng::seed_from_u64(2);
        let window = 3.0;
        let mean = |ratio: f64, rng: &mut SmallRng| -> f64 {
            let mut acc = 0.0;
            for _ in 0..4000 {
                acc += p.timer(ratio, window, rng.gen());
            }
            acc / 4000.0
        };
        let slow = mean(0.4, &mut rng);
        let fast = mean(1.0, &mut rng);
        assert!(
            slow + 0.3 < fast,
            "slow receivers should fire notably earlier: slow {slow}, fast {fast}"
        );
    }

    #[test]
    fn unbiased_timer_matches_analytic_immediate_probability() {
        // P(t = 0) should be 1/N for the plain exponential timer.
        let mut p = planner();
        p.method = BiasMethod::Unbiased;
        p.n_estimate = 100.0;
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 200_000;
        let immediate = (0..trials)
            .filter(|_| p.timer(1.0, 1.0, rng.gen()) == 0.0)
            .count() as f64;
        let frac = immediate / trials as f64;
        assert!(
            (0.007..=0.013).contains(&frac),
            "expected ≈1% immediate, got {frac}"
        );
    }

    #[test]
    fn cancellation_rule_matches_paper() {
        let p = planner(); // alpha = 0.1

        // Own rate well above the echoed rate: cancel.
        assert!(p.should_cancel(1000.0, 900.0));
        // Own rate equal to the echoed rate: cancel.
        assert!(p.should_cancel(900.0, 900.0));
        // Own rate within 10% below the echo: still cancel.
        assert!(p.should_cancel(815.0, 900.0));
        // Own rate more than 10% below the echo: keep the timer.
        assert!(!p.should_cancel(800.0, 900.0));
    }

    #[test]
    fn alpha_zero_and_one_are_the_extremes() {
        let mut p = planner();
        p.cancel_alpha = 0.0;
        assert!(!p.should_cancel(899.0, 900.0));
        assert!(p.should_cancel(900.0, 900.0));
        p.cancel_alpha = 1.0;
        assert!(p.should_cancel(1.0, 1_000_000.0));
    }

    #[test]
    fn modified_offset_reserves_suppression_interval() {
        // With δ = 1/3 and the worst case (ratio saturated at the low end)
        // the random part spans (1-δ)·T, so some timers must exceed zero and
        // none exceed (1-δ)·T for ratio 0.
        let p = planner();
        let mut rng = SmallRng::seed_from_u64(4);
        let window = 3.0;
        for _ in 0..2000 {
            let t = p.timer(0.0, window, rng.gen());
            assert!(t <= (1.0 - p.offset_fraction) * window + 1e-9);
        }
    }
}
