//! Allocation-count regression for the receiver's per-packet hot path.
//!
//! At 10⁵ receivers the simulator calls [`TfmccReceiver::on_data`] hundreds
//! of millions of times per run, so the data path must not allocate per
//! packet.  The loss-history weighted average iterates its ring in place
//! (no scratch `Vec`), the interval ring and the rate-meter sample ring are
//! recycled at a settled capacity, and feedback construction is plain
//! stack data.  This test drives a receiver through a steady-state loss +
//! RTT-echo + feedback-round workload behind a counting global allocator
//! and asserts the measured phase performs **zero** heap allocations.
//!
//! The file contains exactly one test: the counter is process-global, and a
//! concurrently running sibling test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::{DataPacket, ReceiverId, RttEcho, SuppressionEcho};
use tfmcc_proto::receiver::TfmccReceiver;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards to `System` with unchanged arguments; the
// added Relaxed counter update cannot affect the allocator contract.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Drives `packets` data packets through the receiver with ~2% loss, a
/// feedback round change every 200 packets, an RTT echo every 500 packets
/// and a suppression echo every 90 packets, firing the feedback timer
/// whenever it comes due.  Returns the advanced clock and sequence number.
fn drive(r: &mut TfmccReceiver, mut now: f64, mut seq: u64, packets: u64) -> (f64, u64) {
    let mut feedback_packets = 0u64;
    for i in 0..packets {
        if i % 50 == 49 {
            seq += 1; // drop every 50th packet
        }
        let mut d = DataPacket {
            seqno: seq,
            timestamp: now,
            current_rate: 500_000.0,
            max_rtt: 0.05,
            feedback_round: 1 + i / 200,
            slowstart: false,
            clr: None,
            rtt_echo: None,
            suppression: None,
            size: 1000,
        };
        if i % 500 == 100 {
            d.rtt_echo = Some(RttEcho {
                receiver: r.id(),
                echo_timestamp: now - 0.06,
                echo_delay: 0.01,
            });
        }
        if i % 90 == 80 {
            // Mostly echoes far above our own rate (no cancellation, the
            // timer survives to fire); every ninth echo is low enough to
            // exercise the suppression-cancel path as well.
            let rate = if i % 810 == 80 { 1_000.0 } else { 2e9 };
            d.suppression = Some(SuppressionEcho {
                receiver: ReceiverId(9999),
                rate,
            });
        }
        if r.on_data(now, &d).is_some() {
            feedback_packets += 1;
        }
        if let Some(fire_at) = r.next_timer() {
            if fire_at <= now && r.on_timer(now).is_some() {
                feedback_packets += 1;
            }
        }
        seq += 1;
        now += 0.002;
    }
    assert!(
        feedback_packets < packets,
        "sanity: bounded feedback volume"
    );
    (now, seq)
}

#[test]
fn receiver_data_path_does_not_allocate_in_steady_state() {
    let mut r = TfmccReceiver::new(ReceiverId(42), TfmccConfig::default());
    // Warm-up: reach steady state — loss history full, first RTT measurement
    // taken (which shrinks the rate-meter window), sample ring at its
    // settled capacity, feedback machinery cycling through rounds.
    let (now, seq) = drive(&mut r, 0.0, 0, 4000);
    assert!(r.has_rtt_measurement(), "warm-up must reach a measured RTT");
    assert!(r.loss_event_rate() > 0.0, "warm-up must record loss events");
    assert!(r.stats().feedback_sent > 0, "warm-up must produce feedback");

    // Measured phase: the identical traffic pattern must not allocate once.
    // The counter is process-global, so the libtest harness thread can leak
    // a couple of one-shot allocations (stdout / channel setup) into a
    // measurement window under load; a genuine per-packet allocation fires
    // on every attempt, so retrying filters the harness noise without
    // weakening the regression gate.
    let mut allocated = u64::MAX;
    let mut start_seq = seq;
    let (mut now, mut seq) = (now, seq);
    for _ in 0..3 {
        start_seq = seq;
        let before = ALLOCATIONS.load(Relaxed);
        let driven = drive(&mut r, now, seq, 4000);
        allocated = ALLOCATIONS.load(Relaxed) - before;
        (now, seq) = driven;
        if allocated == 0 {
            break;
        }
    }
    assert!(seq > start_seq, "sanity: packets were processed");
    assert_eq!(
        allocated, 0,
        "receiver per-packet path allocated {allocated} times over 4000 packets on every attempt"
    );
}
