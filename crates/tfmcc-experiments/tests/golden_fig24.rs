//! Golden-output regression test: the quick-scale Figure 24 (cross-protocol
//! fairness matrix over an AQM bottleneck) JSON is pinned byte for byte.
//!
//! The pinned file was captured when the pluggable `QueueDiscipline` layer
//! (gentle RED, CoDel) and the heterogeneous-protocol session wiring
//! landed.  It covers every pairing of TFMCC, PGMCC, TFRC and TCP plus the
//! four-way melee and the AQM robustness leg, all over the default
//! gentle-RED bottleneck — so it pins the probabilistic-drop determinism
//! contract end to end.  Any future change to the simulator core, the
//! queue disciplines, a competitor protocol, or the JSON rendering that
//! alters this output must be deliberate: regenerate with
//!
//! ```text
//! cargo run --release -p tfmcc-experiments --bin fig24_fairness_matrix -- \
//!     --quick --threads 2 --out crates/tfmcc-experiments/tests/golden/fig24_quick.json
//! ```

use std::sync::Mutex;

use tfmcc_experiments::fairness_matrix::fig24_fairness_matrix;
use tfmcc_experiments::{Scale, SweepRunner};

const GOLDEN: &str = include_str!("golden/fig24_quick.json");

/// Serializes the two tests: both run full simulations whose scheduler is
/// chosen through the process-global `TFMCC_SCHEDULER` variable (and the
/// queue discipline through `TFMCC_QUEUE`).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn render_fig24() -> String {
    std::env::remove_var("TFMCC_QUEUE");
    let fig = fig24_fairness_matrix(&SweepRunner::new(2), Scale::Quick);
    let mut rendered = fig.to_json().render();
    rendered.push('\n');
    rendered
}

#[test]
fn fig24_quick_json_matches_golden() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("TFMCC_SCHEDULER");
    assert_eq!(
        render_fig24(),
        GOLDEN,
        "fig24 --quick output drifted from the pinned golden file"
    );
}

/// The calendar-queue scheduler must reproduce the pinned golden byte for
/// byte — the determinism contract of `netsim::events` applied to RED's
/// probabilistic drops and CoDel's sojourn clocks.
#[test]
fn fig24_quick_json_matches_golden_under_calendar_scheduler() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::set_var("TFMCC_SCHEDULER", "calendar");
    let rendered = render_fig24();
    std::env::remove_var("TFMCC_SCHEDULER");
    assert_eq!(
        rendered, GOLDEN,
        "fig24 --quick output under the calendar scheduler drifted from the pinned golden file"
    );
}
