//! Binary wire format for TFMCC messages.
//!
//! The format is a straightforward fixed-layout encoding (network byte
//! order) with a one-byte message type and a one-byte version, sized so that
//! a data header fits comfortably in front of application payload inside a
//! single UDP datagram.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use tfmcc_proto::packets::{DataPacket, FeedbackPacket, ReceiverId, RttEcho, SuppressionEcho};

/// Wire protocol version.
pub const WIRE_VERSION: u8 = 1;

const TYPE_DATA: u8 = 1;
const TYPE_FEEDBACK: u8 = 2;

/// A decoded TFMCC message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Data-packet header (application payload follows it in the datagram).
    Data(DataPacket),
    /// Receiver report.
    Feedback(FeedbackPacket),
}

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The datagram is shorter than the fixed header.
    Truncated,
    /// Unknown wire version.
    BadVersion(u8),
    /// Unknown message type byte.
    BadType(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "datagram too short"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message into a datagram payload.
pub fn encode_message(msg: &WireMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(128);
    buf.put_u8(WIRE_VERSION);
    match msg {
        WireMessage::Data(d) => {
            buf.put_u8(TYPE_DATA);
            buf.put_u64(d.seqno);
            buf.put_f64(d.timestamp);
            buf.put_f64(d.current_rate);
            buf.put_f64(d.max_rtt);
            buf.put_u64(d.feedback_round);
            buf.put_u8(u8::from(d.slowstart));
            put_opt_u64(&mut buf, d.clr.map(|c| c.0));
            match &d.rtt_echo {
                Some(e) => {
                    buf.put_u8(1);
                    buf.put_u64(e.receiver.0);
                    buf.put_f64(e.echo_timestamp);
                    buf.put_f64(e.echo_delay);
                }
                None => buf.put_u8(0),
            }
            match &d.suppression {
                Some(s) => {
                    buf.put_u8(1);
                    buf.put_u64(s.receiver.0);
                    buf.put_f64(s.rate);
                }
                None => buf.put_u8(0),
            }
            buf.put_u32(d.size);
        }
        WireMessage::Feedback(fb) => {
            buf.put_u8(TYPE_FEEDBACK);
            buf.put_u64(fb.receiver.0);
            buf.put_f64(fb.timestamp);
            buf.put_f64(fb.echo_timestamp);
            buf.put_f64(fb.echo_delay);
            buf.put_f64(if fb.calculated_rate.is_finite() {
                fb.calculated_rate
            } else {
                -1.0
            });
            buf.put_f64(fb.loss_event_rate);
            buf.put_f64(fb.receive_rate);
            buf.put_f64(fb.rtt);
            buf.put_u8(u8::from(fb.has_rtt_measurement));
            buf.put_u64(fb.feedback_round);
            buf.put_u8(u8::from(fb.leaving));
        }
    }
    buf.freeze()
}

fn put_opt_u64(buf: &mut BytesMut, v: Option<u64>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_u64(x);
        }
        None => buf.put_u8(0),
    }
}

/// Decodes a datagram payload.
pub fn decode_message(mut data: &[u8]) -> Result<WireMessage, WireError> {
    if data.len() < 2 {
        return Err(WireError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let msg_type = data.get_u8();
    match msg_type {
        TYPE_DATA => {
            // Fixed part: 8+8+8+8+8+1 = 41, plus option tags handled below.
            if data.remaining() < 41 {
                return Err(WireError::Truncated);
            }
            let seqno = data.get_u64();
            let timestamp = data.get_f64();
            let current_rate = data.get_f64();
            let max_rtt = data.get_f64();
            let feedback_round = data.get_u64();
            let slowstart = data.get_u8() != 0;
            let clr = get_opt_u64(&mut data)?.map(ReceiverId);
            let rtt_echo = {
                if data.remaining() < 1 {
                    return Err(WireError::Truncated);
                }
                if data.get_u8() == 1 {
                    if data.remaining() < 24 {
                        return Err(WireError::Truncated);
                    }
                    Some(RttEcho {
                        receiver: ReceiverId(data.get_u64()),
                        echo_timestamp: data.get_f64(),
                        echo_delay: data.get_f64(),
                    })
                } else {
                    None
                }
            };
            let suppression = {
                if data.remaining() < 1 {
                    return Err(WireError::Truncated);
                }
                if data.get_u8() == 1 {
                    if data.remaining() < 16 {
                        return Err(WireError::Truncated);
                    }
                    Some(SuppressionEcho {
                        receiver: ReceiverId(data.get_u64()),
                        rate: data.get_f64(),
                    })
                } else {
                    None
                }
            };
            if data.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            let size = data.get_u32();
            Ok(WireMessage::Data(DataPacket {
                seqno,
                timestamp,
                current_rate,
                max_rtt,
                feedback_round,
                slowstart,
                clr,
                rtt_echo,
                suppression,
                size,
            }))
        }
        TYPE_FEEDBACK => {
            if data.remaining() < 8 * 8 + 2 + 8 {
                return Err(WireError::Truncated);
            }
            let receiver = ReceiverId(data.get_u64());
            let timestamp = data.get_f64();
            let echo_timestamp = data.get_f64();
            let echo_delay = data.get_f64();
            let raw_rate = data.get_f64();
            let calculated_rate = if raw_rate < 0.0 {
                f64::INFINITY
            } else {
                raw_rate
            };
            let loss_event_rate = data.get_f64();
            let receive_rate = data.get_f64();
            let rtt = data.get_f64();
            let has_rtt_measurement = data.get_u8() != 0;
            let feedback_round = data.get_u64();
            let leaving = data.get_u8() != 0;
            Ok(WireMessage::Feedback(FeedbackPacket {
                receiver,
                timestamp,
                echo_timestamp,
                echo_delay,
                calculated_rate,
                loss_event_rate,
                receive_rate,
                rtt,
                has_rtt_measurement,
                feedback_round,
                leaving,
            }))
        }
        other => Err(WireError::BadType(other)),
    }
}

fn get_opt_u64(data: &mut &[u8]) -> Result<Option<u64>, WireError> {
    if data.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    if data.get_u8() == 1 {
        if data.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        Ok(Some(data.get_u64()))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_data() -> DataPacket {
        DataPacket {
            seqno: 99,
            timestamp: 12.5,
            current_rate: 200_000.0,
            max_rtt: 0.25,
            feedback_round: 7,
            slowstart: true,
            clr: Some(ReceiverId(3)),
            rtt_echo: Some(RttEcho {
                receiver: ReceiverId(3),
                echo_timestamp: 11.0,
                echo_delay: 0.004,
            }),
            suppression: Some(SuppressionEcho {
                receiver: ReceiverId(5),
                rate: 80_000.0,
            }),
            size: 1000,
        }
    }

    fn sample_feedback() -> FeedbackPacket {
        FeedbackPacket {
            receiver: ReceiverId(11),
            timestamp: 5.5,
            echo_timestamp: 5.2,
            echo_delay: 0.001,
            calculated_rate: 90_000.0,
            loss_event_rate: 0.02,
            receive_rate: 110_000.0,
            rtt: 0.06,
            has_rtt_measurement: true,
            feedback_round: 7,
            leaving: false,
        }
    }

    #[test]
    fn data_round_trip() {
        let msg = WireMessage::Data(sample_data());
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn data_round_trip_without_options() {
        let mut d = sample_data();
        d.clr = None;
        d.rtt_echo = None;
        d.suppression = None;
        let msg = WireMessage::Data(d);
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn feedback_round_trip_including_infinite_rate() {
        let mut fb = sample_feedback();
        fb.calculated_rate = f64::INFINITY;
        let msg = WireMessage::Feedback(fb);
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncated_and_garbage_inputs_are_rejected() {
        let bytes = encode_message(&WireMessage::Data(sample_data()));
        for len in 0..bytes.len() {
            assert!(
                decode_message(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
        assert_eq!(decode_message(&[9, 1, 0, 0]), Err(WireError::BadVersion(9)));
        assert_eq!(decode_message(&[1, 77, 0, 0]), Err(WireError::BadType(77)));
    }

    proptest! {
        #[test]
        fn feedback_encoding_round_trips(
            receiver in 0u64..1_000_000,
            timestamp in 0.0f64..1e6,
            echo_timestamp in 0.0f64..1e6,
            echo_delay in 0.0f64..10.0,
            rate in 1.0f64..1e9,
            loss in 0.0f64..1.0,
            recv_rate in 0.0f64..1e9,
            rtt in 0.0001f64..10.0,
            has_rtt in any::<bool>(),
            round in 0u64..1_000_000,
            leaving in any::<bool>(),
        ) {
            let fb = FeedbackPacket {
                receiver: ReceiverId(receiver),
                timestamp,
                echo_timestamp,
                echo_delay,
                calculated_rate: rate,
                loss_event_rate: loss,
                receive_rate: recv_rate,
                rtt,
                has_rtt_measurement: has_rtt,
                feedback_round: round,
                leaving,
            };
            let msg = WireMessage::Feedback(fb);
            prop_assert_eq!(decode_message(&encode_message(&msg)).unwrap(), msg);
        }

        #[test]
        fn data_encoding_round_trips(
            seqno in 0u64..u64::MAX / 2,
            timestamp in 0.0f64..1e6,
            rate in 1.0f64..1e9,
            max_rtt in 0.001f64..10.0,
            round in 0u64..1_000_000,
            slowstart in any::<bool>(),
            clr in proptest::option::of(0u64..1000),
            size in 1u32..65_000,
        ) {
            let d = DataPacket {
                seqno,
                timestamp,
                current_rate: rate,
                max_rtt,
                feedback_round: round,
                slowstart,
                clr: clr.map(ReceiverId),
                rtt_echo: None,
                suppression: None,
                size,
            };
            let msg = WireMessage::Data(d);
            prop_assert_eq!(decode_message(&encode_message(&msg)).unwrap(), msg);
        }
    }
}
