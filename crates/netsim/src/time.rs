//! Simulation time.
//!
//! Time is represented as seconds since simulation start in an `f64` wrapped
//! in [`SimTime`].  The wrapper provides a total order (NaN is rejected at
//! construction) so times can be used as keys in the event queue, plus the
//! small amount of arithmetic the simulator needs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.  Panics on NaN or negative values.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative, got {secs}");
        SimTime(secs)
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Saturating subtraction returning a duration in seconds (>= 0).
    pub fn saturating_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so partial_cmp is always Some.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.5);
        assert!(a < b);
        assert_eq!(b - a, 1.5);
        assert_eq!((a + 0.5).as_secs(), 1.5);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn saturating_since_never_negative() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.saturating_since(b), 0.0);
        assert_eq!(b.saturating_since(a), 1.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn add_assign_works() {
        let mut t = SimTime::from_secs(1.0);
        t += 0.25;
        assert_eq!(t.as_secs(), 1.25);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500000s");
    }
}
