//! Hybrid-vs-packet equivalence: replacing the bulk of a session's receiver
//! population with the fluid tier must not change which receiver is elected
//! CLR, and must track the pure packet-level cohort's throughput within the
//! stated tolerance (25% on the steady-state mean — the two runs see
//! different event interleavings, so their random loss draws differ).

use netsim::prelude::*;
use proptest::prelude::*;
use tfmcc_agents::population::{FluidSpec, PopulationSpec};
use tfmcc_agents::session::{TfmccSession, TfmccSessionBuilder};
use tfmcc_model::population::Dist;
use tfmcc_proto::packets::ReceiverId;

/// Star topology shared by both runs: three cohort legs (leg 0 is clearly
/// the lossiest, so its receiver must be the CLR) plus a clean leg the
/// fluid population attaches to in the hybrid run.
fn build_star(sim: &mut Simulator) -> Star {
    let legs = vec![
        StarLeg::clean(1_250_000.0, 0.03).with_downstream_loss(0.05),
        StarLeg::clean(1_250_000.0, 0.02).with_downstream_loss(0.02),
        StarLeg::clean(1_250_000.0, 0.02).with_downstream_loss(0.01),
        StarLeg::clean(1_250_000.0, 0.02),
    ];
    star(sim, &StarConfig::default(), &legs)
}

fn cohort(st: &Star) -> Vec<PopulationSpec> {
    vec![
        PopulationSpec::packet(st.receivers[0]),
        PopulationSpec::packet(st.receivers[1]),
        PopulationSpec::packet(st.receivers[2]),
    ]
}

/// A fluid population whose calculated rates sit safely above the cohort's
/// lossiest receiver, so CLR election must stay within the cohort.
fn bulk_population(node: NodeId, count: u64) -> PopulationSpec {
    PopulationSpec::Fluid(FluidSpec::new(
        node,
        count,
        Dist::Uniform {
            lo: 0.001,
            hi: 0.008,
        },
        Dist::Uniform { lo: 0.04, hi: 0.08 },
    ))
}

fn run(seed: u64, populations: impl Fn(&Star) -> Vec<PopulationSpec>) -> (Simulator, TfmccSession) {
    let mut sim = Simulator::new(seed);
    let st = build_star(&mut sim);
    let specs = populations(&st);
    let session = TfmccSessionBuilder::default().build_population(&mut sim, st.sender, &specs);
    sim.run_until(SimTime::from_secs(120.0));
    (sim, session)
}

/// The tentpole guarantee: at 10⁴ receivers the hybrid session elects the
/// identical CLR and tracks the pure packet-level cohort's throughput.
#[test]
fn hybrid_matches_pure_packet_run_at_1e4() {
    let (pure_sim, pure) = run(4242, cohort);
    let (hybrid_sim, hybrid) = run(4242, |st| {
        let mut specs = cohort(st);
        specs.push(bulk_population(st.receivers[3], 10_000));
        specs
    });

    // Identical CLR: the lossiest cohort receiver in both runs.
    let pure_clr = pure.sender_agent(&pure_sim).protocol().clr();
    let hybrid_clr = hybrid.sender_agent(&hybrid_sim).protocol().clr();
    assert_eq!(pure_clr, Some(ReceiverId(1)), "pure run CLR");
    assert_eq!(hybrid_clr, pure_clr, "hybrid run must elect the same CLR");

    // Throughput within tolerance over the steady-state window.
    let pure_rate = pure.receiver_throughput(&pure_sim, 0, 60.0, 115.0);
    let hybrid_rate = hybrid.receiver_throughput(&hybrid_sim, 0, 60.0, 115.0);
    assert!(pure_rate > 5_000.0, "pure run starved: {pure_rate}");
    let rel = (hybrid_rate - pure_rate).abs() / pure_rate;
    assert!(
        rel <= 0.25,
        "hybrid throughput diverged: pure {pure_rate} vs hybrid {hybrid_rate} ({:.0}%)",
        rel * 100.0
    );

    // The fluid tier is actually represented: the sender's population count
    // covers the whole 10⁴ bulk plus the cohort.
    let population = hybrid
        .sender_agent(&hybrid_sim)
        .protocol()
        .session_population();
    assert!(
        population >= 10_000 + 3,
        "census must surface all fluid receivers, got {population}"
    );
    // And it reported at O(bins)/round, not O(count): a 120 s run has a few
    // hundred rounds at most, each contributing at most `bins` reports.
    let fluid = hybrid.fluid_agent(&hybrid_sim, 0);
    assert!(fluid.reports_sent() > 0, "fluid tier never reported");
    assert!(
        fluid.reports_sent() < 4_000,
        "fluid tier reports should scale with bins × rounds, got {}",
        fluid.reports_sent()
    );
}

/// The equivalence holds across seeds (different loss realisations).
#[test]
fn clr_identity_is_seed_independent() {
    for seed in [1, 99, 123_456] {
        let (pure_sim, pure) = run(seed, cohort);
        let (hybrid_sim, hybrid) = run(seed, |st| {
            let mut specs = cohort(st);
            specs.push(bulk_population(st.receivers[3], 10_000));
            specs
        });
        assert_eq!(
            pure.sender_agent(&pure_sim).protocol().clr(),
            hybrid.sender_agent(&hybrid_sim).protocol().clr(),
            "seed {seed}: CLR diverged"
        );
    }
}

proptest! {
    /// Over a range of fluid loss/RTT distributions (all with calculated
    /// rates above the cohort's lossiest leg), the CLR stays in the packet
    /// cohort and the census covers the whole population.
    #[test]
    fn fluid_distributions_never_steal_the_clr(
        loss_lo in 0.0005f64..0.004,
        loss_spread in 0.0f64..0.004,
        rtt_lo in 0.02f64..0.06,
        rtt_spread in 0.0f64..0.04,
        count in 100u64..400,
    ) {
        let mut sim = Simulator::new(77);
        let st = build_star(&mut sim);
        let mut specs = cohort(&st);
        specs.push(PopulationSpec::Fluid(FluidSpec::new(
            st.receivers[3],
            count,
            Dist::Uniform { lo: loss_lo, hi: loss_lo + loss_spread },
            Dist::Uniform { lo: rtt_lo, hi: rtt_lo + rtt_spread },
        )));
        let session = TfmccSessionBuilder::default().build_population(&mut sim, st.sender, &specs);
        sim.run_until(SimTime::from_secs(40.0));
        let sender = session.sender_agent(&sim).protocol();
        let clr = sender.clr().expect("a CLR is elected");
        prop_assert!(
            clr.0 <= 3,
            "CLR must stay in the packet cohort, got {clr:?}"
        );
        prop_assert!(sender.session_population() > count);
    }
}
