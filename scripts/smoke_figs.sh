#!/usr/bin/env bash
# Quick-scale smoke of every experiment binary: run each fig* bin on the
# parallel sweep runner (--quick --threads 2), write its CSV and JSON into
# OUT_DIR, and fail loudly if any binary exits non-zero or if any expected
# output file is missing or empty.
#
# Usage: scripts/smoke_figs.sh [OUT_DIR]   (default: out/figs)
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${1:-out/figs}"
mkdir -p "$out_dir"

bins=()
for src in crates/tfmcc-experiments/src/bin/fig*.rs; do
    bins+=("$(basename "$src" .rs)")
done
if [ "${#bins[@]}" -eq 0 ]; then
    echo "error: no fig* binaries found" >&2
    exit 1
fi
# Guard against the glob silently losing key scenarios: the large-scale
# churn workload, the multi-session fairness workload and the
# cross-protocol fairness matrix must always be part of the smoke.
for required in fig22_churn fig23_intertfmcc fig24_fairness_matrix; do
    if ! printf '%s\n' "${bins[@]}" | grep -qx "$required"; then
        echo "error: $required missing from the experiment binaries" >&2
        exit 1
    fi
done
echo "smoking ${#bins[@]} experiment binaries into $out_dir"

# One build up front so per-bin timing below is pure runtime.
cargo build --release --quiet -p tfmcc-experiments

status=0
for bin in "${bins[@]}"; do
    csv="$out_dir/$bin.csv"
    json="$out_dir/$bin.json"
    rm -f "$csv" "$json"
    if ! cargo run --release --quiet -p tfmcc-experiments --bin "$bin" -- \
        --quick --threads 2 --out "$json" > "$csv"; then
        echo "FAIL $bin (non-zero exit)" >&2
        status=1
        continue
    fi
    missing=""
    for f in "$csv" "$json"; do
        if ! [ -e "$f" ]; then
            missing+=" $(basename "$f") (missing)"
        elif ! [ -s "$f" ]; then
            missing+=" $(basename "$f") (empty)"
        fi
    done
    if [ -n "$missing" ]; then
        echo "FAIL $bin:$missing" >&2
        status=1
        continue
    fi
    echo "ok   $bin"
done

# Second-scheduler smoke: rerun the churn workload, the multi-session
# fairness workload and the cross-protocol fairness matrix under the
# binary-heap event scheduler (the fallback to the calendar-queue default).
# Both schedulers must produce byte-identical figures (the netsim
# determinism contract), so each heap run is compared against the default
# run's JSON, keeping the fallback scheduler exercised and its equivalence
# enforced end to end — including across concurrent TFMCC sessions and
# gentle-RED/CoDel probabilistic drops.
for bin in fig22_churn fig23_intertfmcc fig24_fairness_matrix; do
    heap_json="$out_dir/$bin.heap.json"
    heap_csv="$out_dir/$bin.heap.csv"
    rm -f "$heap_json" "$heap_csv"
    if ! TFMCC_SCHEDULER=heap cargo run --release --quiet -p tfmcc-experiments --bin "$bin" -- \
        --quick --threads 2 --out "$heap_json" > "$heap_csv"; then
        echo "FAIL $bin under TFMCC_SCHEDULER=heap (non-zero exit)" >&2
        status=1
    elif ! cmp -s "$out_dir/$bin.json" "$heap_json"; then
        echo "FAIL $bin: heap-scheduler output differs from the calendar run" >&2
        status=1
    else
        echo "ok   $bin (heap scheduler, byte-identical)"
    fi
done

# Domain-sharding smoke: rerun the churn workload sharded across 4
# bottleneck domains (worker threads + conservative lookahead windows, see
# DESIGN.md "Parallel domain sharding") and byte-compare it with the
# single-queue run above.  Sharded execution must reproduce the classic
# run bit for bit, so any drift in the parallel core fails the smoke.
for bin in fig22_churn; do
    dom_json="$out_dir/$bin.domains4.json"
    dom_csv="$out_dir/$bin.domains4.csv"
    rm -f "$dom_json" "$dom_csv"
    if ! TFMCC_DOMAINS=4 cargo run --release --quiet -p tfmcc-experiments --bin "$bin" -- \
        --quick --threads 2 --out "$dom_json" > "$dom_csv"; then
        echo "FAIL $bin under TFMCC_DOMAINS=4 (non-zero exit)" >&2
        status=1
    elif ! cmp -s "$out_dir/$bin.json" "$dom_json"; then
        echo "FAIL $bin: 4-domain output differs from the single-queue run" >&2
        status=1
    else
        echo "ok   $bin (4 domains, byte-identical)"
    fi
done
exit "$status"
