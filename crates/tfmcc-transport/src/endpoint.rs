//! Blocking UDP endpoints driving the sans-I/O protocol core.
//!
//! [`UdpSenderEndpoint`] paces data packets to a set of receiver addresses
//! (unicast fan-out emulating the multicast group) and processes incoming
//! reports; [`UdpReceiverEndpoint`] consumes data packets, manages the single
//! feedback timer and unicasts reports back to the sender.  Both run their
//! socket loop on a background thread and expose a small control surface
//! protected by a `parking_lot` mutex.

use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender as ChannelSender};
use parking_lot::Mutex;

use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::ReceiverId;
use tfmcc_proto::receiver::TfmccReceiver;
use tfmcc_proto::sender::TfmccSender;

use crate::wire::{decode_message, encode_message, WireMessage};

/// Shared view of the sender's state for monitoring.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderSnapshot {
    /// Current sending rate in bytes/second.
    pub rate: f64,
    /// Data packets sent so far.
    pub packets_sent: u64,
    /// Feedback packets processed so far.
    pub feedback_received: u64,
}

/// A TFMCC sender bound to a UDP socket.
pub struct UdpSenderEndpoint {
    snapshot: Arc<Mutex<SenderSnapshot>>,
    stop: ChannelSender<()>,
    handle: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl UdpSenderEndpoint {
    /// Binds a sender to `bind` and starts transmitting to `receivers`.
    pub fn start(
        bind: SocketAddr,
        receivers: Vec<SocketAddr>,
        config: TfmccConfig,
    ) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        let local_addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(2)))?;
        let snapshot = Arc::new(Mutex::new(SenderSnapshot {
            rate: config.initial_rate(),
            ..SenderSnapshot::default()
        }));
        let shared = Arc::clone(&snapshot);
        let (stop, stop_rx) = bounded::<()>(1);
        let handle = std::thread::spawn(move || {
            let mut sender = TfmccSender::new(config);
            // tfmcc-lint: allow(D002, reason = "real-time UDP transport thread: the wall clock IS the protocol clock here, and nothing derived from it enters a simulation")
            let epoch = Instant::now();
            let mut next_send = 0.0_f64;
            let mut buf = [0u8; 2048];
            loop {
                if stop_rx.try_recv().is_ok() {
                    break;
                }
                let now = epoch.elapsed().as_secs_f64();
                if now >= next_send {
                    let header = sender.next_data(now);
                    let datagram = encode_message(&WireMessage::Data(header));
                    for addr in &receivers {
                        let _ = socket.send_to(&datagram, addr);
                    }
                    {
                        let mut snap = shared.lock();
                        snap.packets_sent += 1;
                        snap.rate = sender.current_rate();
                    }
                    next_send = now + sender.packet_interval();
                }
                match socket.recv_from(&mut buf) {
                    Ok((len, _from)) => {
                        if let Ok(WireMessage::Feedback(fb)) = decode_message(&buf[..len]) {
                            let now = epoch.elapsed().as_secs_f64();
                            sender.on_feedback(now, &fb);
                            shared.lock().feedback_received += 1;
                        }
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        });
        Ok(UdpSenderEndpoint {
            snapshot,
            stop,
            handle: Some(handle),
            local_addr,
        })
    }

    /// The sender's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the sender's progress.
    pub fn snapshot(&self) -> SenderSnapshot {
        *self.snapshot.lock()
    }

    /// Stops the background thread.
    pub fn shutdown(mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdpSenderEndpoint {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Shared view of a receiver's state for monitoring.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReceiverSnapshot {
    /// Data packets received.
    pub packets_received: u64,
    /// Feedback packets sent.
    pub feedback_sent: u64,
    /// Most recent loss event rate estimate.
    pub loss_event_rate: f64,
    /// Most recent RTT estimate in seconds.
    pub rtt: f64,
}

/// A TFMCC receiver bound to a UDP socket.
pub struct UdpReceiverEndpoint {
    snapshot: Arc<Mutex<ReceiverSnapshot>>,
    stop: ChannelSender<()>,
    handle: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl UdpReceiverEndpoint {
    /// Binds a receiver to `bind`, reporting to the sender at `sender_addr`.
    pub fn start(
        bind: SocketAddr,
        sender_addr: SocketAddr,
        id: ReceiverId,
        config: TfmccConfig,
    ) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        let local_addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(2)))?;
        let snapshot = Arc::new(Mutex::new(ReceiverSnapshot::default()));
        let shared = Arc::clone(&snapshot);
        let (stop, stop_rx) = bounded::<()>(1);
        let handle = std::thread::spawn(move || {
            let mut receiver = TfmccReceiver::new(id, config);
            // tfmcc-lint: allow(D002, reason = "real-time UDP transport thread: the wall clock IS the protocol clock here, and nothing derived from it enters a simulation")
            let epoch = Instant::now();
            let mut buf = [0u8; 2048];
            loop {
                if stop_rx.try_recv().is_ok() {
                    break;
                }
                let now = epoch.elapsed().as_secs_f64();
                // Fire the protocol feedback timer if due.
                if let Some(deadline) = receiver.next_timer() {
                    if now >= deadline {
                        if let Some(fb) = receiver.on_timer(now) {
                            let datagram = encode_message(&WireMessage::Feedback(fb));
                            let _ = socket.send_to(&datagram, sender_addr);
                            shared.lock().feedback_sent += 1;
                        }
                    }
                }
                match socket.recv_from(&mut buf) {
                    Ok((len, _from)) => {
                        if let Ok(WireMessage::Data(header)) = decode_message(&buf[..len]) {
                            let now = epoch.elapsed().as_secs_f64();
                            let reply = receiver.on_data(now, &header);
                            let mut snap = shared.lock();
                            snap.packets_received += 1;
                            snap.loss_event_rate = receiver.loss_event_rate();
                            snap.rtt = receiver.rtt();
                            drop(snap);
                            if let Some(fb) = reply {
                                let datagram = encode_message(&WireMessage::Feedback(fb));
                                let _ = socket.send_to(&datagram, sender_addr);
                                shared.lock().feedback_sent += 1;
                            }
                        }
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        });
        Ok(UdpReceiverEndpoint {
            snapshot,
            stop,
            handle: Some(handle),
            local_addr,
        })
    }

    /// The receiver's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the receiver's progress.
    pub fn snapshot(&self) -> ReceiverSnapshot {
        *self.snapshot.lock()
    }

    /// Stops the background thread.
    pub fn shutdown(mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdpReceiverEndpoint {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn localhost_any() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn loopback_session_exchanges_data_and_feedback() {
        // Start two receivers first (ephemeral ports), then the sender
        // pointed at them.
        let cfg = TfmccConfig::default();
        // A placeholder sender address is needed before the sender exists;
        // bind the sender socket first by creating it with no receivers, then
        // receivers, then a real sender. Simpler: reserve the sender port.
        let reserve = UdpSocket::bind(localhost_any()).unwrap();
        let sender_addr = reserve.local_addr().unwrap();
        drop(reserve);

        let r1 =
            UdpReceiverEndpoint::start(localhost_any(), sender_addr, ReceiverId(1), cfg.clone())
                .unwrap();
        let r2 =
            UdpReceiverEndpoint::start(localhost_any(), sender_addr, ReceiverId(2), cfg.clone())
                .unwrap();
        let sender =
            UdpSenderEndpoint::start(sender_addr, vec![r1.local_addr(), r2.local_addr()], cfg)
                .unwrap();

        // Let the session run briefly.  The initial rate is 2 packets/s and
        // the slowstart feedback window is ~3 s, so five seconds guarantees
        // data flow plus at least one feedback round.
        std::thread::sleep(Duration::from_millis(5000));
        let s = sender.snapshot();
        let s1 = r1.snapshot();
        let s2 = r2.snapshot();
        assert!(
            s.packets_sent >= 3,
            "sender sent only {} packets",
            s.packets_sent
        );
        assert!(
            s1.packets_received >= 2 && s2.packets_received >= 2,
            "receivers got {} / {} packets",
            s1.packets_received,
            s2.packets_received
        );
        assert!(
            s.feedback_received >= 1,
            "sender never processed feedback: {s:?}"
        );
        sender.shutdown();
        r1.shutdown();
        r2.shutdown();
    }
}
