//! Monte-Carlo simulation of a single feedback round (paper Figures 2, 3, 5
//! and 6).
//!
//! The model matches the paper's worst-case analysis: every receiver wants to
//! report (e.g. congestion suddenly affects the whole group), the sender
//! echoes the lowest report received so far, and an echo reaches the other
//! receivers one network delay `D` after the report was sent.  A receiver
//! whose timer fires at `t` is suppressed if, among the reports sent at or
//! before `t − D`, the lowest echoed value satisfies the cancellation rule.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tfmcc_proto::feedback::FeedbackPlanner;

/// One receiver participating in a feedback round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundReceiver {
    /// The value this receiver would report, expressed as the ratio of its
    /// calculated rate to the current sending rate (0 = most urgent).
    pub rate_ratio: f64,
}

/// Result of simulating one feedback round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// `(send time, rate ratio)` of every report that was actually sent,
    /// in time order.
    pub responses: Vec<(f64, f64)>,
    /// Number of receivers whose timers were suppressed.
    pub suppressed: usize,
    /// Time of the first report, if any.
    pub first_response_at: Option<f64>,
    /// Lowest rate ratio among the sent reports, if any.
    pub best_reported: Option<f64>,
    /// True minimum rate ratio over the whole receiver set.
    pub true_minimum: f64,
}

impl RoundOutcome {
    /// Relative error of the best reported value versus the true minimum.
    /// `None` if nobody responded.
    pub fn quality(&self) -> Option<f64> {
        let best = self.best_reported?;
        if self.true_minimum <= 0.0 {
            return Some(best - self.true_minimum);
        }
        Some((best - self.true_minimum) / self.true_minimum)
    }

    /// Absolute error of the best reported value versus the true minimum, in
    /// rate-ratio units (fractions of the sending rate).  This is the measure
    /// plotted in paper Figure 6: 0.1 means the best report was 10 % of the
    /// sending rate above the true minimum.  `None` if nobody responded.
    pub fn quality_absolute(&self) -> Option<f64> {
        Some(self.best_reported? - self.true_minimum)
    }
}

/// A feedback-round simulator.
#[derive(Debug, Clone)]
pub struct FeedbackRound {
    /// Timer and cancellation parameters.
    pub planner: FeedbackPlanner,
    /// Feedback window `T` in seconds.
    pub window: f64,
    /// Network delay after which a sent report suppresses others, in seconds
    /// (for unicast feedback with multicast echo this is roughly one RTT).
    pub network_delay: f64,
}

impl FeedbackRound {
    /// Creates a round simulator.
    pub fn new(planner: FeedbackPlanner, window: f64, network_delay: f64) -> Self {
        assert!(window > 0.0 && network_delay >= 0.0);
        FeedbackRound {
            planner,
            window,
            network_delay,
        }
    }

    /// Simulates one round for the given receivers.
    pub fn simulate(&self, receivers: &[RoundReceiver], seed: u64) -> RoundOutcome {
        assert!(!receivers.is_empty(), "a round needs at least one receiver");
        let mut rng = SmallRng::seed_from_u64(seed);
        // Draw timers.
        let mut timers: Vec<(f64, f64)> = receivers
            .iter()
            .map(|r| {
                let uniform: f64 = rng.gen_range(1e-12..=1.0);
                let t = self.planner.timer(r.rate_ratio, self.window, uniform);
                (t, r.rate_ratio)
            })
            .collect();
        timers.sort_by(|a, b| a.partial_cmp(b).expect("timers are never NaN"));
        let true_minimum = receivers
            .iter()
            .map(|r| r.rate_ratio)
            .fold(f64::INFINITY, f64::min);

        let mut responses: Vec<(f64, f64)> = Vec::new();
        let mut suppressed = 0usize;
        for &(t, value) in &timers {
            // Lowest value among reports the sender has echoed and that had
            // time to propagate back to this receiver.
            let echoed_min = responses
                .iter()
                .filter(|(sent_at, _)| sent_at + self.network_delay <= t)
                .map(|&(_, v)| v)
                .fold(f64::INFINITY, f64::min);
            let cancel = echoed_min.is_finite() && self.planner.should_cancel(value, echoed_min);
            if cancel {
                suppressed += 1;
            } else {
                responses.push((t, value));
            }
        }
        let first_response_at = responses.first().map(|&(t, _)| t);
        let best_reported = responses
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            });
        RoundOutcome {
            responses,
            suppressed,
            first_response_at,
            best_reported,
            true_minimum,
        }
    }

    /// Convenience: simulates `runs` rounds with uniformly distributed rate
    /// ratios in `[0, 1]` over `n` receivers (the distribution used for the
    /// paper's Figures 2, 5 and 6) and returns the per-run outcomes.
    pub fn simulate_uniform(&self, n: usize, runs: usize, seed: u64) -> Vec<RoundOutcome> {
        self.simulate_uniform_range(n, runs, 0.0, 1.0, seed)
    }

    /// Like [`Self::simulate_uniform`] but with rate ratios drawn uniformly
    /// from `[lo, hi]` — used for the worst-case congestion scenarios where
    /// every receiver reports a similar low rate (paper Figure 3).
    pub fn simulate_uniform_range(
        &self,
        n: usize,
        runs: usize,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Vec<RoundOutcome> {
        assert!(lo <= hi);
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..runs)
            .map(|i| {
                let receivers: Vec<RoundReceiver> = (0..n)
                    .map(|_| RoundReceiver {
                        rate_ratio: if lo == hi { lo } else { rng.gen_range(lo..=hi) },
                    })
                    .collect();
                self.simulate(&receivers, seed.wrapping_add(i as u64 + 1))
            })
            .collect()
    }

    /// Convenience: the paper's worst case where every receiver reports the
    /// same (saturated) value — used for the implosion analysis of Figure 3.
    pub fn simulate_worst_case(&self, n: usize, runs: usize, seed: u64) -> Vec<RoundOutcome> {
        let receivers = vec![RoundReceiver { rate_ratio: 0.0 }; n];
        (0..runs)
            .map(|i| self.simulate(&receivers, seed.wrapping_add(i as u64 + 1)))
            .collect()
    }
}

/// Mean number of responses over a set of outcomes.
pub fn mean_responses(outcomes: &[RoundOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes
        .iter()
        .map(|o| o.responses.len() as f64)
        .sum::<f64>()
        / outcomes.len() as f64
}

/// Mean time of the first response over a set of outcomes (rounds where
/// nobody responded are skipped).
pub fn mean_first_response(outcomes: &[RoundOutcome]) -> f64 {
    let times: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.first_response_at)
        .collect();
    if times.is_empty() {
        0.0
    } else {
        times.iter().sum::<f64>() / times.len() as f64
    }
}

/// Mean feedback quality (relative error of the best report versus the true
/// minimum) over a set of outcomes.
pub fn mean_quality(outcomes: &[RoundOutcome]) -> f64 {
    let vals: Vec<f64> = outcomes.iter().filter_map(|o| o.quality()).collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Mean absolute feedback quality (paper Figure 6 measure) over a set of
/// outcomes.
pub fn mean_quality_absolute(outcomes: &[RoundOutcome]) -> f64 {
    let vals: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.quality_absolute())
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfmcc_proto::feedback::BiasMethod;
    use tfmcc_proto::prelude::TfmccConfig;

    fn planner(method: BiasMethod, alpha: f64) -> FeedbackPlanner {
        let mut p = FeedbackPlanner::from_config(&TfmccConfig::default());
        p.method = method;
        p.cancel_alpha = alpha;
        p
    }

    fn round(method: BiasMethod, alpha: f64) -> FeedbackRound {
        // Window of 6 network delays (TFMCC's T = 6·RTT_max) with a delay of
        // one unit, so the suppression interval T' = (1-δ)·T is the paper's
        // 4 RTTs.
        FeedbackRound::new(planner(method, alpha), 6.0, 1.0)
    }

    #[test]
    fn single_receiver_always_responds() {
        let r = round(BiasMethod::ModifiedOffset, 0.1);
        let out = r.simulate(&[RoundReceiver { rate_ratio: 0.3 }], 1);
        assert_eq!(out.responses.len(), 1);
        assert_eq!(out.suppressed, 0);
        assert_eq!(out.best_reported, Some(0.3));
        assert_eq!(out.quality(), Some(0.0));
    }

    #[test]
    fn suppression_prevents_implosion_in_worst_case() {
        let r = round(BiasMethod::ModifiedOffset, 1.0);
        for &n in &[10usize, 100, 1000] {
            let outcomes = r.simulate_worst_case(n, 5, 42);
            let mean = mean_responses(&outcomes);
            assert!(
                mean < 30.0,
                "n={n}: expected far fewer responses than receivers, got {mean}"
            );
            assert!(mean >= 1.0);
        }
    }

    #[test]
    fn alpha_zero_lets_lowest_rate_receiver_through() {
        // With alpha = 0 a receiver is only suppressed by strictly
        // lower-or-equal echoed values, so the receiver holding the true
        // minimum always reports.
        let r = round(BiasMethod::ModifiedOffset, 0.0);
        let outcomes = r.simulate_uniform(200, 20, 7);
        for o in &outcomes {
            assert_eq!(
                o.best_reported.unwrap(),
                o.true_minimum,
                "lowest receiver must never be suppressed with alpha = 0"
            );
        }
    }

    #[test]
    fn alpha_point_one_keeps_reports_close_to_minimum() {
        // Paper Section 2.5.2: alpha = 0.1 bounds the transient error at 10%.
        let r = round(BiasMethod::ModifiedOffset, 0.1);
        let outcomes = r.simulate_uniform(500, 30, 11);
        for o in &outcomes {
            let q = o.quality().unwrap();
            assert!(q <= 0.1 + 1e-9, "quality {q} exceeds the 10% bound");
        }
    }

    #[test]
    fn more_cancellation_means_fewer_responses() {
        let strict = round(BiasMethod::ModifiedOffset, 1.0);
        let lenient = round(BiasMethod::ModifiedOffset, 0.0);
        let n = 1000;
        let strict_mean = mean_responses(&strict.simulate_worst_case(n, 10, 3));
        let lenient_mean = mean_responses(&lenient.simulate_uniform(n, 10, 3));
        // With every receiver reporting the same value, alpha=1 cancels almost
        // everything; with alpha=0 and distinct values many more get through.
        assert!(strict_mean < lenient_mean);
    }

    #[test]
    fn biased_timers_report_better_values_than_unbiased() {
        // Paper Figure 6: the offset methods report rates considerably closer
        // to the true minimum than plain exponential timers.  The comparison
        // is made with cancel-on-first-feedback (alpha = 1), which isolates
        // the effect of the timer bias itself.
        let n = 1000;
        let runs = 40;
        let unbiased = round(BiasMethod::Unbiased, 1.0);
        let biased = round(BiasMethod::ModifiedOffset, 1.0);
        let q_unbiased = mean_quality_absolute(&unbiased.simulate_uniform(n, runs, 5));
        let q_biased = mean_quality_absolute(&biased.simulate_uniform(n, runs, 5));
        assert!(
            q_biased < q_unbiased,
            "biased quality {q_biased} should beat unbiased {q_unbiased}"
        );
        // The unbiased error is substantial (paper: ≈20% of the sending
        // rate), the biased one small (a few percent).
        assert!(q_unbiased > 0.03, "unbiased quality {q_unbiased}");
    }

    #[test]
    fn response_time_decreases_with_receiver_count() {
        // Paper Figure 5: logarithmic decrease of the response time in n.
        let r = round(BiasMethod::ModifiedOffset, 0.1);
        let t_small = mean_first_response(&r.simulate_uniform(10, 30, 9));
        let t_large = mean_first_response(&r.simulate_uniform(5000, 30, 9));
        assert!(
            t_large < t_small,
            "first response with many receivers ({t_large}) should come earlier than with few ({t_small})"
        );
    }

    #[test]
    fn helpers_handle_empty_input() {
        assert_eq!(mean_responses(&[]), 0.0);
        assert_eq!(mean_first_response(&[]), 0.0);
        assert_eq!(mean_quality(&[]), 0.0);
    }
}
