//! Protocol parameters.
//!
//! Every tunable the paper mentions is collected in [`TfmccConfig`], with the
//! paper's defaults.  The configuration is shared by sender and receivers; in
//! a deployment it would be distributed out of band (session description).

use serde::{Deserialize, Serialize};

/// TFMCC protocol parameters (paper Section 2, defaults as published).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TfmccConfig {
    /// Packet size `s` in bytes used in the control equation.
    pub packet_size: u32,
    /// Initial RTT assumed before any measurement, in seconds (paper: 500 ms,
    /// "larger than the highest RTT of any of the receivers").
    pub initial_rtt: f64,
    /// Number of loss intervals kept in the loss history (paper: 8 to 32,
    /// default 8).
    pub loss_history_len: usize,
    /// Estimated upper bound `N` on the receiver-set size used to
    /// parameterise the feedback timers (paper: 10 000).
    pub receiver_set_estimate: f64,
    /// Feedback-timer window `T` as a multiple of the maximum receiver RTT
    /// (paper: `T = 6 · RTT_max` so that the suppression interval
    /// `T' = (1 − δ)·T` is 4 RTTs).
    pub feedback_t_rtt_multiple: f64,
    /// Fraction `δ` of `T` used for the rate-dependent offset bias
    /// (paper: 1/3).
    pub feedback_offset_fraction: f64,
    /// Feedback-cancellation threshold `α`: a timer is cancelled when the
    /// receiver's calculated rate is at least `(1 − α)` times the echoed
    /// rate (paper: 0.1).
    pub feedback_cancel_alpha: f64,
    /// Lower truncation bound of the rate ratio used for biasing: below this
    /// fraction of the sending rate the bias saturates (paper: 0.5).
    pub bias_saturation_ratio: f64,
    /// Upper truncation bound of the rate ratio: above this fraction of the
    /// sending rate no bias is applied (paper: 0.9).
    pub bias_start_ratio: f64,
    /// Number `q` of consecutive data packets that may be lost without
    /// risking a feedback implosion; the feedback window is extended to
    /// `(q + 1) · s / rate` at low sending rates (paper: 2–4, default 3).
    pub low_rate_q: f64,
    /// EWMA weight for RTT samples of the current limiting receiver
    /// (paper: 0.05).
    pub rtt_beta_clr: f64,
    /// EWMA weight for RTT samples of non-CLR receivers (paper: 0.5).
    pub rtt_beta_non_clr: f64,
    /// EWMA weight for one-way-delay RTT adjustments (paper: "smaller decay
    /// factor"; default 0.05).
    pub rtt_beta_one_way: f64,
    /// Slowstart overshoot limit `d`: the target rate is `d` times the
    /// minimum receive rate (paper: 2).
    pub slowstart_multiple: f64,
    /// CLR timeout, in multiples of the feedback delay, after which an
    /// unresponsive CLR is abandoned (paper: 10).
    pub clr_timeout_multiple: f64,
    /// How long (in multiples of the CLR's RTT) the previous CLR is
    /// remembered after a switch-over (paper Appendix C: "a few RTTs";
    /// default 4).  Zero disables the optimisation.
    pub previous_clr_hold_rtts: f64,
    /// Initial sending rate in packets per initial RTT (default: 1, i.e. one
    /// packet per 500 ms until feedback arrives).
    pub initial_packets_per_rtt: f64,
}

impl Default for TfmccConfig {
    fn default() -> Self {
        TfmccConfig {
            packet_size: 1000,
            initial_rtt: 0.5,
            loss_history_len: 8,
            receiver_set_estimate: 10_000.0,
            feedback_t_rtt_multiple: 6.0,
            feedback_offset_fraction: 1.0 / 3.0,
            feedback_cancel_alpha: 0.1,
            bias_saturation_ratio: 0.5,
            bias_start_ratio: 0.9,
            low_rate_q: 3.0,
            rtt_beta_clr: 0.05,
            rtt_beta_non_clr: 0.5,
            rtt_beta_one_way: 0.05,
            slowstart_multiple: 2.0,
            clr_timeout_multiple: 10.0,
            previous_clr_hold_rtts: 4.0,
            initial_packets_per_rtt: 1.0,
        }
    }
}

impl TfmccConfig {
    /// Initial sending rate in bytes per second.
    pub fn initial_rate(&self) -> f64 {
        self.initial_packets_per_rtt * f64::from(self.packet_size) / self.initial_rtt
    }

    /// Loss-interval weights for a history of `len` intervals.
    ///
    /// The paper uses {5, 5, 5, 5, 4, 3, 2, 1} for eight intervals: the most
    /// recent half gets full weight, then the weights fall off linearly.
    pub fn loss_interval_weights(len: usize) -> Vec<f64> {
        assert!(len >= 1);
        let half = len.div_ceil(2);
        (0..len)
            .map(|i| {
                if i < half {
                    half as f64 + 1.0
                } else {
                    (len - i) as f64
                }
            })
            .collect()
    }

    /// The feedback window `T` in seconds given the current maximum receiver
    /// RTT and the current sending rate (includes the low-rate extension of
    /// paper Section 2.5.3).
    pub fn feedback_window(&self, max_rtt: f64, current_rate: f64) -> f64 {
        let base = self.feedback_t_rtt_multiple * max_rtt;
        let low_rate =
            (self.low_rate_q + 1.0) * f64::from(self.packet_size) / current_rate.max(1.0);
        base.max(low_rate)
    }

    /// Basic sanity checks; call once after building a custom configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_size == 0 {
            return Err("packet_size must be positive".into());
        }
        if self.initial_rtt <= 0.0 {
            return Err("initial_rtt must be positive".into());
        }
        if self.loss_history_len < 2 {
            return Err("loss_history_len must be at least 2".into());
        }
        if !(0.0..=1.0).contains(&self.feedback_cancel_alpha) {
            return Err("feedback_cancel_alpha must be in [0, 1]".into());
        }
        if !(0.0..1.0).contains(&self.feedback_offset_fraction) {
            return Err("feedback_offset_fraction must be in [0, 1)".into());
        }
        if self.bias_saturation_ratio >= self.bias_start_ratio {
            return Err("bias_saturation_ratio must be below bias_start_ratio".into());
        }
        if self.receiver_set_estimate <= 1.0 {
            return Err("receiver_set_estimate must exceed 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper() {
        let c = TfmccConfig::default();
        c.validate().unwrap();
        assert_eq!(c.packet_size, 1000);
        assert_eq!(c.initial_rtt, 0.5);
        assert_eq!(c.loss_history_len, 8);
        assert_eq!(c.receiver_set_estimate, 10_000.0);
        assert_eq!(c.feedback_cancel_alpha, 0.1);
        assert_eq!(c.slowstart_multiple, 2.0);
    }

    #[test]
    fn paper_weights_for_eight_intervals() {
        assert_eq!(
            TfmccConfig::loss_interval_weights(8),
            vec![5.0, 5.0, 5.0, 5.0, 4.0, 3.0, 2.0, 1.0]
        );
    }

    #[test]
    fn weights_for_other_lengths_are_monotone() {
        for len in [2usize, 4, 16, 32] {
            let w = TfmccConfig::loss_interval_weights(len);
            assert_eq!(w.len(), len);
            for i in 1..len {
                assert!(w[i] <= w[i - 1], "weights must not increase with age");
            }
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn feedback_window_uses_low_rate_extension() {
        let c = TfmccConfig::default();
        // High rate: window = 6 * max_rtt.
        assert!((c.feedback_window(0.1, 1e6) - 0.6).abs() < 1e-12);
        // Very low rate (100 B/s): (q+1)*s/rate = 4*1000/100 = 40 s > 0.6 s.
        assert!((c.feedback_window(0.1, 100.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn initial_rate_is_one_packet_per_initial_rtt() {
        let c = TfmccConfig::default();
        assert!((c.initial_rate() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = TfmccConfig {
            loss_history_len: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TfmccConfig {
            bias_saturation_ratio: 0.95,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TfmccConfig {
            feedback_cancel_alpha: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = TfmccConfig {
            receiver_set_estimate: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
