//! Figure 22 (beyond the paper): TFMCC under massive receiver churn.
//!
//! The paper's evaluation stops at static receiver sets; this scenario opens
//! the "massive receiver churn" workload from the roadmap.  A single TFMCC
//! session runs over a star of individually delayed 1 Mbit/s legs while a
//! fifth of the receivers continuously cycle through join → leave → rejoin
//! (announcing every departure, restarting with fresh protocol state on
//! every rejoin).  Receiver counts sweep up to 10⁵ at paper scale — the
//! workload the zero-copy fan-out, lazy routing and incremental
//! distribution-tree maintenance exist for.
//!
//! Reported per receiver-count: the goodput of a persistent probe receiver,
//! the mean goodput over all receivers, the number of membership changes
//! processed, and the event-queue work per delivered kilobyte.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use netsim::prelude::*;
use tfmcc_agents::population::{FluidSpec, PopulationSpec};
use tfmcc_agents::session::{ReceiverSpec, TfmccSessionBuilder};
use tfmcc_model::population::Dist;
use tfmcc_runner::{ParamGrid, Sweep, SweepRunner};

use crate::output::{Figure, Series};
use crate::scale::Scale;

/// Fraction of receivers that churn: every 5th (i % 5 == 1).
const CHURN_MODULUS: usize = 5;

/// Deterministic result of one churn-sweep point.
struct ChurnOutcome {
    receivers: usize,
    probe_kbit: f64,
    mean_kbit: f64,
    membership_changes: f64,
    events_per_kb: f64,
}

/// Runs one simulation: `n` receivers behind a 1 Mbit/s source bottleneck,
/// a fifth of them churning with randomized (seed-derived) periods.
fn run_churn_point(n: usize, seed: u64, duration: f64) -> ChurnOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = Simulator::new(seed);
    let legs: Vec<StarLeg> = (0..n)
        .map(|_| {
            StarLeg::clean(125_000.0, rng.gen_range(0.01..0.05))
                .with_queue(QueueDiscipline::drop_tail(30))
        })
        .collect();
    let cfg = StarConfig {
        sender_bandwidth: 125_000.0, // the 1 Mbit/s source bottleneck
        sender_delay: 0.002,
        sender_queue: QueueDiscipline::drop_tail(100),
    };
    let star = star(&mut sim, &cfg, &legs);
    let specs: Vec<ReceiverSpec> = star
        .receivers
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            if i == 0 {
                // The persistent probe receiver.
                return ReceiverSpec::always(node);
            }
            let join_at = rng.gen_range(0.0..2.0);
            if i % CHURN_MODULUS == 1 {
                let on_secs = rng.gen_range(0.25..0.55) * duration.min(20.0);
                let off_secs = rng.gen_range(0.08..0.20) * duration.min(20.0);
                ReceiverSpec::joining_at(node, join_at).churning(on_secs, off_secs)
            } else {
                ReceiverSpec::joining_at(node, join_at)
            }
        })
        .collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        star.sender,
        &PopulationSpec::packets(&specs),
    );
    sim.run_until(SimTime::from_secs(duration));

    let probe_rate = session.receiver_throughput(&sim, 0, duration * 0.4, duration - 1.0);
    let total_bytes: f64 = (0..n)
        .map(|i| session.receiver_agent(&sim, i).meter().total_bytes() as f64)
        .sum();
    let membership_changes = sim.stats().counter("multicast.agent_joins")
        + sim.stats().counter("multicast.agent_leaves");
    let events_per_kb = sim.events_processed() as f64 / (total_bytes / 1000.0).max(1.0);
    ChurnOutcome {
        receivers: n,
        probe_kbit: probe_rate * 8.0 / 1000.0,
        mean_kbit: total_bytes / duration / n as f64 * 8.0 / 1000.0,
        membership_changes,
        events_per_kb,
    }
}

/// Size of the packet-level cohort in a hybrid churn point: the probe plus
/// enough churners to keep the join/leave workload realistic.
const HYBRID_COHORT: usize = 50;

/// One hybrid churn point: the probe and a churning 50-receiver cohort run
/// at packet level while the remaining `n − 50` receivers are one fluid
/// population, so the axis extends to 10⁶ receivers with the same churn
/// workload on the simulated cohort.
fn run_hybrid_churn_point(n: usize, seed: u64, duration: f64) -> ChurnOutcome {
    let cohort = HYBRID_COHORT.min(n.saturating_sub(1)).max(1);
    let fluid_count = (n - cohort).max(1) as u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = Simulator::new(seed);
    let mut legs: Vec<StarLeg> = (0..cohort)
        .map(|_| {
            StarLeg::clean(125_000.0, rng.gen_range(0.01..0.05))
                .with_queue(QueueDiscipline::drop_tail(30))
        })
        .collect();
    // The attachment leg of the fluid population.
    legs.push(StarLeg::clean(1_250_000.0, 0.01));
    let cfg = StarConfig {
        sender_bandwidth: 125_000.0,
        sender_delay: 0.002,
        sender_queue: QueueDiscipline::drop_tail(100),
    };
    let star = star(&mut sim, &cfg, &legs);
    let mut specs: Vec<PopulationSpec> = star.receivers[..cohort]
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            if i == 0 {
                return PopulationSpec::packet(node);
            }
            let join_at = rng.gen_range(0.0..2.0);
            let spec = if i % CHURN_MODULUS == 1 {
                let on_secs = rng.gen_range(0.25..0.55) * duration.min(20.0);
                let off_secs = rng.gen_range(0.08..0.20) * duration.min(20.0);
                ReceiverSpec::joining_at(node, join_at).churning(on_secs, off_secs)
            } else {
                ReceiverSpec::joining_at(node, join_at)
            };
            PopulationSpec::Packet(spec)
        })
        .collect();
    specs.push(PopulationSpec::Fluid(FluidSpec::new(
        star.receivers[cohort],
        fluid_count,
        Dist::Uniform {
            lo: 0.001,
            hi: 0.01,
        },
        Dist::Uniform { lo: 0.02, hi: 0.06 },
    )));
    let session = TfmccSessionBuilder::default().build_population(&mut sim, star.sender, &specs);
    sim.run_until(SimTime::from_secs(duration));

    let probe_rate = session.receiver_throughput(&sim, 0, duration * 0.4, duration - 1.0);
    let total_bytes: f64 = (0..cohort)
        .map(|i| session.receiver_agent(&sim, i).meter().total_bytes() as f64)
        .sum();
    let membership_changes = sim.stats().counter("multicast.agent_joins")
        + sim.stats().counter("multicast.agent_leaves");
    let events_per_kb = sim.events_processed() as f64 / (total_bytes / 1000.0).max(1.0);
    ChurnOutcome {
        receivers: n,
        probe_kbit: probe_rate * 8.0 / 1000.0,
        // The fluid tier has no per-receiver meters; the mean is over the
        // packet-level cohort.
        mean_kbit: total_bytes / duration / cohort as f64 * 8.0 / 1000.0,
        membership_changes,
        events_per_kb,
    }
}

/// Figure 22: TFMCC goodput and simulator work under massive receiver
/// churn, as a function of the receiver-set size.
pub fn fig22_churn(runner: &SweepRunner, scale: Scale) -> Figure {
    let ns: Vec<usize> = scale.pick(vec![200, 600], vec![10_000, 100_000]);
    let duration = scale.pick(12.0, 60.0);
    let sweep = ParamGrid::new().receivers(ns.clone()).build("fig22", 2222);
    let outcomes = runner.run(&sweep, |pt| {
        run_churn_point(pt.value.receivers, pt.seed, duration)
    });

    let mut fig = Figure::new(
        "fig22",
        "TFMCC under massive receiver churn (1 in 5 receivers cycling)",
        "number of receivers",
        "goodput (kbit/s) / count",
    );
    fig.push_series(Series::new(
        "probe goodput (kbit/s)",
        outcomes
            .iter()
            .map(|o| (o.receivers as f64, o.probe_kbit))
            .collect(),
    ));
    fig.push_series(Series::new(
        "mean receiver goodput (kbit/s)",
        outcomes
            .iter()
            .map(|o| (o.receivers as f64, o.mean_kbit))
            .collect(),
    ));
    fig.push_series(Series::new(
        "membership changes",
        outcomes
            .iter()
            .map(|o| (o.receivers as f64, o.membership_changes))
            .collect(),
    ));
    fig.push_series(Series::new(
        "events per delivered kB",
        outcomes
            .iter()
            .map(|o| (o.receivers as f64, o.events_per_kb))
            .collect(),
    ));

    // The hybrid extension: a fluid bulk carries the axis to 10⁶ receivers
    // (quick: 10⁵) while the probe and a churning 50-receiver cohort stay
    // packet-level.
    let hybrid_ns: Vec<usize> = scale.pick(vec![100_000], vec![1_000_000]);
    let hybrid_sweep = Sweep::new("fig22/hybrid", 22_222, hybrid_ns);
    let hybrid = runner.run(&hybrid_sweep, |pt| {
        run_hybrid_churn_point(*pt.value, pt.seed, duration)
    });
    fig.push_series(Series::new(
        "hybrid probe goodput (kbit/s)",
        hybrid
            .iter()
            .map(|o| (o.receivers as f64, o.probe_kbit))
            .collect(),
    ));
    fig.push_series(Series::new(
        "hybrid events per delivered kB",
        hybrid
            .iter()
            .map(|o| (o.receivers as f64, o.events_per_kb))
            .collect(),
    ));

    let first = &outcomes[0];
    let last = outcomes.last().unwrap();
    let hybrid_last = hybrid.last().unwrap();
    fig.note(format!(
        "probe goodput {:.0} kbit/s at n={} vs {:.0} kbit/s at n={} ({:.0}% retained) under {:.0} membership changes; {:.1} simulator events per delivered kB at the largest n; hybrid tier holds {:.0} kbit/s probe goodput at n={} with {:.1} events per kB",
        first.probe_kbit,
        first.receivers,
        last.probe_kbit,
        last.receivers,
        100.0 * last.probe_kbit / first.probe_kbit.max(1e-9),
        last.membership_changes,
        last.events_per_kb,
        hybrid_last.probe_kbit,
        hybrid_last.receivers,
        hybrid_last.events_per_kb,
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig22_probe_survives_churn() {
        let fig = fig22_churn(&SweepRunner::new(2), Scale::Quick);
        let probe = fig.series("probe goodput (kbit/s)").unwrap();
        // The persistent receiver must keep a usable share of the 1 Mbit/s
        // bottleneck even with a fifth of the set churning (rejoining
        // receivers restart in slowstart and repeatedly drag the session
        // rate down, so "usable" is well below the bottleneck).
        for &(n, kbit) in &probe.points {
            assert!(kbit > 20.0, "probe starved at n={n}: {kbit} kbit/s");
        }
        let changes = fig.series("membership changes").unwrap();
        for &(n, c) in &changes.points {
            // Every receiver joins once; churners add repeated leave/join
            // cycles on top.
            assert!(
                c > n * 1.2,
                "expected sustained churn at n={n}, saw only {c} membership changes"
            );
        }
    }

    #[test]
    fn fig22_hybrid_point_reaches_1e5_receivers() {
        let fig = fig22_churn(&SweepRunner::new(2), Scale::Quick);
        let hybrid = fig.series("hybrid probe goodput (kbit/s)").unwrap();
        let &(n, kbit) = hybrid.points.last().unwrap();
        assert_eq!(n, 100_000.0, "quick-scale hybrid point sits at 10⁵");
        assert!(kbit > 20.0, "hybrid probe starved: {kbit} kbit/s");
        // The fluid bulk must not cost per-receiver simulator work: the
        // hybrid point processes far fewer events per delivered kB than a
        // packet-level run of the same size would.
        let events = fig.series("hybrid events per delivered kB").unwrap();
        assert!(
            events.points.last().unwrap().1 < 1000.0,
            "hybrid event cost exploded: {:?}",
            events.points
        );
    }

    #[test]
    fn fig22_is_thread_count_invariant() {
        let serial = fig22_churn(&SweepRunner::new(1), Scale::Quick);
        let parallel = fig22_churn(&SweepRunner::new(4), Scale::Quick);
        assert_eq!(serial.to_json().render(), parallel.to_json().render());
    }
}
