//! The ISSUE acceptance check: exhaustively explore the 1-sender /
//! 3-receiver `smoke3` configuration — with at least one droppable control
//! message in the budget — to ≥10⁴ deduplicated states, all four invariants
//! armed, without truncation.

use tfmcc_mc::{explore, Limits, McConfig, McModel, Strategy};

#[test]
fn smoke3_is_exhausted_with_all_invariants() {
    let config = McConfig::preset("smoke3").expect("smoke3 preset exists");
    assert_eq!(config.receivers, 3);
    assert!(config.max_drops >= 1, "a control message must be droppable");
    let model = McModel::new(config);
    assert_eq!(model.invariant_names().len(), 4);

    let out = explore(
        &model,
        Strategy::Dfs,
        Limits {
            max_states: 500_000,
            max_depth: usize::MAX,
        },
    );
    assert!(
        out.violation.is_none(),
        "invariant violated: {:?}",
        out.violation
    );
    assert!(
        !out.truncated,
        "state space must be exhausted, not truncated"
    );
    assert!(
        out.states_explored >= 10_000,
        "expected >= 10^4 distinct states, got {}",
        out.states_explored
    );
    assert!(out.dedup_hits > 0, "interleavings must actually merge");
}
