//! Property test: the calendar-queue scheduler produces exactly the same
//! delivery sequences as the binary-heap scheduler, over randomized star
//! topologies with loss, membership churn and timer-cancellation churn.
//!
//! This is the determinism contract of `netsim::events`: both [`EventQueue`]
//! implementations pop in ascending `(time, seq)` order, so every
//! simulation — including its RNG draws, which interleave in event order —
//! is bit-identical under either scheduler.  The test also exercises the
//! cancelled-timer path (receivers cancel live timers and issue stale
//! cancels of already-fired ones) and asserts the cancellation bookkeeping
//! stays bounded at the end of every run.

use std::any::Any;

use netsim::prelude::*;
use netsim::sim::Agent;
use proptest::prelude::*;

/// Payload carrying a recognizable sequence number.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Marked {
    seq: u64,
}

/// Joins `group`, records every delivery, toggles membership on a fixed
/// cycle when configured, and continuously churns its own timers: every
/// toggle schedules a far-future decoy that is cancelled on the next one
/// (live cancel), and re-cancels the long-fired bootstrap timer (stale
/// cancel — the historical tombstone leak).
struct ChurningMember {
    group: GroupId,
    toggle_every: Option<f64>,
    joined: bool,
    bootstrap: Option<TimerId>,
    decoy: Option<TimerId>,
    log: Vec<(SimTime, u64, u64, u32)>, // (time, packet id, payload seq, size)
}

impl Agent for ChurningMember {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.group);
        self.joined = true;
        self.bootstrap = Some(ctx.schedule(0.0, 9));
        if let Some(t) = self.toggle_every {
            ctx.schedule(t, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == 9 {
            return; // the bootstrap timer, target of the stale cancels below
        }
        if self.joined {
            ctx.leave_group(self.group);
        } else {
            ctx.join_group(self.group);
        }
        self.joined = !self.joined;
        if let Some(stale) = self.bootstrap {
            ctx.cancel(stale); // fired long ago: must be a bounded no-op
        }
        if let Some(old) = self.decoy.take() {
            ctx.cancel(old); // live cancel of a queued far-future timer
        }
        self.decoy = Some(ctx.schedule(500.0, 7));
        if let Some(t) = self.toggle_every {
            ctx.schedule(t, 0);
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let seq = packet
            .payload
            .downcast_ref::<Marked>()
            .map(|m| m.seq)
            .unwrap_or(u64::MAX);
        self.log.push((ctx.now(), packet.id, seq, packet.size));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Multicast source sending `count` marked packets at a fixed interval.
struct MarkedSource {
    dst: Dest,
    count: u64,
    interval: f64,
    sent: u64,
}

impl Agent for MarkedSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        if self.count > 0 {
            ctx.schedule(0.01, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        let pkt = Packet::new(
            ctx.addr(),
            self.dst,
            400 + (self.sent % 3) as u32 * 300,
            FlowId(1),
            Payload::new(Marked { seq: self.sent }),
        );
        ctx.send(pkt);
        self.sent += 1;
        if self.sent < self.count {
            ctx.schedule(self.interval, 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One delivery record: (time, packet id, payload seq, size).
type DeliveryLog = Vec<(SimTime, u64, u64, u32)>;

/// Runs the randomized scenario under the given scheduler and returns, per
/// receiver, the full delivery log plus aggregate link statistics and the
/// total event count.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    scheduler: SchedulerKind,
    seed: u64,
    receivers: usize,
    churners: usize,
    loss_percent: u64,
    queue_len: usize,
    packet_count: u64,
    toggle_every_ms: u64,
) -> (Vec<DeliveryLog>, u64, u64, u64) {
    let mut sim = Simulator::with_scheduler(seed, scheduler);
    let legs: Vec<StarLeg> = (0..receivers)
        .map(|i| {
            let mut leg = StarLeg::clean(
                50_000.0 + 10_000.0 * (i % 4) as f64,
                0.005 + 0.002 * (i % 3) as f64,
            )
            .with_queue(QueueDiscipline::drop_tail(queue_len));
            if i % 2 == 0 && loss_percent > 0 {
                leg = leg.with_downstream_loss(loss_percent as f64 / 100.0);
            }
            leg
        })
        .collect();
    let star = star(&mut sim, &StarConfig::default(), &legs);
    let group = GroupId(3);
    let mut ids = Vec::new();
    for (i, &node) in star.receivers.iter().enumerate() {
        let toggle_every = if i < churners {
            Some(0.05 + toggle_every_ms as f64 / 1000.0 + 0.013 * i as f64)
        } else {
            None
        };
        ids.push(sim.add_agent(
            node,
            Port(7),
            Box::new(ChurningMember {
                group,
                toggle_every,
                joined: false,
                bootstrap: None,
                decoy: None,
                log: Vec::new(),
            }),
        ));
    }
    sim.add_agent(
        star.sender,
        Port(7),
        Box::new(MarkedSource {
            dst: Dest::Multicast {
                group,
                port: Port(7),
            },
            count: packet_count,
            interval: 0.02,
            sent: 0,
        }),
    );
    sim.run_until(SimTime::from_secs(5.0));
    let diag = sim.scheduler_diagnostics();
    // Calendar cancellation is in-place: no tombstones, ever.  (Heap
    // tombstones are bounded by the cancelled entries still queued; the
    // dedicated regression test in `netsim::sim` pins that they drain.)
    if scheduler == SchedulerKind::Calendar {
        assert_eq!(diag.queue_tombstones, 0, "calendar queue grew tombstones");
    }
    // The timer table must not leak: only each receiver's one live decoy
    // (plus its membership-toggle timer) may remain pending.
    assert!(
        diag.pending_timers <= 2 * receivers + 2,
        "{scheduler:?}: {} pending timers for {receivers} receivers — cancellation state leaked",
        diag.pending_timers
    );
    let logs = ids
        .iter()
        .map(|&id| sim.agent::<ChurningMember>(id).unwrap().log.clone())
        .collect();
    let mut delivered = 0;
    let mut dropped = 0;
    for l in 0..receivers {
        let stats = sim.link_stats(star.downstream_links[l]);
        delivered += stats.delivered;
        dropped += stats.dropped_loss + stats.dropped_queue;
    }
    (logs, delivered, dropped, sim.events_processed())
}

proptest! {
    #[test]
    fn heap_and_calendar_schedulers_deliver_identical_sequences(
        seed in 0u64..1_000_000,
        receivers in 1usize..14,
        churn_fraction in 0usize..=2,
        loss_percent in 0u64..30,
        queue_len in 2usize..20,
        packet_count in 1u64..60,
        toggle_every_ms in 0u64..400,
    ) {
        let churners = receivers * churn_fraction / 2;
        let heap = run_scenario(
            SchedulerKind::Heap,
            seed, receivers, churners, loss_percent, queue_len, packet_count, toggle_every_ms,
        );
        let calendar = run_scenario(
            SchedulerKind::Calendar,
            seed, receivers, churners, loss_percent, queue_len, packet_count, toggle_every_ms,
        );
        prop_assert_eq!(&heap.0, &calendar.0,
            "delivery sequences diverged between heap and calendar schedulers");
        prop_assert_eq!(heap.1, calendar.1, "delivered link counts diverged");
        prop_assert_eq!(heap.2, calendar.2, "drop counts diverged");
        prop_assert_eq!(heap.3, calendar.3, "events-processed counts diverged");
    }
}
