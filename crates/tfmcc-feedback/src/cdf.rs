//! Cumulative distribution of the biased feedback timers (paper Figure 1).

use tfmcc_proto::feedback::{BiasMethod, FeedbackPlanner};

/// One point of a timer CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerCdfPoint {
    /// Feedback time in units of the window `T` (0..=1) scaled by `window`.
    pub time: f64,
    /// Cumulative probability that the timer fires by `time`.
    pub probability: f64,
}

/// Computes the CDF of the feedback timer for a receiver with the given rate
/// ratio, evaluated analytically from the timer formula (no sampling).
///
/// For the exponential part the CDF is `N^(t/T' - 1)` (clamped to `[0, 1]`);
/// biasing with an offset shifts this curve right by the deterministic offset
/// while the modified-N method changes the exponent base.
pub fn timer_cdf(
    planner: &FeedbackPlanner,
    rate_ratio: f64,
    window: f64,
    points: usize,
) -> Vec<TimerCdfPoint> {
    assert!(points >= 2);
    let delta = planner.offset_fraction;
    let (offset, t_random, n) = match planner.method {
        BiasMethod::Unbiased => (0.0, window, planner.n_estimate),
        BiasMethod::BasicOffset => (
            delta * rate_ratio.clamp(0.0, 1.0) * window,
            (1.0 - delta) * window,
            planner.n_estimate,
        ),
        BiasMethod::ModifiedOffset => (
            delta * planner.normalized_ratio(rate_ratio) * window,
            (1.0 - delta) * window,
            planner.n_estimate,
        ),
        BiasMethod::ModifiedN => (
            0.0,
            window,
            (planner.n_estimate * rate_ratio.clamp(0.0, 1.0)).max(2.0),
        ),
    };
    (0..points)
        .map(|i| {
            let time = window * i as f64 / (points - 1) as f64;
            let effective = time - offset;
            let probability = if effective < 0.0 {
                0.0
            } else if effective >= t_random {
                1.0
            } else {
                n.powf(effective / t_random - 1.0)
            };
            TimerCdfPoint { time, probability }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfmcc_proto::prelude::TfmccConfig;

    fn planner(method: BiasMethod) -> FeedbackPlanner {
        let mut p = FeedbackPlanner::from_config(&TfmccConfig::default());
        p.method = method;
        p
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        for method in [
            BiasMethod::Unbiased,
            BiasMethod::BasicOffset,
            BiasMethod::ModifiedOffset,
            BiasMethod::ModifiedN,
        ] {
            let cdf = timer_cdf(&planner(method), 0.7, 4.0, 200);
            let mut last = 0.0;
            for p in &cdf {
                assert!((0.0..=1.0).contains(&p.probability));
                assert!(p.probability >= last - 1e-12);
                last = p.probability;
            }
            assert_eq!(cdf.last().unwrap().probability, 1.0);
        }
    }

    #[test]
    fn unbiased_cdf_starts_at_one_over_n() {
        let cdf = timer_cdf(&planner(BiasMethod::Unbiased), 1.0, 4.0, 10);
        assert!((cdf[0].probability - 1.0 / 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn modified_n_increases_early_probability_for_low_rates() {
        // Figure 1: decreasing N shifts the whole CDF up.
        let low = timer_cdf(&planner(BiasMethod::ModifiedN), 0.01, 4.0, 100);
        let high = timer_cdf(&planner(BiasMethod::ModifiedN), 1.0, 4.0, 100);
        assert!(low[10].probability > high[10].probability * 10.0);
    }

    #[test]
    fn offset_shifts_high_rate_receivers_later() {
        // Figure 1: the offset method delays receivers whose rate is close to
        // the sending rate while low-rate receivers keep the unshifted curve.
        let low = timer_cdf(&planner(BiasMethod::ModifiedOffset), 0.5, 4.0, 100);
        let high = timer_cdf(&planner(BiasMethod::ModifiedOffset), 1.0, 4.0, 100);
        // At one third of the window the high-rate receiver has essentially no
        // probability of having fired, the low-rate one a positive one.
        let idx = 33;
        assert!(high[idx].probability < low[idx].probability);
        assert_eq!(high[0].probability, 0.0);
    }
}
