//! `tfmcc-lint` — the workspace determinism linter.
//!
//! Everything this repository claims (feedback suppression at 10⁵–10⁷
//! receivers, scheduler equivalence, `tfmcc-replay-v1` files reproducing
//! Jain/recovery values bit-identically) rests on one contract: **a
//! simulation's output is a pure function of its configuration and seed**.
//! The dynamic enforcement (proptests, golden files, byte-compares) only
//! catches a violation after it has produced a flaky run; this crate
//! enforces the contract *statically*, at CI time, by walking every `.rs`
//! file in `crates/`, `src/`, `examples/` and `tests/` and applying the
//! determinism rules (see [`rules`] for the rule table).
//!
//! Findings can be suppressed in place with
//! `// tfmcc-lint: allow(<RULE>, reason = "...")` — the reason is mandatory
//! and its absence is itself a finding ([`pragma`]).
//!
//! The crate is deliberately std-only: the linter is part of the trust
//! chain, so it depends on nothing it would have to lint.
//!
//! Run it with `cargo run -p tfmcc-lint -- --workspace`; it exits nonzero on
//! any unsuppressed finding and writes a machine-readable report with
//! `--json <path>`.

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use report::Summary;
use rules::Finding;

/// Directories scanned under the workspace root.  `vendor/` is excluded by
/// design: the vendored stubs mirror external crates' APIs and are covered
/// by the clippy `disallowed-types` mirror instead.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Lints one file's source text.  `path` must be workspace-relative with
/// forward slashes — rule applicability is derived from it.  Returns the
/// surviving findings and the number suppressed by valid pragmas.
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, usize) {
    let tokens = lexer::lex(src);
    let (pragmas, bad_pragmas) = pragma::collect(&tokens);
    let mut findings = rules::check(path, src, &tokens);

    let mut suppressed = 0usize;
    findings.retain(|f| {
        let covered = pragmas
            .iter()
            .any(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line));
        if covered {
            suppressed += 1;
        }
        !covered
    });

    for bad in bad_pragmas {
        findings.push(Finding {
            rule: "L001",
            path: path.to_string(),
            line: bad.line,
            column: 1,
            message: bad.problem,
        });
    }
    findings.sort_by(|a, b| (a.line, a.column, a.rule).cmp(&(b.line, b.column, b.rule)));
    (findings, suppressed)
}

/// Lints every `.rs` file under the [`SCAN_ROOTS`] of `root`.  Returns the
/// findings (sorted by path, then position) and scan counters.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, Summary)> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        } else if dir.is_file() {
            files.push(dir);
        }
    }
    files.sort();
    let mut findings = Vec::new();
    let mut summary = Summary::default();
    for file in files {
        let rel = relative_path(root, &file);
        let src = std::fs::read_to_string(&file)?;
        let (mut file_findings, suppressed) = lint_source(&rel, &src);
        summary.files_scanned += 1;
        summary.suppressed += suppressed;
        findings.append(&mut file_findings);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.column, a.rule).cmp(&(
            b.path.as_str(),
            b.line,
            b.column,
            b.rule,
        ))
    });
    Ok((findings, summary))
}

/// Recursively gathers `.rs` files, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (for stable reports across
/// platforms).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares a
/// `[workspace]` — how `--workspace` finds the tree to lint.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
