//! Heap-footprint regression for 10⁵-receiver simulations.
//!
//! A single simulation at paper scale holds 10⁵ live [`TfmccReceiver`]
//! states, so the per-receiver heap footprint directly bounds the largest
//! receiver population one process can hold (ROADMAP: "memory profiling of
//! 10⁵ `TfmccReceiver` states").  This test builds a large batch of
//! receivers, drives each to its settled steady state (loss-history ring
//! full, rate-meter ring at its recycled capacity, feedback machinery
//! cycling), and measures the *net* heap bytes the batch retains through a
//! counting global allocator.  The per-receiver bound is pinned: growing the
//! steady-state footprint past it is a deliberate decision, not an accident.
//!
//! The companion probe for whole-simulation footprints (nodes, links,
//! agents, event queue) is `examples/scale_probe.rs`, which reports live
//! heap bytes per receiver for 10⁵-receiver topologies.
//!
//! The file contains exactly one test: the byte counter is process-global,
//! and a concurrently running sibling test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering::Relaxed};

use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::{DataPacket, ReceiverId, RttEcho};
use tfmcc_proto::receiver::TfmccReceiver;

/// Pinned upper bound on the settled heap bytes one receiver retains
/// (measured 2184 bytes with the default 8-interval loss history — rate
/// meter and interval rings dominate; the ~15 % headroom covers allocator
/// layout drift across toolchains, not new state: 10⁵ receivers stay under
/// 250 MB of protocol state).
const MAX_HEAP_BYTES_PER_RECEIVER: i64 = 2560;

/// Receivers in the measured batch — large enough that per-batch noise
/// (allocator bookkeeping, container growth slack) is amortized to nothing.
const BATCH: usize = 1024;

// Twin of the allocator in `examples/scale_probe.rs` — a
// `#[global_allocator]` must live in the binary that uses it, so the ~30
// lines are duplicated rather than shipped in a library crate; keep the two
// in sync.
struct NetCountingAllocator;

static NET_BYTES: AtomicI64 = AtomicI64::new(0);

// SAFETY: every method forwards to `System` with unchanged arguments; the
// added Relaxed counter update cannot affect the allocator contract.
unsafe impl GlobalAlloc for NetCountingAllocator {
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as i64, Relaxed);
        System.alloc(layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as i64, Relaxed);
        System.dealloc(ptr, layout)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwarded verbatim to `System`; the caller's `GlobalAlloc`
    // obligations are passed through unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as i64, Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: NetCountingAllocator = NetCountingAllocator;

/// Drives `packets` data packets (with ~2 % loss, periodic RTT echoes and
/// round advances) through the receiver so its rings reach their settled
/// capacities.
fn warm(r: &mut TfmccReceiver, packets: u64) {
    let mut now = 0.0;
    let mut seq = 0u64;
    for i in 0..packets {
        if i % 50 == 49 {
            seq += 1; // drop every 50th packet
        }
        let mut d = DataPacket {
            seqno: seq,
            timestamp: now,
            current_rate: 500_000.0,
            max_rtt: 0.05,
            feedback_round: 1 + i / 200,
            slowstart: false,
            clr: None,
            rtt_echo: None,
            suppression: None,
            size: 1000,
        };
        if i % 500 == 100 {
            d.rtt_echo = Some(RttEcho {
                receiver: r.id(),
                echo_timestamp: now - 0.06,
                echo_delay: 0.01,
            });
        }
        let _ = r.on_data(now, &d);
        if let Some(fire_at) = r.next_timer() {
            if fire_at <= now {
                let _ = r.on_timer(now);
            }
        }
        seq += 1;
        now += 0.002;
    }
}

#[test]
fn settled_receiver_heap_footprint_stays_under_pinned_bound() {
    let config = TfmccConfig::default();
    let before = NET_BYTES.load(Relaxed);
    let mut batch: Vec<TfmccReceiver> = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        batch.push(TfmccReceiver::new(ReceiverId(i as u64 + 1), config.clone()));
    }
    for r in &mut batch {
        warm(r, 2000);
    }
    let retained = NET_BYTES.load(Relaxed) - before;
    // Everything still reachable from `batch` (minus the Vec spine) is
    // per-receiver state.
    let spine = (BATCH * std::mem::size_of::<TfmccReceiver>()) as i64;
    let per_receiver = (retained - spine) / BATCH as i64;
    assert!(
        batch.iter().all(|r| r.loss_event_rate() > 0.0),
        "warm-up must reach steady state"
    );
    eprintln!(
        "receiver footprint: {per_receiver} heap bytes + {} inline bytes each",
        std::mem::size_of::<TfmccReceiver>()
    );
    assert!(
        per_receiver <= MAX_HEAP_BYTES_PER_RECEIVER,
        "settled TfmccReceiver retains {per_receiver} heap bytes, over the pinned \
         {MAX_HEAP_BYTES_PER_RECEIVER}-byte bound — 10⁵ receivers would need \
         {} MB where the bound allows {} MB",
        per_receiver * 100_000 / (1 << 20),
        MAX_HEAP_BYTES_PER_RECEIVER * 100_000 / (1 << 20),
    );
    drop(batch);
    let leaked = NET_BYTES.load(Relaxed) - before;
    assert!(
        leaked.abs() < 4096,
        "dropping the batch must return its heap: {leaked} bytes outstanding"
    );
}
