//! Regenerates fig06_feedback_quality of the TFMCC paper on the parallel sweep runner.
//!
//! Shared CLI: `--quick` / `--paper` select the scale (overridden by the
//! `TFMCC_SCALE` environment variable), `--threads N` sizes the sweep
//! executor (results are byte-identical for any N), `--out FILE` writes the
//! figure as deterministic JSON and `--bench-out FILE` writes the run's
//! timing trajectory.

fn main() {
    tfmcc_experiments::cli::figure_main(tfmcc_experiments::feedback_figs::fig06_feedback_quality);
}
