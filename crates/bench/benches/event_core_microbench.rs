//! Event-core microbench: the hold-model event-queue workload of a
//! 10⁵-receiver churn simulation (pop → reschedule, with decoy-timer
//! cancellation churn) run against the binary-heap and calendar-queue
//! schedulers.  The `event_core_100k/*` pair is the headline comparison —
//! the regime where the calendar queue's amortized O(1) schedule/pop beats
//! the heap's O(log n) sift; the `event_core_10k/*` pair tracks the
//! mid-size behaviour.  `sweep_bench` writes the authoritative trajectory
//! to `BENCH_events.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netsim::events::SchedulerKind;
use tfmcc_experiments::event_bench::{run_event_workload, STANDARD_PENDING};

/// Operations per bench iteration; enough to cover several full queue
/// turnovers (and so several calendar width re-estimates) at 10⁵ pending.
const BENCH_OPS: u64 = 300_000;

fn bench_event_core_100k(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core_100k");
    group.bench_function("heap", |b| {
        b.iter(|| {
            black_box(run_event_workload(
                STANDARD_PENDING,
                BENCH_OPS,
                SchedulerKind::Heap,
            ))
        })
    });
    group.bench_function("calendar", |b| {
        b.iter(|| {
            black_box(run_event_workload(
                STANDARD_PENDING,
                BENCH_OPS,
                SchedulerKind::Calendar,
            ))
        })
    });
    group.finish();
}

fn bench_event_core_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core_10k");
    group.bench_function("heap", |b| {
        b.iter(|| black_box(run_event_workload(10_000, BENCH_OPS, SchedulerKind::Heap)))
    });
    group.bench_function("calendar", |b| {
        b.iter(|| {
            black_box(run_event_workload(
                10_000,
                BENCH_OPS,
                SchedulerKind::Calendar,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_core_100k, bench_event_core_10k);
criterion_main!(benches);
