//! Figures 9, 10, 18 and 19: fairness towards TCP and robustness of the
//! feedback path.
//!
//! Each of these figures is one large simulation (TFMCC and TCP flows share
//! topology and queues, so the scenario cannot be sharded); they run as
//! one-point sweeps so the executor times them and can overlap them with
//! other work.  The scenarios keep their historical fixed seeds.

use netsim::prelude::*;
use tfmcc_agents::population::PopulationSpec;
use tfmcc_agents::session::{ReceiverSpec, TfmccSessionBuilder};
use tfmcc_runner::SweepRunner;
use tfmcc_tcp::{TcpSender, TcpSenderConfig, TcpSink};

use crate::output::{Figure, Series};
use crate::scale::Scale;
use crate::sweeps::run_single_sim;

/// Converts a throughput meter into a kbit/s-vs-time series.
pub(crate) fn meter_series(meter: &ThroughputMeter) -> Vec<(f64, f64)> {
    meter
        .series()
        .into_iter()
        .map(|(t, bytes_per_sec)| (t, bytes_per_sec * 8.0 / 1000.0))
        .collect()
}

fn kbit(bytes_per_sec: f64) -> f64 {
    bytes_per_sec * 8.0 / 1000.0
}

/// Figure 9: one TFMCC flow and `tcp_flows` TCP flows over a single 8 Mbit/s
/// bottleneck.
pub fn fig09_single_bottleneck(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig09", || {
        let tcp_flows = 15;
        let duration = scale.pick(120.0, 200.0);
        let mut sim = Simulator::new(909);
        let cfg = DumbbellConfig {
            pairs: tcp_flows + 1,
            bottleneck_bandwidth: 1_000_000.0, // 8 Mbit/s
            bottleneck_delay: 0.02,
            bottleneck_queue: QueueDiscipline::drop_tail(125),
            ..DumbbellConfig::default()
        };
        let d = netsim::topology::dumbbell(&mut sim, &cfg);
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            d.senders[0],
            &[PopulationSpec::packet(d.receivers[0])],
        );
        let mut tcp_sinks = Vec::new();
        for i in 1..=tcp_flows {
            let sink = sim.add_agent(d.receivers[i], Port(1), Box::new(TcpSink::new(1.0)));
            sim.add_agent(
                d.senders[i],
                Port(1),
                Box::new(TcpSender::new(TcpSenderConfig::new(
                    Address::new(d.receivers[i], Port(1)),
                    FlowId(1000 + i as u64),
                ))),
            );
            tcp_sinks.push(sink);
        }
        sim.run_until(SimTime::from_secs(duration));

        let mut fig = Figure::new(
            "fig09",
            "One TFMCC flow and 15 TCP flows over a single 8 Mbit/s bottleneck",
            "time (s)",
            "throughput (kbit/s)",
        );
        let tfmcc_meter = session.receiver_agent(&sim, 0).meter();
        fig.push_series(Series::new("TFMCC", meter_series(tfmcc_meter)));
        for (i, &sink) in tcp_sinks.iter().take(2).enumerate() {
            let meter = sim.agent::<TcpSink>(sink).unwrap().meter();
            fig.push_series(Series::new(format!("TCP {}", i + 1), meter_series(meter)));
        }
        let warm = duration * 0.3;
        let tfmcc_avg = tfmcc_meter.average_between(warm, duration - 5.0);
        let tcp_avg: f64 = tcp_sinks
            .iter()
            .map(|&s| {
                sim.agent::<TcpSink>(s)
                    .unwrap()
                    .meter()
                    .average_between(warm, duration - 5.0)
            })
            .sum::<f64>()
            / tcp_flows as f64;
        let tfmcc_cov = tfmcc_meter.coefficient_of_variation(warm, duration - 5.0);
        let tcp_cov = sim
            .agent::<TcpSink>(tcp_sinks[0])
            .unwrap()
            .meter()
            .coefficient_of_variation(warm, duration - 5.0);
        fig.note(format!(
            "steady state: TFMCC {:.0} kbit/s vs mean TCP {:.0} kbit/s (ratio {:.2}); smoothness CoV TFMCC {:.2} vs TCP {:.2} (paper: comparable averages, smoother TFMCC)",
            kbit(tfmcc_avg),
            kbit(tcp_avg),
            tfmcc_avg / tcp_avg.max(1.0),
            tfmcc_cov,
            tcp_cov
        ));
        fig
    })
}

/// Figure 10: one TFMCC group and 16 TCP flows on sixteen individual
/// 1 Mbit/s tail circuits.
pub fn fig10_tail_circuits(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig10", || {
        let tails = scale.pick(6, 16);
        let duration = scale.pick(120.0, 200.0);
        let mut sim = Simulator::new(910);
        // Star of 1 Mbit/s legs; a TCP flow competes with TFMCC on every leg.
        let legs: Vec<StarLeg> = (0..tails)
            .map(|_| StarLeg::clean(125_000.0, 0.02).with_queue(QueueDiscipline::drop_tail(30)))
            .collect();
        let star = star(&mut sim, &StarConfig::default(), &legs);
        let specs: Vec<ReceiverSpec> = star
            .receivers
            .iter()
            .map(|&n| ReceiverSpec::always(n))
            .collect();
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            star.sender,
            &PopulationSpec::packets(&specs),
        );
        let mut tcp_sinks = Vec::new();
        for (i, &r) in star.receivers.iter().enumerate() {
            let sink = sim.add_agent(r, Port(1), Box::new(TcpSink::new(1.0)));
            sim.add_agent(
                star.sender,
                Port(100 + i as u16),
                Box::new(TcpSender::new(TcpSenderConfig::new(
                    Address::new(r, Port(1)),
                    FlowId(2000 + i as u64),
                ))),
            );
            tcp_sinks.push(sink);
        }
        sim.run_until(SimTime::from_secs(duration));

        let mut fig = Figure::new(
            "fig10",
            "1 TFMCC flow and 16 TCP flows (individual 1 Mbit/s bottlenecks)",
            "time (s)",
            "throughput (kbit/s)",
        );
        let tfmcc_meter = session.receiver_agent(&sim, 0).meter();
        fig.push_series(Series::new("TFMCC", meter_series(tfmcc_meter)));
        for (i, &sink) in tcp_sinks.iter().take(2).enumerate() {
            let meter = sim.agent::<TcpSink>(sink).unwrap().meter();
            fig.push_series(Series::new(format!("TCP {}", i + 1), meter_series(meter)));
        }
        let warm = duration * 0.3;
        let tfmcc_avg = tfmcc_meter.average_between(warm, duration - 5.0);
        let tcp_avg: f64 = tcp_sinks
            .iter()
            .map(|&s| {
                sim.agent::<TcpSink>(s)
                    .unwrap()
                    .meter()
                    .average_between(warm, duration - 5.0)
            })
            .sum::<f64>()
            / tails as f64;
        fig.note(format!(
            "TFMCC achieves {:.0} kbit/s vs mean TCP {:.0} kbit/s = {:.0}% (paper: about 70% because TFMCC tracks the minimum over independent tails)",
            kbit(tfmcc_avg),
            kbit(tcp_avg),
            100.0 * tfmcc_avg / tcp_avg.max(1.0)
        ));
        fig
    })
}

/// Shared scenario of Figures 18/19: a TFMCC group with four receivers and a
/// competing TCP flow to each, with configurable reverse-path interference.
fn return_path_scenario(
    id: &str,
    title: &str,
    reverse_tcp_flows: &[usize],
    reverse_loss: &[f64],
    scale: Scale,
) -> Figure {
    let duration = scale.pick(80.0, 120.0);
    let mut sim = Simulator::new(918);
    let legs: Vec<StarLeg> = (0..4)
        .map(|i| {
            let mut leg =
                StarLeg::clean(250_000.0, 0.02).with_queue(QueueDiscipline::drop_tail(40));
            if let Some(&p) = reverse_loss.get(i) {
                if p > 0.0 {
                    leg = leg.with_upstream_loss(p);
                }
            }
            leg
        })
        .collect();
    let star = star(&mut sim, &StarConfig::default(), &legs);
    let specs: Vec<ReceiverSpec> = star
        .receivers
        .iter()
        .map(|&n| ReceiverSpec::always(n))
        .collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        star.sender,
        &PopulationSpec::packets(&specs),
    );
    // A forward TCP flow to each receiver provides the competing traffic.
    let mut tcp_sinks = Vec::new();
    for (i, &r) in star.receivers.iter().enumerate() {
        let sink = sim.add_agent(r, Port(1), Box::new(TcpSink::new(1.0)));
        sim.add_agent(
            star.sender,
            Port(100 + i as u16),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(r, Port(1)),
                FlowId(3000 + i as u64),
            ))),
        );
        tcp_sinks.push(sink);
    }
    // Reverse-path TCP flows (receiver -> sender) loading the feedback path.
    for (i, &count) in reverse_tcp_flows.iter().enumerate() {
        for k in 0..count {
            let sink = sim.add_agent(
                star.sender,
                Port(200 + (i * 8 + k) as u16),
                Box::new(TcpSink::new(1.0)),
            );
            let sink_addr = sim.agent_addr(sink);
            sim.add_agent(
                star.receivers[i],
                Port(200 + k as u16),
                Box::new(TcpSender::new(TcpSenderConfig::new(
                    sink_addr,
                    FlowId(4000 + (i * 8 + k) as u64),
                ))),
            );
        }
    }
    sim.run_until(SimTime::from_secs(duration));

    let mut fig = Figure::new(id, title, "time (s)", "throughput (kbit/s)");
    let tfmcc_meter = session.receiver_agent(&sim, 0).meter();
    fig.push_series(Series::new("TFMCC", meter_series(tfmcc_meter)));
    for (i, &sink) in tcp_sinks.iter().enumerate() {
        let meter = sim.agent::<TcpSink>(sink).unwrap().meter();
        fig.push_series(Series::new(format!("TCP ({i})"), meter_series(meter)));
    }
    let warm = duration * 0.4;
    let tfmcc_avg = tfmcc_meter.average_between(warm, duration - 5.0);
    fig.note(format!(
        "TFMCC steady-state rate {:.0} kbit/s (paper: unaffected by return-path interference because single reports, unlike TCP ACK streams, are expendable)",
        kbit(tfmcc_avg)
    ));
    fig
}

/// Figure 18: competing TCP traffic on the return (feedback) paths.
pub fn fig18_return_path_traffic(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig18", || {
        return_path_scenario(
            "fig18",
            "Competing traffic on return paths (0/1/2/4 TCP flows)",
            &[0, 1, 2, 4],
            &[],
            scale,
        )
    })
}

/// Figure 19: lossy return paths (0/10/20/30 % feedback loss).
pub fn fig19_lossy_return_paths(runner: &SweepRunner, scale: Scale) -> Figure {
    run_single_sim(runner, "fig19", || {
        return_path_scenario(
            "fig19",
            "Lossy return paths (0/10/20/30 % loss)",
            &[],
            &[0.0, 0.1, 0.2, 0.3],
            scale,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_tfmcc_is_comparable_to_tcp_and_smoother() {
        let fig = fig09_single_bottleneck(&SweepRunner::serial(), Scale::Quick);
        let summary = fig.summary.join(" ");
        // Extract the ratio from the note via the series instead: TFMCC mean
        // must be within a factor ~4 of the bottleneck fair share (500 kbit/s
        // for 16 flows on 8 Mbit/s).
        let tfmcc = fig.series("TFMCC").unwrap();
        let steady: Vec<f64> = tfmcc
            .points
            .iter()
            .filter(|&&(t, _)| t > 40.0)
            .map(|&(_, y)| y)
            .collect();
        let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
        // The paper reports near-equal shares (~500 kbit/s).  Our TCP Reno /
        // drop-tail substrate penalises the smooth, paced TFMCC flow harder
        // than ns-2 did, so the check is that TFMCC holds a meaningful share
        // (documented in EXPERIMENTS.md) rather than exact parity.
        assert!(
            (60.0..=2500.0).contains(&mean),
            "TFMCC steady-state {mean} kbit/s out of plausible range; {summary}"
        );
    }

    #[test]
    fn fig19_feedback_loss_does_not_starve_tfmcc() {
        let fig = fig19_lossy_return_paths(&SweepRunner::serial(), Scale::Quick);
        let tfmcc = fig.series("TFMCC").unwrap();
        let late: Vec<f64> = tfmcc
            .points
            .iter()
            .filter(|&&(t, _)| t > 40.0)
            .map(|&(_, y)| y)
            .collect();
        let mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
        assert!(
            mean > 50.0,
            "TFMCC must keep sending despite feedback loss, got {mean} kbit/s"
        );
    }
}
