//! Benchmarks regenerating the feedback-suppression figures (paper Figures
//! 1–6): per-round simulation cost and the full figure pipelines at reduced
//! scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tfmcc_experiments::feedback_figs;
use tfmcc_experiments::{Scale, SweepRunner};
use tfmcc_feedback::{BiasMethod, FeedbackPlanner, FeedbackRound};
use tfmcc_proto::prelude::TfmccConfig;

fn bench_feedback_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_round");
    for &n in &[100usize, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::new("worst_case", n), &n, |b, &n| {
            let planner = FeedbackPlanner::from_config(&TfmccConfig::default());
            let round = FeedbackRound::new(planner, 6.0, 1.0);
            b.iter(|| black_box(round.simulate_worst_case(n, 1, 42)))
        });
    }
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_figures");
    group.sample_size(10);
    group.bench_function("fig01_bias_cdf", |b| {
        b.iter(|| {
            black_box(feedback_figs::fig01_bias_cdf(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig03_cancellation", |b| {
        b.iter(|| {
            black_box(feedback_figs::fig03_cancellation(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig04_expected_feedback", |b| {
        b.iter(|| {
            black_box(feedback_figs::fig04_expected_feedback(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig05_response_time", |b| {
        b.iter(|| {
            black_box(feedback_figs::fig05_response_time(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig06_feedback_quality", |b| {
        b.iter(|| {
            black_box(feedback_figs::fig06_feedback_quality(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.finish();
}

fn bench_timer_bias_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("bias_methods");
    for method in [
        BiasMethod::Unbiased,
        BiasMethod::BasicOffset,
        BiasMethod::ModifiedOffset,
        BiasMethod::ModifiedN,
    ] {
        group.bench_function(format!("{method:?}"), |b| {
            let mut planner = FeedbackPlanner::from_config(&TfmccConfig::default());
            planner.method = method;
            let round = FeedbackRound::new(planner, 6.0, 1.0);
            b.iter(|| black_box(round.simulate_uniform(1000, 1, 7)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_feedback_round,
    bench_figures,
    bench_timer_bias_methods
);
criterion_main!(benches);
