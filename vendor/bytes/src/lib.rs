//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's wire codec uses: [`BytesMut`] as a
//! growable buffer with big-endian `put_*` accessors, [`Bytes`] as a cheaply
//! cloneable frozen buffer, and the [`Buf`]/[`BufMut`] traits with network
//! byte order reads and writes (including the `impl Buf for &[u8]` cursor
//! behaviour the decoder relies on).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Read cursor over a byte source, network (big-endian) byte order.
///
/// Each `get_*` consumes the value from the front; callers must check
/// [`Buf::remaining`] first, matching the real crate's panic-on-underflow
/// contract.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next `N`-byte array.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        u8::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned N bytes")
    }
}

/// Write sink for bytes, network (big-endian) byte order.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Writes a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_f64(-2.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), u64::MAX - 1);
        assert_eq!(cursor.get_f64(), -2.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn wire_order_is_network_order() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[1, 2]);
    }
}
