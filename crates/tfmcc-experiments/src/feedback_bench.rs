//! The sender feedback-aggregation microbench workload, shared between the
//! Criterion bench (`bench/benches/feedback_microbench.rs`) and the
//! `BENCH_feedback.json` artifact written by `sweep_bench`.
//!
//! The workload is the sender side of a large session in steady state: `n`
//! receivers are known (each with its own rate and RTT), and the measured
//! phase interleaves receiver reports, data-packet emission (each data
//! packet consults the maximum receiver RTT to size the feedback window and
//! embeds the round's suppression echo), and periodic CLR departures that
//! force an election over the whole receiver set.  Run once per
//! [`AggregatorKind`], the paired timings are the before/after measurement
//! for the incremental feedback aggregation: the reference path pays an
//! O(N) scan per data packet and per election, the incremental path an
//! ordered-index lookup.
//!
//! Both runs must produce bit-identical protocol behaviour — the workload
//! accumulates a digest of every observable output and
//! [`measure_feedback`] asserts the digests agree, so the speedup can never
//! come from divergent behaviour.

use std::time::Instant;

use tfmcc_proto::aggregator::AggregatorKind;
use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::{FeedbackPacket, ReceiverId};
use tfmcc_proto::sender::TfmccSender;

/// Receiver count of the headline workload (the 10⁵-receiver scale target).
pub const STANDARD_RECEIVERS: usize = 100_000;

/// Measured operations (report + data-packet pairs) of the standard
/// workload.
pub const STANDARD_OPS: u64 = 20_000;

fn report(id: u64, round: u64, now: f64, rate: f64, rtt: f64) -> FeedbackPacket {
    FeedbackPacket {
        receiver: ReceiverId(id),
        timestamp: now,
        echo_timestamp: now - rtt,
        echo_delay: 0.001,
        calculated_rate: rate,
        loss_event_rate: 0.01,
        receive_rate: rate,
        rtt,
        has_rtt_measurement: true,
        feedback_round: round,
        leaving: false,
    }
}

/// Deterministic per-receiver parameters: rates spread over
/// [50 kB/s, 1 MB/s), RTTs over [10 ms, 500 ms).
fn receiver_params(id: u64) -> (f64, f64) {
    let mix = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let rate = 50_000.0 + (mix % 950_000) as f64;
    let rtt = 0.01 + ((mix >> 32) % 490) as f64 / 1000.0;
    (rate, rtt)
}

/// Runs the workload and returns `(wall_seconds, digest)`.  The digest
/// accumulates every observable output (sending rate, max RTT, CLR, round,
/// suppression echo) so two runs can be compared bit for bit.
pub fn run_feedback_workload(n: usize, kind: AggregatorKind, ops: u64) -> (f64, u64) {
    let mut sender = TfmccSender::with_aggregator(TfmccConfig::default(), kind);
    // Populate: every receiver reports once (round numbers don't matter for
    // the bookkeeping being measured).
    let mut now = 0.0;
    for id in 1..=n as u64 {
        let (rate, rtt) = receiver_params(id);
        sender.on_feedback(now, &report(id, sender.feedback_round(), now, rate, rtt));
        now += 1e-5;
    }

    let started = Instant::now();
    let mut digest = 0u64;
    for op in 0..ops {
        // One receiver refreshes its report...
        let id = op % n as u64 + 1;
        let (rate, rtt) = receiver_params(id);
        let jitter = 1.0 + (op % 7) as f64 * 1e-3;
        sender.on_feedback(
            now,
            &report(id, sender.feedback_round(), now, rate * jitter, rtt),
        );
        // ...the sender paces one data packet (feedback-window sizing reads
        // the max RTT aggregate on this path)...
        let data = sender.next_data(now);
        digest = digest
            .wrapping_mul(0x100000001B3)
            .wrapping_add(data.current_rate.to_bits())
            .wrapping_add(data.max_rtt.to_bits())
            .wrapping_add(data.feedback_round)
            .wrapping_add(data.clr.map(|c| c.0).unwrap_or(0))
            .wrapping_add(
                data.suppression
                    .map(|s| s.rate.to_bits() ^ s.receiver.0)
                    .unwrap_or(0),
            );
        // ...and every so often the CLR leaves, forcing an election over the
        // full receiver set (an O(N) scan on the reference path).
        if op % 500 == 499 {
            if let Some(clr) = sender.clr() {
                let mut leave = report(clr.0, 0, now, 0.0, 0.05);
                leave.leaving = true;
                sender.on_feedback(now, &leave);
                // The departed receiver rejoins right away so the population
                // stays at n.
                let (rate, rtt) = receiver_params(clr.0);
                sender.on_feedback(now, &report(clr.0, sender.feedback_round(), now, rate, rtt));
            }
        }
        now += 2e-4;
    }
    digest = digest.wrapping_add(sender.known_receivers() as u64);
    (started.elapsed().as_secs_f64(), digest)
}

/// The paired measurement: the same workload under both aggregators.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackMeasurement {
    /// Receiver count of the workload.
    pub receivers: usize,
    /// Measured operations per run.
    pub ops: u64,
    /// Wall seconds of the scan-based reference aggregation.
    pub reference_secs: f64,
    /// Wall seconds of the ordered-index incremental aggregation.
    pub incremental_secs: f64,
}

impl FeedbackMeasurement {
    /// Reference wall time divided by incremental wall time.
    pub fn speedup(&self) -> f64 {
        self.reference_secs / self.incremental_secs.max(1e-12)
    }

    /// Measured operations per second on the incremental path.
    pub fn incremental_ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.incremental_secs.max(1e-12)
    }

    /// Measured operations per second on the reference path.
    pub fn reference_ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.reference_secs.max(1e-12)
    }
}

/// Measures the workload at receiver count `n` under both aggregators,
/// verifying the two runs produced identical protocol behaviour.
pub fn measure_feedback(n: usize, ops: u64) -> FeedbackMeasurement {
    let (reference_secs, reference_digest) =
        run_feedback_workload(n, AggregatorKind::Reference, ops);
    let (incremental_secs, incremental_digest) =
        run_feedback_workload(n, AggregatorKind::Incremental, ops);
    assert_eq!(
        reference_digest, incremental_digest,
        "aggregators disagree on protocol behaviour at n={n}"
    );
    FeedbackMeasurement {
        receivers: n,
        ops,
        reference_secs,
        incremental_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down measurement: the two aggregators must agree on every
    /// observable output.  Wall-clock ordering is only sanity-checked very
    /// loosely — timing assertions in unit tests go red on loaded machines;
    /// the real ≥2× claim lives in the bench-smoke `BENCH_feedback.json`
    /// artifact.
    #[test]
    fn feedback_aggregators_agree() {
        let m = measure_feedback(3000, 2000);
        assert_eq!(m.receivers, 3000);
        assert!(
            m.speedup() > 0.5,
            "incremental aggregation catastrophically slower than the reference: {:.2}x",
            m.speedup()
        );
    }
}
