//! Unicast routing tables and multicast distribution trees.
//!
//! Routes are computed with Dijkstra's algorithm over link propagation delay
//! (ties broken by hop count via a tiny per-hop epsilon), which makes the
//! unicast paths of all evaluation topologies the obvious shortest paths.
//! Multicast distribution trees are derived from the unicast routes: the tree
//! rooted at a source is the union of the unicast paths from the source to
//! every group member, which is exactly a shortest-path source tree and
//! mirrors what DVMRP/PIM-SM would build on these topologies.

use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::packet::{GroupId, LinkId, NodeId};

/// Per-hop cost epsilon added to the delay metric so that equal-delay paths
/// prefer fewer hops.
const HOP_EPSILON: f64 = 1e-9;

/// Directed adjacency description used for route computation.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Link id of this edge.
    pub link: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Propagation delay used as the routing metric.
    pub delay: f64,
}

/// Unicast routing state: next-hop link per (source node, destination node).
#[derive(Debug, Default)]
pub struct RoutingTable {
    /// `next_hop[src.0]` maps destination node to the outgoing link.
    next_hop: Vec<HashMap<NodeId, LinkId>>,
}

impl RoutingTable {
    /// Computes routes for `node_count` nodes over the given directed edges.
    pub fn compute(node_count: usize, edges: &[Edge]) -> Self {
        let mut adjacency: Vec<Vec<Edge>> = vec![Vec::new(); node_count];
        for e in edges {
            adjacency[e.from.0].push(*e);
        }
        let mut next_hop = vec![HashMap::new(); node_count];
        for (src, hops) in next_hop.iter_mut().enumerate() {
            let (dist, first_link) = dijkstra(src, node_count, &adjacency);
            for dst in 0..node_count {
                if dst != src && dist[dst].is_finite() {
                    if let Some(link) = first_link[dst] {
                        hops.insert(NodeId(dst), link);
                    }
                }
            }
        }
        RoutingTable { next_hop }
    }

    /// The outgoing link at `from` toward `to`, if a route exists.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.next_hop.get(from.0).and_then(|m| m.get(&to)).copied()
    }

    /// The full path of links from `from` to `to`, if a route exists.
    pub fn path(&self, from: NodeId, to: NodeId, edges: &[Edge]) -> Option<Vec<LinkId>> {
        let by_id: HashMap<LinkId, &Edge> = edges.iter().map(|e| (e.link, e)).collect();
        let mut path = Vec::new();
        let mut cur = from;
        let mut guard = 0;
        while cur != to {
            let link = self.next_hop(cur, to)?;
            path.push(link);
            cur = by_id.get(&link)?.to;
            guard += 1;
            if guard > edges.len() + 1 {
                return None; // routing loop, should not happen
            }
        }
        Some(path)
    }
}

/// Dijkstra from `src`; returns (distance, first link on the path) per node.
fn dijkstra(
    src: usize,
    node_count: usize,
    adjacency: &[Vec<Edge>],
) -> (Vec<f64>, Vec<Option<LinkId>>) {
    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        node: usize,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; distances are finite and non-NaN.
            other
                .dist
                .partial_cmp(&self.dist)
                .expect("distances are never NaN")
                .then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist = vec![f64::INFINITY; node_count];
    let mut first_link: Vec<Option<LinkId>> = vec![None; node_count];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(Entry {
        dist: 0.0,
        node: src,
    });
    let mut done = vec![false; node_count];
    while let Some(Entry { dist: d, node }) = heap.pop() {
        if done[node] {
            continue;
        }
        done[node] = true;
        for e in &adjacency[node] {
            let nd = d + e.delay + HOP_EPSILON;
            if nd < dist[e.to.0] {
                dist[e.to.0] = nd;
                first_link[e.to.0] = if node == src {
                    Some(e.link)
                } else {
                    first_link[node]
                };
                heap.push(Entry {
                    dist: nd,
                    node: e.to.0,
                });
            }
        }
    }
    (dist, first_link)
}

/// A source-rooted multicast distribution tree: for every node, the set of
/// outgoing links on which packets of this (group, source) must be replicated.
#[derive(Debug, Clone, Default)]
pub struct DistributionTree {
    children: HashMap<NodeId, Vec<LinkId>>,
}

impl DistributionTree {
    /// Builds the tree rooted at `source` spanning `members` (node ids of the
    /// group's receivers) as the union of unicast paths.
    pub fn build(
        source: NodeId,
        members: &HashSet<NodeId>,
        routes: &RoutingTable,
        edges: &[Edge],
    ) -> Self {
        let by_id: HashMap<LinkId, &Edge> = edges.iter().map(|e| (e.link, e)).collect();
        let mut children: HashMap<NodeId, HashSet<LinkId>> = HashMap::new();
        for &member in members {
            if member == source {
                continue;
            }
            let mut cur = source;
            let mut guard = 0;
            while cur != member {
                let Some(link) = routes.next_hop(cur, member) else {
                    break; // unreachable member: skip
                };
                children.entry(cur).or_default().insert(link);
                cur = match by_id.get(&link) {
                    Some(e) => e.to,
                    None => break,
                };
                guard += 1;
                if guard > edges.len() + 1 {
                    break;
                }
            }
        }
        DistributionTree {
            children: children
                .into_iter()
                .map(|(n, set)| {
                    let mut v: Vec<LinkId> = set.into_iter().collect();
                    v.sort();
                    (n, v)
                })
                .collect(),
        }
    }

    /// Outgoing links at `node` for this tree.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        self.children.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of edges in the tree.
    pub fn edge_count(&self) -> usize {
        self.children.values().map(Vec::len).sum()
    }
}

/// Multicast group membership plus cached distribution trees.
#[derive(Debug, Default)]
pub struct MulticastState {
    /// Group -> member node set.
    members: HashMap<GroupId, HashSet<NodeId>>,
    /// Cached trees keyed by (group, source node).
    trees: HashMap<(GroupId, NodeId), DistributionTree>,
}

impl MulticastState {
    /// Adds `node` to `group`, invalidating cached trees for the group.
    pub fn join(&mut self, group: GroupId, node: NodeId) {
        self.members.entry(group).or_default().insert(node);
        self.trees.retain(|(g, _), _| *g != group);
    }

    /// Removes `node` from `group`, invalidating cached trees for the group.
    pub fn leave(&mut self, group: GroupId, node: NodeId) {
        if let Some(set) = self.members.get_mut(&group) {
            set.remove(&node);
        }
        self.trees.retain(|(g, _), _| *g != group);
    }

    /// Member node set of a group (empty if the group does not exist).
    pub fn members(&self, group: GroupId) -> HashSet<NodeId> {
        self.members.get(&group).cloned().unwrap_or_default()
    }

    /// Returns (building and caching if necessary) the distribution tree for
    /// `group` rooted at `source`.
    pub fn tree(
        &mut self,
        group: GroupId,
        source: NodeId,
        routes: &RoutingTable,
        edges: &[Edge],
    ) -> &DistributionTree {
        let members = self.members(group);
        self.trees
            .entry((group, source))
            .or_insert_with(|| DistributionTree::build(source, &members, routes, edges))
    }

    /// Drops every cached tree (used after topology changes).
    pub fn invalidate(&mut self) {
        self.trees.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a small test graph:
    ///
    /// ```text
    ///      0 ── 1 ── 2
    ///            │
    ///            3
    /// ```
    /// with unit delays; links are numbered in creation order, both
    /// directions.
    fn line_graph() -> (usize, Vec<Edge>) {
        let mut edges = Vec::new();
        let mut add = |from: usize, to: usize, delay: f64| {
            let id = edges.len();
            edges.push(Edge {
                link: LinkId(id),
                from: NodeId(from),
                to: NodeId(to),
                delay,
            });
        };
        add(0, 1, 0.01);
        add(1, 0, 0.01);
        add(1, 2, 0.01);
        add(2, 1, 0.01);
        add(1, 3, 0.01);
        add(3, 1, 0.01);
        (4, edges)
    }

    #[test]
    fn unicast_routes_follow_shortest_path() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        // 0 -> 2 goes via node 1.
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), Some(LinkId(0)));
        assert_eq!(rt.next_hop(NodeId(1), NodeId(2)), Some(LinkId(2)));
        // 2 -> 3 goes back through 1.
        assert_eq!(rt.next_hop(NodeId(2), NodeId(3)), Some(LinkId(3)));
        // Full path reconstruction.
        let path = rt.path(NodeId(0), NodeId(3), &edges).unwrap();
        assert_eq!(path, vec![LinkId(0), LinkId(4)]);
    }

    #[test]
    fn unreachable_destination_has_no_route() {
        let edges = vec![Edge {
            link: LinkId(0),
            from: NodeId(0),
            to: NodeId(1),
            delay: 0.01,
        }];
        let rt = RoutingTable::compute(3, &edges);
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(rt.next_hop(NodeId(1), NodeId(0)), None); // one-way link
    }

    #[test]
    fn dijkstra_prefers_lower_delay() {
        // Two paths 0->2: direct (delay 0.1) and via 1 (total 0.04).
        let edges = vec![
            Edge {
                link: LinkId(0),
                from: NodeId(0),
                to: NodeId(2),
                delay: 0.1,
            },
            Edge {
                link: LinkId(1),
                from: NodeId(0),
                to: NodeId(1),
                delay: 0.02,
            },
            Edge {
                link: LinkId(2),
                from: NodeId(1),
                to: NodeId(2),
                delay: 0.02,
            },
        ];
        let rt = RoutingTable::compute(3, &edges);
        assert_eq!(rt.next_hop(NodeId(0), NodeId(2)), Some(LinkId(1)));
    }

    #[test]
    fn distribution_tree_is_union_of_paths() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let members: HashSet<NodeId> = [NodeId(2), NodeId(3)].into_iter().collect();
        let tree = DistributionTree::build(NodeId(0), &members, &rt, &edges);
        // Node 0 forwards once toward node 1; node 1 branches to 2 and 3.
        assert_eq!(tree.out_links(NodeId(0)), &[LinkId(0)]);
        let mut at1 = tree.out_links(NodeId(1)).to_vec();
        at1.sort();
        assert_eq!(at1, vec![LinkId(2), LinkId(4)]);
        assert_eq!(tree.out_links(NodeId(2)), &[] as &[LinkId]);
        assert_eq!(tree.edge_count(), 3);
    }

    #[test]
    fn multicast_membership_and_tree_cache() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let mut mc = MulticastState::default();
        let g = GroupId(1);
        mc.join(g, NodeId(2));
        assert_eq!(mc.members(g).len(), 1);
        let t1_edges = mc.tree(g, NodeId(0), &rt, &edges).edge_count();
        assert_eq!(t1_edges, 2); // 0->1->2
        mc.join(g, NodeId(3));
        let t2_edges = mc.tree(g, NodeId(0), &rt, &edges).edge_count();
        assert_eq!(t2_edges, 3); // tree rebuilt after join
        mc.leave(g, NodeId(2));
        let t3_edges = mc.tree(g, NodeId(0), &rt, &edges).edge_count();
        assert_eq!(t3_edges, 2); // 0->1->3
        mc.leave(g, NodeId(3));
        assert_eq!(mc.tree(g, NodeId(0), &rt, &edges).edge_count(), 0);
    }

    #[test]
    fn source_inside_member_set_is_ignored() {
        let (n, edges) = line_graph();
        let rt = RoutingTable::compute(n, &edges);
        let members: HashSet<NodeId> = [NodeId(0), NodeId(2)].into_iter().collect();
        let tree = DistributionTree::build(NodeId(0), &members, &rt, &edges);
        assert_eq!(tree.edge_count(), 2); // only the path to node 2
    }
}
