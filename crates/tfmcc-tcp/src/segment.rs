//! TCP segment payloads exchanged between [`crate::TcpSender`] and
//! [`crate::TcpSink`].

/// Payload carried in netsim packets for the TCP agents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TcpSegment {
    /// A data segment.
    Data {
        /// Segment sequence number (counted in packets, not bytes).
        seq: u64,
        /// Sender timestamp, echoed back in the ACK for RTT measurement.
        timestamp: f64,
    },
    /// A cumulative acknowledgement.
    Ack {
        /// The next sequence number the sink expects (all lower numbers have
        /// been received).
        ack: u64,
        /// Echo of the timestamp of the data segment that triggered this ACK.
        echo_timestamp: f64,
    },
}

/// Wire size of an ACK segment in bytes.
pub const ACK_SIZE: u32 = 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_distinguishable() {
        let d = TcpSegment::Data {
            seq: 5,
            timestamp: 1.0,
        };
        let a = TcpSegment::Ack {
            ack: 6,
            echo_timestamp: 1.0,
        };
        assert_ne!(d, a);
        match d {
            TcpSegment::Data { seq, .. } => assert_eq!(seq, 5),
            _ => panic!("expected data"),
        }
        match a {
            TcpSegment::Ack { ack, .. } => assert_eq!(ack, 6),
            _ => panic!("expected ack"),
        }
    }
}
