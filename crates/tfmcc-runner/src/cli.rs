//! The shared experiment command line.
//!
//! Every experiment binary accepts the same flags:
//!
//! ```text
//! --quick             reduced scale (tests, CI smoke)
//! --paper             the paper's full scale (default)
//! --threads N         worker threads for the sweep executor
//!                     (default: all available cores)
//! --out FILE          write the figure as deterministic JSON to FILE
//! --bench-out FILE    write the run's timing trajectory (BENCH_*.json)
//! --scheduler KIND    event-queue scheduler for every simulation of the
//!                     run: `heap` (default) or `calendar`
//! --sessions N        number of concurrent TFMCC sessions for multi-session
//!                     experiments (figures that sweep the session count pin
//!                     it to N; single-session figures ignore the flag)
//! --queue KIND        bottleneck queue discipline for figures with a
//!                     pluggable bottleneck (fig24): `drop-tail`, `red`,
//!                     `gentle-red` or `codel`
//! --domains N         bottleneck-domain count for the parallel domain-
//!                     sharded simulation core (exported as TFMCC_DOMAINS;
//!                     results are byte-identical for any N)
//! ```
//!
//! `--threads=N`-style `=` forms are accepted too.  Scale resolution
//! (including the `TFMCC_SCALE` environment override) is layered on top by
//! the experiments crate, which owns the `Scale` type; likewise
//! `--scheduler` is applied by the experiments crate, which exports it to
//! simulations through the `TFMCC_SCHEDULER` environment variable (this
//! crate does not depend on the simulator).

use std::path::PathBuf;

/// Parsed shared CLI flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunnerArgs {
    /// `--quick` was passed.
    pub quick: bool,
    /// `--paper` was passed.
    pub paper: bool,
    /// `--threads N`, if given.
    pub threads: Option<usize>,
    /// `--out FILE`, if given.
    pub out: Option<PathBuf>,
    /// `--bench-out FILE`, if given.
    pub bench_out: Option<PathBuf>,
    /// `--scheduler KIND` (`heap` or `calendar`), if given.
    pub scheduler: Option<String>,
    /// `--sessions N`, if given.
    pub sessions: Option<usize>,
    /// `--queue KIND` (`drop-tail`, `red`, `gentle-red` or `codel`), if
    /// given.
    pub queue: Option<String>,
    /// `--domains N`, if given.
    pub domains: Option<usize>,
}

impl RunnerArgs {
    /// Parses the process arguments, printing usage and exiting with status 2
    /// on errors.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <bin> [--quick | --paper] [--threads N] [--out FILE] [--bench-out FILE] [--scheduler heap|calendar] [--sessions N] [--queue drop-tail|red|gentle-red|codel] [--domains N]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (for tests).
    pub fn try_parse<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut parsed = RunnerArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let value = |it: &mut I::IntoIter| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it.next().ok_or_else(|| format!("{flag} requires a value")),
                }
            };
            match flag.as_str() {
                "--quick" | "--paper" if inline.is_some() => {
                    return Err(format!("{flag} does not take a value"));
                }
                "--quick" => parsed.quick = true,
                "--paper" => parsed.paper = true,
                "--threads" => {
                    let v = value(&mut it)?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid --threads value '{v}'"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    parsed.threads = Some(n);
                }
                "--out" => parsed.out = Some(PathBuf::from(value(&mut it)?)),
                "--bench-out" => parsed.bench_out = Some(PathBuf::from(value(&mut it)?)),
                "--sessions" => {
                    let v = value(&mut it)?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid --sessions value '{v}'"))?;
                    if n == 0 {
                        return Err("--sessions must be at least 1".into());
                    }
                    parsed.sessions = Some(n);
                }
                "--domains" => {
                    let v = value(&mut it)?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid --domains value '{v}'"))?;
                    if n == 0 {
                        return Err("--domains must be at least 1".into());
                    }
                    parsed.domains = Some(n);
                }
                "--scheduler" => {
                    let v = value(&mut it)?;
                    if !matches!(v.as_str(), "heap" | "calendar") {
                        return Err(format!(
                            "invalid --scheduler value '{v}' (use 'heap' or 'calendar')"
                        ));
                    }
                    parsed.scheduler = Some(v);
                }
                "--queue" => {
                    let v = value(&mut it)?;
                    if !matches!(v.as_str(), "drop-tail" | "red" | "gentle-red" | "codel") {
                        return Err(format!(
                            "invalid --queue value '{v}' (use 'drop-tail', 'red', 'gentle-red' or 'codel')"
                        ));
                    }
                    parsed.queue = Some(v);
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        if parsed.quick && parsed.paper {
            return Err("--quick and --paper are mutually exclusive".into());
        }
        Ok(parsed)
    }

    /// The worker-thread count to use: `--threads N` if given, otherwise the
    /// machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(available_threads)
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunnerArgs, String> {
        RunnerArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let args = parse(&["--quick", "--threads", "4", "--out", "fig.json"]).unwrap();
        assert!(args.quick && !args.paper);
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.out, Some(PathBuf::from("fig.json")));
        assert_eq!(args.effective_threads(), 4);
    }

    #[test]
    fn parses_equals_forms() {
        let args = parse(&["--threads=8", "--bench-out=BENCH_x.json"]).unwrap();
        assert_eq!(args.threads, Some(8));
        assert_eq!(args.bench_out, Some(PathBuf::from("BENCH_x.json")));
    }

    #[test]
    fn parses_scheduler() {
        let args = parse(&["--scheduler", "calendar"]).unwrap();
        assert_eq!(args.scheduler.as_deref(), Some("calendar"));
        let args = parse(&["--scheduler=heap"]).unwrap();
        assert_eq!(args.scheduler.as_deref(), Some("heap"));
    }

    #[test]
    fn parses_sessions() {
        let args = parse(&["--sessions", "4"]).unwrap();
        assert_eq!(args.sessions, Some(4));
        let args = parse(&["--sessions=8"]).unwrap();
        assert_eq!(args.sessions, Some(8));
        assert!(parse(&["--sessions", "0"]).is_err());
        assert!(parse(&["--sessions", "many"]).is_err());
        assert!(parse(&["--sessions"]).is_err());
    }

    #[test]
    fn parses_domains() {
        let args = parse(&["--domains", "4"]).unwrap();
        assert_eq!(args.domains, Some(4));
        let args = parse(&["--domains=2"]).unwrap();
        assert_eq!(args.domains, Some(2));
        assert!(parse(&["--domains", "0"]).is_err());
        assert!(parse(&["--domains", "x"]).is_err());
    }

    #[test]
    fn parses_queue() {
        let args = parse(&["--queue", "gentle-red"]).unwrap();
        assert_eq!(args.queue.as_deref(), Some("gentle-red"));
        let args = parse(&["--queue=codel"]).unwrap();
        assert_eq!(args.queue.as_deref(), Some("codel"));
        assert!(parse(&["--queue", "fifo"]).is_err());
        assert!(parse(&["--queue"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--threads", "zero"]).is_err());
        assert!(parse(&["--scheduler", "wheel"]).is_err());
        assert!(parse(&["--scheduler"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--quick", "--paper"]).is_err());
        assert!(parse(&["--quick=paper"]).is_err());
        assert!(parse(&["--paper=false"]).is_err());
    }

    #[test]
    fn defaults_are_empty() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, RunnerArgs::default());
        assert!(args.effective_threads() >= 1);
    }
}
