//! Cross-crate property-based tests on core protocol invariants.

use proptest::prelude::*;

use tfmcc::model::throughput::{mathis_loss_rate, mathis_throughput, padhye_throughput};
use tfmcc::proto::config::TfmccConfig;
use tfmcc::proto::feedback::FeedbackPlanner;
use tfmcc::proto::loss::LossHistory;
use tfmcc::proto::rtt::RttEstimator;

proptest! {
    /// The control equation is monotone: more loss or more delay never yields
    /// a higher rate.
    #[test]
    fn control_equation_is_monotone(
        p1 in 1e-6f64..0.5,
        dp in 1e-6f64..0.4,
        rtt in 0.001f64..2.0,
        drtt in 0.001f64..2.0,
    ) {
        let base = padhye_throughput(1000.0, rtt, p1);
        prop_assert!(padhye_throughput(1000.0, rtt, (p1 + dp).min(1.0)) <= base + 1e-9);
        prop_assert!(padhye_throughput(1000.0, rtt + drtt, p1) <= base + 1e-9);
    }

    /// The simplified equation and its inverse are consistent for any
    /// achievable rate.
    #[test]
    fn mathis_inverse_is_consistent(p in 1e-6f64..1.0, rtt in 0.001f64..2.0) {
        let rate = mathis_throughput(1500.0, rtt, p);
        let back = mathis_loss_rate(1500.0, rtt, rate);
        prop_assert!((back - p).abs() < 1e-6 * p.max(1e-6));
    }

    /// Feedback timers always lie within [0, T] and cancellation is monotone
    /// in the receiver's own rate.
    #[test]
    fn feedback_timer_bounds(ratio in 0.0f64..2.0, uniform in 1e-9f64..1.0, window in 0.01f64..100.0) {
        let planner = FeedbackPlanner::from_config(&TfmccConfig::default());
        let t = planner.timer(ratio, window, uniform);
        prop_assert!(t >= 0.0);
        prop_assert!(t <= window + 1e-9);
    }

    /// Cancellation: if a receiver with rate `a` is cancelled by an echo, any
    /// receiver with a higher rate is cancelled too.
    #[test]
    fn cancellation_is_monotone(a in 1.0f64..1e9, b in 1.0f64..1e9, echo in 1.0f64..1e9) {
        let planner = FeedbackPlanner::from_config(&TfmccConfig::default());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if planner.should_cancel(lo, echo) {
            prop_assert!(planner.should_cancel(hi, echo));
        }
    }

    /// Loss history invariants under an arbitrary pattern of received
    /// sequence numbers: the loss event rate stays in [0, 1] and equals zero
    /// iff no loss was seen.
    #[test]
    fn loss_history_rate_is_bounded(gaps in proptest::collection::vec(0u64..5, 1..200)) {
        let config = TfmccConfig::default();
        let mut history = LossHistory::new(&config);
        let mut seq = 0u64;
        let mut now = 0.0;
        let mut first = true;
        for gap in gaps {
            seq += gap; // skip `gap` packets (they count as lost)
            let update = history.on_packet(seq, now, 0.05);
            if update.first_loss_event && first {
                history.initialize_first_interval(100_000.0, 0.05, false);
                first = false;
            }
            seq += 1;
            now += 0.01;
        }
        let p = history.loss_event_rate();
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert_eq!(p > 0.0, history.has_loss());
        prop_assert!(history.packets_received() > 0);
    }

    /// The RTT estimator never reports a non-positive estimate and converges
    /// to constant samples.
    #[test]
    fn rtt_estimator_stays_positive(samples in proptest::collection::vec(0.0f64..5.0, 1..50)) {
        let mut est = RttEstimator::new(&TfmccConfig::default());
        for (i, s) in samples.iter().enumerate() {
            est.on_measurement(*s, i % 2 == 0, s / 2.0);
            prop_assert!(est.current() > 0.0);
        }
        let last = *samples.last().unwrap();
        for _ in 0..200 {
            est.on_measurement(last, true, last / 2.0);
        }
        prop_assert!((est.current() - last.max(1e-4)).abs() < 0.05 * last.max(1e-4) + 1e-6);
    }
}
