//! Suppression pragmas: `// tfmcc-lint: allow(<RULE>, reason = "...")`.
//!
//! A pragma suppresses findings of the named rule **on its own line and on
//! the line immediately below it** — tight scope by design, so a suppression
//! can never silently cover code added later.  The `reason` is mandatory: a
//! pragma without one (or with an empty one) does not suppress anything and
//! is itself reported as rule `L001`, as is a pragma naming an unknown rule
//! or one the parser cannot make sense of.  This is what makes the
//! acceptance gate "zero reason-less suppressions" mechanical.

use crate::lexer::{Token, TokenKind};
use crate::rules::RULE_IDS;

/// The marker every pragma comment carries.
pub const MARKER: &str = "tfmcc-lint:";

/// One parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule id being allowed (e.g. `D001`).
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: usize,
}

/// A pragma that exists but cannot be honoured (reported as `L001`).
#[derive(Debug, Clone)]
pub struct BadPragma {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// Why the pragma is rejected.
    pub problem: String,
}

/// Extracts all pragmas (valid and invalid) from a token stream's comments.
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are prose, not pragma carriers,
/// so a rendered example of the pragma syntax never parses as one.
pub fn collect(tokens: &[Token]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for token in tokens {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        if is_doc_comment(&token.text) {
            continue;
        }
        let Some(at) = token.text.find(MARKER) else {
            continue;
        };
        let rest = token.text[at + MARKER.len()..].trim();
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                if !RULE_IDS.contains(&rule.as_str()) {
                    bad.push(BadPragma {
                        line: token.line,
                        problem: format!("unknown rule `{rule}` in suppression pragma"),
                    });
                } else if reason.trim().is_empty() {
                    bad.push(BadPragma {
                        line: token.line,
                        problem: format!(
                            "suppression of `{rule}` carries an empty reason; say why the \
                             finding is safe"
                        ),
                    });
                } else {
                    good.push(Pragma {
                        rule,
                        reason,
                        line: token.line,
                    });
                }
            }
            Err(problem) => bad.push(BadPragma {
                line: token.line,
                problem,
            }),
        }
    }
    (good, bad)
}

/// True for `///`, `//!`, `/**` and `/*!` comments (but not the plain `//`
/// and `/* */` forms, and not the `////`/`/***` separators rustdoc ignores).
fn is_doc_comment(text: &str) -> bool {
    let line_doc =
        (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    let block_doc =
        (text.starts_with("/**") && !text.starts_with("/***")) || text.starts_with("/*!");
    line_doc || block_doc
}

/// Parses `allow(<RULE>, reason = "...")`, returning `(rule, reason)`.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let text = text.trim();
    let Some(args) = text.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(<RULE>, reason = \"...\")` after `{MARKER}`, found `{text}`"
        ));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = args.rfind(')') else {
        return Err("unterminated `allow(...)` pragma".to_string());
    };
    let args = &args[..close];
    let (rule, rest) = match args.split_once(',') {
        Some((rule, rest)) => (rule.trim(), rest.trim()),
        None => {
            let rule = args.trim();
            return Err(format!(
                "suppression of `{rule}` has no reason; write \
                 `allow({rule}, reason = \"...\")`"
            ));
        }
    };
    if rule.is_empty() {
        return Err("empty rule id in suppression pragma".to_string());
    }
    let Some(value) = rest.strip_prefix("reason") else {
        return Err(format!(
            "expected `reason = \"...\"` in suppression of `{rule}`, found `{rest}`"
        ));
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('=') else {
        return Err(format!(
            "expected `=` after `reason` in suppression of `{rule}`"
        ));
    };
    let value = value.trim();
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("the reason in suppression of `{rule}` must be a quoted string"))?;
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn well_formed_pragma_parses() {
        let toks = lex("// tfmcc-lint: allow(D001, reason = \"lookup only, never iterated\")\n");
        let (good, bad) = collect(&toks);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(good.len(), 1);
        assert_eq!(good[0].rule, "D001");
        assert_eq!(good[0].reason, "lookup only, never iterated");
        assert_eq!(good[0].line, 1);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let toks = lex("// tfmcc-lint: allow(D001)\n");
        let (good, bad) = collect(&toks);
        assert!(good.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].problem.contains("no reason"), "{:?}", bad[0]);
    }

    #[test]
    fn empty_reason_is_rejected() {
        let toks = lex("// tfmcc-lint: allow(D002, reason = \"  \")\n");
        let (good, bad) = collect(&toks);
        assert!(good.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].problem.contains("empty reason"), "{:?}", bad[0]);
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let toks = lex("// tfmcc-lint: allow(D999, reason = \"nope\")\n");
        let (_, bad) = collect(&toks);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].problem.contains("unknown rule"), "{:?}", bad[0]);
    }

    #[test]
    fn garbled_pragma_is_rejected_not_ignored() {
        let toks = lex("// tfmcc-lint: alow(D001, reason = \"typo in allow\")\n");
        let (good, bad) = collect(&toks);
        assert!(good.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let toks = lex(
            "//! Syntax: `// tfmcc-lint: allow(<RULE>, reason = \"...\")`.\n\
             /// Same in item docs: tfmcc-lint: allow(D001, reason = \"x\").\n",
        );
        let (good, bad) = collect(&toks);
        assert!(good.is_empty(), "{good:?}");
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let toks = lex("// a comment mentioning allow(D001) but no marker\n");
        let (good, bad) = collect(&toks);
        assert!(good.is_empty());
        assert!(bad.is_empty());
    }
}
