//! Figure 23 (beyond the paper): inter-TFMCC fairness — K competing TFMCC
//! sessions over one shared bottleneck.
//!
//! The paper's evaluation doubles *TCP* flows against one TFMCC flow
//! (Figure 21); this scenario turns the competition inward and runs several
//! independent TFMCC sessions — each with its own sender, multicast group
//! and receiver population, wired by
//! [`tfmcc_agents::manager::SessionManager`] — through a common bottleneck.
//! A single-rate protocol that is fair to TCP should *a fortiori* be fair to
//! itself: the sessions' long-term rates should converge towards equal
//! shares, which the figure quantifies with Jain's fairness index
//! `(Σx)²/(n·Σx²)` alongside min/mean/max session rates and per-session rate
//! traces.
//!
//! Receiver populations scale with the experiment [`Scale`]: a handful per
//! session at quick scale, and a fixed **total of 10⁵ receivers split over
//! the sessions** at paper scale — the multi-session frontier the roadmap
//! names, exercising the incremental feedback aggregation and the zero-copy
//! fan-out in one run.
//!
//! The session-count sweep runs on the parallel sweep runner (one
//! simulation per K).  `--sessions N` (or the `TFMCC_SESSIONS` environment
//! variable) pins the sweep to a single session count.

use netsim::prelude::*;
use tfmcc_agents::manager::{SessionManager, SessionSpec};
use tfmcc_agents::population::{FluidSpec, PopulationSpec};
use tfmcc_agents::session::ReceiverSpec;
use tfmcc_model::population::Dist;
use tfmcc_runner::{Sweep, SweepRunner};

use crate::output::{Figure, Series};
use crate::scale::Scale;

/// Seconds between consecutive session starts (sessions join a running
/// system, they do not line up on t = 0).
const START_STAGGER: f64 = 5.0;

/// Deterministic result of one inter-TFMCC sweep point.
struct IntertfmccOutcome {
    sessions: usize,
    receivers_per_session: usize,
    jain: f64,
    min_kbit: f64,
    mean_kbit: f64,
    max_kbit: f64,
    aggregate_kbit: f64,
    clr_changes: u64,
    /// `(time, kbit/s)` probe trace per session, session order.
    traces: Vec<Vec<(f64, f64)>>,
}

/// The session counts a scale sweeps, honouring the `TFMCC_SESSIONS`
/// override (exported by the shared CLI's `--sessions` flag).
pub fn session_counts(scale: Scale) -> Vec<usize> {
    if let Ok(value) = std::env::var("TFMCC_SESSIONS") {
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => return vec![n],
            _ => eprintln!(
                "warning: ignoring invalid TFMCC_SESSIONS value '{value}' (need a count ≥ 1)"
            ),
        }
    }
    scale.pick(vec![2, 4], vec![2, 4, 8])
}

/// Total receivers split over the competing sessions.
fn total_receivers(scale: Scale) -> usize {
    scale.pick(8, 100_000)
}

/// Builds and runs one shared-bottleneck simulation with `k` competing
/// sessions of `receivers_per_session` packet-level receivers each, plus
/// (when `fluid_bulk > 0`) a per-session fluid population of that many
/// receivers — the hybrid tier that carries the fairness experiment to 10⁶
/// receivers and beyond.
fn run_intertfmcc_point(
    k: usize,
    receivers_per_session: usize,
    fluid_bulk: u64,
    seed: u64,
    duration: f64,
) -> IntertfmccOutcome {
    let mut sim = Simulator::new(seed);
    // Dumbbell core: every sender feeds the left router, every receiver
    // hangs off the right router, and all data crosses the shared
    // 8 Mbit/s bottleneck.
    let left = sim.add_node("left");
    let right = sim.add_node("right");
    sim.add_duplex_link(
        left,
        right,
        1_000_000.0, // 8 Mbit/s shared bottleneck
        0.02,
        QueueDiscipline::drop_tail(100),
    );
    let mut manager = SessionManager::new();
    for session in 0..k {
        let sender = sim.add_node(&format!("s{session}"));
        sim.add_duplex_link(
            sender,
            left,
            1_250_000.0,
            0.005,
            QueueDiscipline::drop_tail(60),
        );
        let specs: Vec<ReceiverSpec> = (0..receivers_per_session)
            .map(|i| {
                let node = sim.add_node(&format!("r{session}_{i}"));
                sim.add_duplex_link(
                    right,
                    node,
                    1_250_000.0,
                    0.005 + 0.002 * (i % 5) as f64,
                    QueueDiscipline::drop_tail(60),
                );
                ReceiverSpec::always(node)
            })
            .collect();
        let mut populations = PopulationSpec::packets(&specs);
        if fluid_bulk > 0 {
            let node = sim.add_node(&format!("fluid{session}"));
            sim.add_duplex_link(
                right,
                node,
                12_500_000.0,
                0.005,
                QueueDiscipline::drop_tail(60),
            );
            populations.push(PopulationSpec::Fluid(FluidSpec::new(
                node,
                fluid_bulk,
                Dist::Uniform {
                    lo: 0.001,
                    hi: 0.01,
                },
                Dist::Uniform { lo: 0.02, hi: 0.06 },
            )));
        }
        manager.add_population_session(
            &mut sim,
            &SessionSpec::default().starting_at(session as f64 * START_STAGGER),
            sender,
            &populations,
        );
    }
    sim.run_until(SimTime::from_secs(duration));

    // Fairness window: after the last session had time to converge.
    let from = (k as f64 * START_STAGGER + duration * 0.4).min(duration * 0.7);
    let to = duration - 2.0;
    let report = manager.report(&sim, from, to);
    let kbit = |bytes_per_sec: f64| bytes_per_sec * 8.0 / 1000.0;
    IntertfmccOutcome {
        sessions: k,
        receivers_per_session,
        jain: report.jain_index(),
        min_kbit: kbit(report.min_throughput()),
        mean_kbit: kbit(report.total_throughput() / k as f64),
        max_kbit: kbit(report.max_throughput()),
        aggregate_kbit: kbit(report.total_throughput()),
        clr_changes: report
            .sessions
            .iter()
            .map(|s| s.sender_stats.clr_changes)
            .sum(),
        traces: report
            .sessions
            .iter()
            .map(|s| {
                s.probe_trace
                    .iter()
                    .map(|&(t, bps)| (t, kbit(bps)))
                    .collect()
            })
            .collect(),
    }
}

/// Figure 23: inter-TFMCC fairness over a shared 8 Mbit/s bottleneck as a
/// function of the number of competing sessions.
pub fn fig23_intertfmcc(runner: &SweepRunner, scale: Scale) -> Figure {
    let counts = session_counts(scale);
    let duration = scale.pick(60.0, 240.0);
    let total = total_receivers(scale);
    let sweep = Sweep::new("fig23", 2323, counts);
    let outcomes = runner.run(&sweep, |pt| {
        let k = *pt.value;
        run_intertfmcc_point(k, (total / k).max(1), 0, pt.seed, duration)
    });

    let mut fig = Figure::new(
        "fig23",
        "Inter-TFMCC fairness: K sessions sharing an 8 Mbit/s bottleneck",
        "number of sessions",
        "Jain index / throughput (kbit/s)",
    );
    fig.push_series(Series::new(
        "Jain index",
        outcomes
            .iter()
            .map(|o| (o.sessions as f64, o.jain))
            .collect(),
    ));
    type RateColumn = (&'static str, fn(&IntertfmccOutcome) -> f64);
    let rate_series: [RateColumn; 4] = [
        ("min session rate (kbit/s)", |o| o.min_kbit),
        ("mean session rate (kbit/s)", |o| o.mean_kbit),
        ("max session rate (kbit/s)", |o| o.max_kbit),
        ("aggregate rate (kbit/s)", |o| o.aggregate_kbit),
    ];
    for (name, f) in rate_series {
        fig.push_series(Series::new(
            name,
            outcomes.iter().map(|o| (o.sessions as f64, f(o))).collect(),
        ));
    }
    // Rate traces of the largest session count, so the convergence after
    // each staggered start stays visible (capped at four sessions).
    if let Some(largest) = outcomes.last() {
        for (i, trace) in largest.traces.iter().take(4).enumerate() {
            fig.push_series(Series::new(
                format!("session {} trace (kbit/s)", i + 1),
                trace.clone(),
            ));
        }
    }

    // The hybrid extension: the same fairness experiment with each session
    // carrying a fluid bulk, for a 10⁶-receiver (quick) / 10⁷-receiver
    // (paper) total across the competing sessions.
    let hybrid_k = *session_counts(scale).last().unwrap();
    let hybrid_bulk = scale.pick(1_000_000u64, 10_000_000) / hybrid_k as u64;
    let hybrid_sweep = Sweep::new("fig23/hybrid", 23_232, vec![hybrid_k]);
    let hybrid = runner.run(&hybrid_sweep, |pt| {
        let k = *pt.value;
        run_intertfmcc_point(k, (total / k).max(1), hybrid_bulk, pt.seed, duration)
    });
    fig.push_series(Series::new(
        "hybrid Jain index",
        hybrid.iter().map(|o| (o.sessions as f64, o.jain)).collect(),
    ));
    fig.push_series(Series::new(
        "hybrid aggregate rate (kbit/s)",
        hybrid
            .iter()
            .map(|o| (o.sessions as f64, o.aggregate_kbit))
            .collect(),
    ));

    let worst = outcomes
        .iter()
        .min_by(|a, b| a.jain.partial_cmp(&b.jain).expect("jain is never NaN"))
        .expect("at least one session count");
    let hybrid_last = hybrid.last().unwrap();
    fig.note(format!(
        "Jain index {:.3} at K={} (worst over the sweep); {} receivers per session at the \
         largest K; aggregate {:.0} kbit/s of the 8000 kbit/s bottleneck; {} CLR changes; \
         hybrid: K={} sessions with {} fluid receivers each share at Jain {:.3}",
        worst.jain,
        worst.sessions,
        outcomes.last().unwrap().receivers_per_session,
        outcomes.last().unwrap().aggregate_kbit,
        outcomes.last().unwrap().clr_changes,
        hybrid_last.sessions,
        hybrid_bulk,
        hybrid_last.jain,
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfmcc_runner::SweepRunner;

    #[test]
    fn fig23_sessions_share_fairly() {
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_SESSIONS");
        let fig = fig23_intertfmcc(&SweepRunner::new(2), Scale::Quick);
        let jain = fig.series("Jain index").unwrap();
        assert_eq!(jain.points.len(), 2, "quick scale sweeps K = 2 and 4");
        for &(k, j) in &jain.points {
            assert!(
                j > 0.6,
                "K={k} competing TFMCC sessions should share the bottleneck \
                 (Jain {j})"
            );
            assert!(j <= 1.0 + 1e-12);
        }
        let min = fig.series("min session rate (kbit/s)").unwrap();
        for &(k, kbit) in &min.points {
            assert!(kbit > 100.0, "a session starved at K={k}: {kbit} kbit/s");
        }
        let agg = fig.series("aggregate rate (kbit/s)").unwrap();
        for &(k, kbit) in &agg.points {
            assert!(
                kbit < 8000.0 * 1.05,
                "aggregate exceeds the bottleneck at K={k}: {kbit}"
            );
        }
    }

    #[test]
    fn fig23_hybrid_sessions_share_a_million_receivers_fairly() {
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_SESSIONS");
        let fig = fig23_intertfmcc(&SweepRunner::new(2), Scale::Quick);
        let jain = fig.series("hybrid Jain index").unwrap();
        let &(k, j) = jain.points.last().unwrap();
        assert!(
            j > 0.6,
            "K={k} hybrid sessions (10⁶ fluid receivers total) should share \
             the bottleneck (Jain {j})"
        );
        let agg = fig.series("hybrid aggregate rate (kbit/s)").unwrap();
        let &(_, kbit) = agg.points.last().unwrap();
        assert!(kbit > 100.0, "hybrid sessions starved: {kbit} kbit/s");
        assert!(kbit < 8000.0 * 1.05, "aggregate exceeds the bottleneck");
    }

    #[test]
    fn fig23_is_thread_count_invariant() {
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_SESSIONS");
        let serial = fig23_intertfmcc(&SweepRunner::new(1), Scale::Quick);
        let parallel = fig23_intertfmcc(&SweepRunner::new(4), Scale::Quick);
        assert_eq!(serial.to_json().render(), parallel.to_json().render());
    }

    #[test]
    fn sessions_env_override_pins_the_sweep() {
        let _guard = crate::scale::env_lock();
        std::env::set_var("TFMCC_SESSIONS", "3");
        assert_eq!(session_counts(Scale::Quick), vec![3]);
        assert_eq!(session_counts(Scale::Paper), vec![3]);
        std::env::set_var("TFMCC_SESSIONS", "0");
        assert_eq!(session_counts(Scale::Quick), vec![2, 4]);
        std::env::remove_var("TFMCC_SESSIONS");
        assert_eq!(session_counts(Scale::Paper), vec![2, 4, 8]);
    }
}
