//! Packets, addresses and flow identifiers.
//!
//! The simulator is protocol-agnostic: a [`Packet`] carries routing metadata
//! (source address, destination, size, flow id) plus an opaque, cheaply
//! cloneable [`Payload`] that the protocol agents downcast to their own
//! header types.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::time::SimTime;

/// Identifier of a node (host or router) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifier of an agent (protocol endpoint) attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// Identifier of a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Identifier of a flow, used for statistics attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A port number distinguishing multiple agents on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

/// A (node, port) pair identifying a protocol endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Address {
    /// Node the endpoint lives on.
    pub node: NodeId,
    /// Port the endpoint is bound to on that node.
    pub port: Port,
}

impl Address {
    /// Convenience constructor.
    pub fn new(node: NodeId, port: Port) -> Self {
        Self { node, port }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port.0)
    }
}

/// Destination of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Deliver to a single endpoint, forwarding hop by hop.
    Unicast(Address),
    /// Deliver to every member of a multicast group subscribed on `port`,
    /// replicating along the group's distribution tree.
    Multicast {
        /// Multicast group to fan out to.
        group: GroupId,
        /// Port the receivers are subscribed on.
        port: Port,
    },
}

/// Opaque protocol payload: an `Arc` to any `Send + Sync` value.
///
/// Cloning is cheap (reference count bump) which matters because multicast
/// forwarding clones packets at every branching point of the distribution
/// tree.
#[derive(Clone)]
pub struct Payload(Arc<dyn Any + Send + Sync>);

impl Payload {
    /// Wraps a protocol header/body value.
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        Payload(Arc::new(value))
    }

    /// An empty payload for pure filler traffic.
    pub fn empty() -> Self {
        Payload(Arc::new(()))
    }

    /// Attempts to view the payload as a `T`.
    pub fn downcast_ref<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// True if the payload is of type `T`.
    pub fn is<T: Any + Send + Sync>(&self) -> bool {
        self.0.is::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload(..)")
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id assigned by the simulator when the packet is first sent.
    pub id: u64,
    /// Sending endpoint.
    pub src: Address,
    /// Destination endpoint or multicast group.
    pub dst: Dest,
    /// Size on the wire in bytes (headers included), used for serialization
    /// delay and queue accounting.
    pub size: u32,
    /// Flow this packet belongs to, for statistics.
    pub flow: FlowId,
    /// Simulation time at which the packet left the sending agent.
    pub sent_at: SimTime,
    /// Protocol payload.
    pub payload: Payload,
}

impl Packet {
    /// Builds a packet ready to hand to [`crate::sim::Context::send`].
    ///
    /// `id` and `sent_at` are filled in by the simulator.
    pub fn new(src: Address, dst: Dest, size: u32, flow: FlowId, payload: Payload) -> Self {
        Packet {
            id: 0,
            src,
            dst,
            size,
            flow,
            sent_at: SimTime::ZERO,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcasts_to_original_type() {
        #[derive(Debug, PartialEq)]
        struct Header {
            seq: u32,
        }
        let p = Payload::new(Header { seq: 7 });
        assert!(p.is::<Header>());
        assert_eq!(p.downcast_ref::<Header>().unwrap().seq, 7);
        assert!(p.downcast_ref::<u32>().is_none());
    }

    #[test]
    fn payload_clone_shares_value() {
        let p = Payload::new(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(q.downcast_ref::<Vec<u8>>().unwrap(), &vec![1, 2, 3]);
    }

    #[test]
    fn packet_construction_defaults() {
        let src = Address::new(NodeId(0), Port(1));
        let dst = Dest::Unicast(Address::new(NodeId(1), Port(2)));
        let pkt = Packet::new(src, dst, 1000, FlowId(3), Payload::empty());
        assert_eq!(pkt.id, 0);
        assert_eq!(pkt.size, 1000);
        assert_eq!(pkt.flow, FlowId(3));
        assert_eq!(pkt.src, src);
    }

    #[test]
    fn address_display() {
        let a = Address::new(NodeId(4), Port(9));
        assert_eq!(format!("{a}"), "n4:9");
    }
}
