//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library synchronization primitives behind the
//! `parking_lot` API shape the workspace uses: `lock()` / `read()` / `write()`
//! without a poisoning `Result`.  A poisoned std lock (a panic while held)
//! just recovers the inner guard, matching parking_lot's no-poisoning
//! semantics closely enough for this workspace's monitoring state.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poisoning error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poisoning errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips_under_contention() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
