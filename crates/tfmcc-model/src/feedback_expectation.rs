//! Expected number of feedback responses under exponential timer suppression.
//!
//! Paper Section 2.5.4 (Figure 4) plots the expected number of feedback
//! messages per round when `n` receivers draw exponentially distributed
//! random timers over `[0, T']` (paper Eq. 2) and a response suppresses all
//! timers that have not yet fired once it has propagated (one network delay
//! `D` after it is sent).
//!
//! A receiver responds iff its timer fires earlier than
//! `min(other timers) + D`, so the expected number of responses is
//!
//! ```text
//! E[R] = n * ∫ f(t) * (1 - F(t - D))^(n-1) dt
//! ```
//!
//! with `F` the timer CDF `F(t) = N^(t/T' - 1)` on `[0, T']` (with an atom of
//! size `1/N` at zero) and `f` its density.  The integral has no elementary
//! closed form once the atom and the boundary are handled, so we evaluate it
//! numerically on a fine grid; the result matches Monte-Carlo simulation of
//! feedback rounds (see `tfmcc-feedback`) to well under one response.

/// Parameters of the exponential feedback timer suppression model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackModel {
    /// Estimated upper bound `N` on the receiver-set size (paper uses 10 000).
    pub n_estimate: f64,
    /// Maximum feedback delay `T'` used for suppression, in units of the
    /// network delay `D` (i.e. `T' = x` means `x · D` seconds).
    pub t_max_in_delays: f64,
}

impl Default for FeedbackModel {
    fn default() -> Self {
        Self {
            n_estimate: 10_000.0,
            t_max_in_delays: 4.0,
        }
    }
}

impl FeedbackModel {
    /// CDF of a single feedback timer at time `t` (in network-delay units).
    ///
    /// `F(t) = N^(t/T' - 1)` for `0 <= t <= T'`, `0` below, `1` above.  The
    /// value at `t = 0` is `1/N`, the probability of an immediate response.
    pub fn timer_cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else if t >= self.t_max_in_delays {
            1.0
        } else {
            self.n_estimate.powf(t / self.t_max_in_delays - 1.0)
        }
    }

    /// Expected number of responses in one feedback round with `n` receivers.
    pub fn expected_responses(&self, n: u64) -> f64 {
        expected_responses(n, self.n_estimate, self.t_max_in_delays, 1.0)
    }
}

/// Expected number of feedback responses in a single suppression round.
///
/// * `n` — actual number of receivers wishing to respond,
/// * `n_estimate` — the `N` used to parameterise the timers,
/// * `t_max` — maximum feedback delay `T'`,
/// * `delay` — one-way network delay `D` after which a response suppresses
///   others (same unit as `t_max`).
pub fn expected_responses(n: u64, n_estimate: f64, t_max: f64, delay: f64) -> f64 {
    assert!(n_estimate > 1.0, "n_estimate must exceed 1");
    assert!(t_max > 0.0, "t_max must be positive");
    assert!(delay >= 0.0, "delay must be non-negative");
    if n == 0 {
        return 0.0;
    }
    if n == 1 {
        return 1.0;
    }
    let nf = n as f64;
    let cdf = |t: f64| -> f64 {
        if t < 0.0 {
            0.0
        } else if t >= t_max {
            1.0
        } else {
            n_estimate.powf(t / t_max - 1.0)
        }
    };
    // P(response) for one receiver = E over its own timer t of
    // (1 - F(t - delay))^(n-1); the expectation over t is taken against the
    // timer distribution which has an atom of 1/N at t = 0 and density
    // F'(t) = F(t) * ln(N)/T' on (0, T'].
    let atom = 1.0 / n_estimate;
    // A receiver firing at exactly 0 can only be suppressed by another timer
    // earlier than -delay, which is impossible, so the atom always responds.
    let mut p_respond = atom;
    let steps = 4000;
    let ln_n = n_estimate.ln();
    let dt = t_max / steps as f64;
    let mut prev = {
        let t = 0.0_f64;
        cdf(t) * ln_n / t_max * (1.0 - cdf(t - delay)).powf(nf - 1.0)
    };
    for i in 1..=steps {
        let t = i as f64 * dt;
        let density = cdf(t) * ln_n / t_max;
        let val = density * (1.0 - cdf(t - delay)).powf(nf - 1.0);
        p_respond += 0.5 * (prev + val) * dt;
        prev = val;
    }
    nf * p_respond
}

/// Sweep of [`expected_responses`] over a grid of `t_max` values and receiver
/// counts, as plotted in paper Figure 4.
///
/// Returns one row per `(t_max, n)` pair: `(t_max, n, expected_responses)`.
pub fn expected_responses_grid(
    t_max_values: &[f64],
    n_values: &[u64],
    n_estimate: f64,
) -> Vec<(f64, u64, f64)> {
    let mut out = Vec::with_capacity(t_max_values.len() * n_values.len());
    for &t in t_max_values {
        for &n in n_values {
            out.push((t, n, expected_responses(n, n_estimate, t, 1.0)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_receiver_always_responds_once() {
        assert_eq!(expected_responses(1, 10_000.0, 4.0, 1.0), 1.0);
        assert_eq!(expected_responses(0, 10_000.0, 4.0, 1.0), 0.0);
    }

    #[test]
    fn more_receivers_never_fewer_responses_than_one() {
        for &n in &[2u64, 10, 100, 1000, 10_000] {
            let r = expected_responses(n, 10_000.0, 4.0, 1.0);
            assert!(r >= 1.0, "n={n}: {r}");
        }
    }

    #[test]
    fn implosion_when_t_max_too_small() {
        // With a suppression window shorter than the network delay nobody is
        // suppressed: everyone responds.
        let r = expected_responses(500, 10_000.0, 0.5, 1.0);
        assert!(r > 450.0, "expected near-implosion, got {r}");
    }

    #[test]
    fn moderate_t_gives_handful_of_responses() {
        // Paper Section 2.5.4: T' of 3-4 RTTs gives a desirable, small number
        // of responses for n one to two orders of magnitude below N = 10000.
        for &n in &[100u64, 1000] {
            let r = expected_responses(n, 10_000.0, 4.0, 1.0);
            assert!(
                (1.0..=20.0).contains(&r),
                "n={n}: expected a handful of responses, got {r}"
            );
        }
    }

    #[test]
    fn responses_decrease_with_larger_t_max() {
        let n = 1000;
        let r3 = expected_responses(n, 10_000.0, 3.0, 1.0);
        let r4 = expected_responses(n, 10_000.0, 4.0, 1.0);
        let r6 = expected_responses(n, 10_000.0, 6.0, 1.0);
        assert!(r3 >= r4 && r4 >= r6, "r3={r3} r4={r4} r6={r6}");
    }

    #[test]
    fn underestimating_n_causes_implosion() {
        // If the true receiver count greatly exceeds N, many immediate
        // responses (the 1/N atom) occur: roughly n/N responses at least.
        let r = expected_responses(100_000, 1000.0, 4.0, 1.0);
        assert!(r > 90.0, "expected ≳100 immediate responses, got {r}");
    }

    #[test]
    fn cdf_shape() {
        let m = FeedbackModel::default();
        assert!((m.timer_cdf(0.0) - 1.0 / 10_000.0).abs() < 1e-12);
        assert_eq!(m.timer_cdf(-1.0), 0.0);
        assert_eq!(m.timer_cdf(4.0), 1.0);
        assert!(m.timer_cdf(2.0) > m.timer_cdf(1.0));
    }

    #[test]
    fn grid_covers_all_pairs() {
        let grid = expected_responses_grid(&[3.0, 4.0], &[10, 100, 1000], 10_000.0);
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|&(_, _, r)| r >= 1.0));
    }

    #[test]
    fn model_struct_matches_free_function() {
        let m = FeedbackModel::default();
        let a = m.expected_responses(500);
        let b = expected_responses(500, 10_000.0, 4.0, 1.0);
        assert_eq!(a, b);
    }
}
