//! The determinism rules and the crate/layer classification they key off.
//!
//! | Rule | Enforces |
//! |------|----------|
//! | D001 | no `HashMap`/`HashSet` in sim-visible crates (iteration order breaks replay) |
//! | D002 | no `Instant::now`/`SystemTime` outside the bench/CLI timing layer |
//! | D003 | no entropy-seeded randomness anywhere (`thread_rng`, `from_entropy`, …) |
//! | D004 | no raw `f64`/`f32` keys in ordered containers (use order-preserving bit keys) |
//! | U001 | every `unsafe` carries a `// SAFETY:` comment; pure crates `#![forbid(unsafe_code)]` |
//! | L001 | suppression pragmas must be well-formed and carry a reason |
//!
//! Rules match on identifier-token sequences, so mentions inside strings,
//! comments and doc prose never trip them ([`crate::lexer`]).

use crate::lexer::{Token, TokenKind};

/// Every rule id the linter knows (the pragma parser validates against it).
pub const RULE_IDS: &[&str] = &["D001", "D002", "D003", "D004", "U001", "L001"];

/// Crates whose state is visible to a simulation: anything that can change
/// packet contents, event order or replay output.  `HashMap`/`HashSet`
/// iteration order is nondeterministic across builds and standard-library
/// versions, so ordered containers are required here (D001).
pub const SIM_VISIBLE_CRATES: &[&str] = &[
    "netsim",
    "tfmcc-proto",
    "tfmcc-feedback",
    "tfmcc-agents",
    "tfmcc-model",
    "tfmcc-mc",
    "tfmcc-pgmcc",
    "tfmcc-tfrc",
    "tfmcc-tcp",
];

/// Crates that *are* the bench/CLI timing layer: wall-clock reads are their
/// job (measuring real elapsed time around deterministic simulations), so
/// D002 does not apply to them.  Binaries, examples and criterion benches of
/// any crate are part of the same layer (see [`FileClass::timing_layer`]).
pub const TIMING_LAYER_CRATES: &[&str] =
    &["bench", "tfmcc-experiments", "tfmcc-runner", "tfmcc-lint"];

/// Pure crates that must carry `#![forbid(unsafe_code)]` in their `lib.rs`
/// (U001): they are math/protocol logic with no FFI or allocator work, so
/// any `unsafe` appearing there is a red flag by construction.
pub const FORBID_UNSAFE_CRATES: &[&str] = &[
    "tfmcc-model",
    "tfmcc-feedback",
    "tfmcc-mc",
    "tfmcc-tfrc",
    "tfmcc-tcp",
    "tfmcc-pgmcc",
];

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D001`, …, `L001`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes) of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Human-readable diagnostic with a remediation hint.
    pub message: String,
}

/// How a file is classified for rule applicability, derived from its
/// workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Owning crate name (`netsim`, `tfmcc-proto`, …; the workspace facade
    /// crate at `src/`, `examples/`, `tests/` is `tfmcc`).
    pub crate_name: String,
    /// D001 applies.
    pub sim_visible: bool,
    /// D002 does *not* apply (bench/CLI/timing code).
    pub timing_layer: bool,
    /// This file is the `lib.rs` of a crate that must forbid unsafe code.
    pub must_forbid_unsafe: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let crate_name = match path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
    {
        Some(name) => name.to_string(),
        None => "tfmcc".to_string(),
    };
    // Binaries, examples and criterion benches of any crate are operational
    // entry points, not simulation state: timing there is allowed.
    let operational_path = path.starts_with("examples/")
        || path.contains("/examples/")
        || path.contains("/bin/")
        || path.contains("/benches/");
    let timing_layer = operational_path || TIMING_LAYER_CRATES.contains(&crate_name.as_str());
    let must_forbid_unsafe = FORBID_UNSAFE_CRATES.contains(&crate_name.as_str())
        && path == format!("crates/{crate_name}/src/lib.rs");
    FileClass {
        sim_visible: SIM_VISIBLE_CRATES.contains(&crate_name.as_str()),
        timing_layer,
        must_forbid_unsafe,
        crate_name,
    }
}

/// Runs every rule over one file's tokens; `src` is only consulted for the
/// whole-file `#![forbid(unsafe_code)]` presence check.
pub fn check(path: &str, src: &str, tokens: &[Token]) -> Vec<Finding> {
    let class = classify(path);
    let mut findings = Vec::new();
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();

    let finding = |rule: &'static str, token: &Token, message: String| Finding {
        rule,
        path: path.to_string(),
        line: token.line,
        column: token.column,
        message,
    };

    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let name = token.text.as_str();

        // D001: hash containers in sim-visible crates.
        if class.sim_visible && (name == "HashMap" || name == "HashSet") {
            findings.push(finding(
                "D001",
                token,
                format!(
                    "`{name}` in sim-visible crate `{}`: iteration order is \
                     nondeterministic and breaks byte-identical replay; use \
                     `BTreeMap`/`BTreeSet` (or an index keyed by id)",
                    class.crate_name
                ),
            ));
        }

        // D002: wall-clock reads outside the timing layer.
        if !class.timing_layer {
            if name == "SystemTime" {
                findings.push(finding(
                    "D002",
                    token,
                    "`SystemTime` outside the bench/CLI timing layer: wall-clock \
                     values differ between runs; derive time from the simulation \
                     clock instead"
                        .to_string(),
                ));
            }
            if name == "Instant" && next_is_method(&code, i, "now") {
                findings.push(finding(
                    "D002",
                    token,
                    "`Instant::now` outside the bench/CLI timing layer: wall-clock \
                     reads differ between runs; derive time from the simulation \
                     clock instead"
                        .to_string(),
                ));
            }
        }

        // D003: entropy-seeded randomness, anywhere.
        if matches!(
            name,
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng"
        ) {
            findings.push(finding(
                "D003",
                token,
                format!(
                    "`{name}` seeds randomness from OS entropy: all randomness \
                     must derive from `stream_seed`/splitmix64 so replays are \
                     bit-identical"
                ),
            ));
        }

        // D004: raw float keys in ordered containers.
        if matches!(name, "BTreeMap" | "BTreeSet" | "BinaryHeap") {
            if let Some(key) = float_key(&code, i) {
                findings.push(finding(
                    "D004",
                    token,
                    format!(
                        "`{name}` keyed directly by `{key}`: floats are not `Ord` \
                         and ad-hoc orderings diverge on NaN/-0.0; key by the \
                         order-preserving bit pattern (see `f64_key` in \
                         tfmcc-proto's aggregator) instead"
                    ),
                ));
            }
        }

        // U001: `unsafe` must be justified in place.
        if name == "unsafe" && !has_safety_comment(tokens, token.line) {
            findings.push(finding(
                "U001",
                token,
                "`unsafe` without a `// SAFETY:` comment on the same or one of \
                 the three preceding lines: state the invariant that makes \
                 this sound"
                    .to_string(),
            ));
        }
    }

    // U001 (crate half): pure crates must forbid unsafe code outright.
    if class.must_forbid_unsafe && !src.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            rule: "U001",
            path: path.to_string(),
            line: 1,
            column: 1,
            message: format!(
                "pure crate `{}` must carry `#![forbid(unsafe_code)]` in its \
                 lib.rs (it has no FFI or allocator work to justify unsafe)",
                class.crate_name
            ),
        });
    }

    findings
}

/// True when the identifier at `i` is followed by `:: <method>`.
fn next_is_method(code: &[&Token], i: usize, method: &str) -> bool {
    matches!(
        (code.get(i + 1), code.get(i + 2), code.get(i + 3)),
        (Some(a), Some(b), Some(c))
            if a.kind == TokenKind::Punct && a.text == ":"
                && b.kind == TokenKind::Punct && b.text == ":"
                && c.kind == TokenKind::Ident && c.text == method
    )
}

/// If the ordered container named at `i` has a raw `f64`/`f32` *key*, return
/// the float type.  Matches `Name < f64 …`, `Name < ( f64 …` (tuple whose
/// first element orders the entries) and `Name :: < f64` turbofish.
fn float_key(code: &[&Token], i: usize) -> Option<&'static str> {
    let mut j = i + 1;
    // Optional turbofish `::`.
    while j < code.len() && code[j].kind == TokenKind::Punct && code[j].text == ":" {
        j += 1;
    }
    if code.get(j).map(|t| (t.kind, t.text.as_str())) != Some((TokenKind::Punct, "<")) {
        return None;
    }
    j += 1;
    if code.get(j).map(|t| (t.kind, t.text.as_str())) == Some((TokenKind::Punct, "(")) {
        j += 1;
    }
    match code.get(j).map(|t| t.text.as_str()) {
        Some("f64") => Some("f64"),
        Some("f32") => Some("f32"),
        _ => None,
    }
}

/// True when any comment on `line` or the three lines above contains
/// `SAFETY`.  Three lines of slack lets one comment cover an attribute or a
/// short doc line between it and the `unsafe` token.
fn has_safety_comment(tokens: &[Token], line: usize) -> bool {
    tokens.iter().any(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            && t.text.contains("SAFETY")
            && t.line <= line
            && t.line + 3 >= line
    })
}
