//! Deterministic state hashing.
//!
//! State fingerprints must be identical across runs, platforms and Rust
//! versions: they are written into replay files and compared by regression
//! tests.  `std::collections::hash_map::DefaultHasher` guarantees none of
//! that (its algorithm is explicitly unspecified), so the checker uses a
//! fixed FNV-1a implementation with all multi-byte writes little-endian.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a with little-endian integer writes: a stable, portable
/// [`Hasher`] for state fingerprints.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    // The default integer methods hash native-endian bytes; pin them to
    // little-endian so fingerprints are identical on every platform.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        // usize width differs across platforms; hash as u64.
        self.write_u64(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn integer_writes_match_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_usize(7);
        let mut d = Fnv1a::new();
        d.write_u64(7);
        assert_eq!(c.finish(), d.finish());
    }
}
