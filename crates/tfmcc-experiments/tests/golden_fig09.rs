//! Golden-output regression test: the quick-scale Figure 9 JSON is pinned
//! byte for byte.
//!
//! The pinned file was captured after the per-link RNG streams landed and
//! is unchanged by the zero-copy fan-out refactor (shared and clone-based
//! fan-out produce identical event sequences — see the `netsim`
//! `fanout_equivalence` proptest).  Any future change to the simulator core,
//! the protocol, or the JSON rendering that alters this output must be
//! deliberate: regenerate with
//!
//! ```text
//! cargo run --release -p tfmcc-experiments --bin fig09_single_bottleneck -- \
//!     --quick --threads 2 --out crates/tfmcc-experiments/tests/golden/fig09_quick.json
//! ```

use std::sync::Mutex;

use tfmcc_experiments::fairness_figs::fig09_single_bottleneck;
use tfmcc_experiments::{Scale, SweepRunner};

const GOLDEN: &str = include_str!("golden/fig09_quick.json");

/// Serializes the two tests: both run full simulations whose scheduler is
/// chosen through the process-global `TFMCC_SCHEDULER` variable.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn render_fig09() -> String {
    let fig = fig09_single_bottleneck(&SweepRunner::new(2), Scale::Quick);
    let mut rendered = fig.to_json().render();
    rendered.push('\n');
    rendered
}

#[test]
fn fig09_quick_json_matches_golden() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("TFMCC_SCHEDULER");
    assert_eq!(
        render_fig09(),
        GOLDEN,
        "fig09 --quick output drifted from the pinned golden file"
    );
}

/// The calendar-queue scheduler must reproduce the pinned golden byte for
/// byte — the determinism contract of `netsim::events` applied end to end.
#[test]
fn fig09_quick_json_matches_golden_under_calendar_scheduler() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::set_var("TFMCC_SCHEDULER", "calendar");
    let rendered = render_fig09();
    std::env::remove_var("TFMCC_SCHEDULER");
    assert_eq!(
        rendered, GOLDEN,
        "fig09 --quick output under the calendar scheduler drifted from the pinned golden file"
    );
}
