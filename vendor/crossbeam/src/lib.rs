//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` surface the workspace uses — bounded
//! channels with `send`/`try_recv`/`recv_timeout` — backed by
//! `std::sync::mpsc::sync_channel`.  Semantics match for the single-producer
//! control channels used here: `send` blocks when the buffer is full and
//! errors once the receiver is gone.

#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// Receiving half of a bounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates a bounded channel with room for `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TryRecvError};

    #[test]
    fn bounded_channel_round_trips() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(rx);
        assert!(tx.send(8).is_err());
    }
}
