//! The TFMCC sender bound to the simulator.

use std::any::Any;

use netsim::packet::{Dest, FlowId, GroupId, Packet, Payload, Port};
use netsim::sim::{Agent, Context};

use tfmcc_proto::packets::{FeedbackPacket, PopulationReport};
use tfmcc_proto::sender::TfmccSender;

/// Timer token for the data-pacing timer.
const SEND_TOKEN: u64 = 1;

/// Runs a [`TfmccSender`] inside the simulator: data packets are multicast to
/// the session group at the protocol's current rate; receiver reports arrive
/// as unicast packets addressed to this agent.
pub struct TfmccSenderAgent {
    sender: TfmccSender,
    group: GroupId,
    data_port: Port,
    flow: FlowId,
    start_at: f64,
    record_rate_series: bool,
    started: bool,
}

impl TfmccSenderAgent {
    /// Creates the agent.  Data packets are multicast to `group` on
    /// `data_port`; `flow` tags them for statistics.
    pub fn new(sender: TfmccSender, group: GroupId, data_port: Port, flow: FlowId) -> Self {
        TfmccSenderAgent {
            sender,
            group,
            data_port,
            flow,
            start_at: 0.0,
            record_rate_series: false,
            started: false,
        }
    }

    /// Delays the start of transmission until `t` seconds of simulation time.
    pub fn starting_at(mut self, t: f64) -> Self {
        self.start_at = t;
        self
    }

    /// Records the sending rate into the simulation statistics registry under
    /// the series name `tfmcc.rate.<flow>` (one sample per data packet).
    pub fn with_rate_series(mut self) -> Self {
        self.record_rate_series = true;
        self
    }

    /// The wrapped protocol sender (for reading rate, CLR, statistics).
    pub fn protocol(&self) -> &TfmccSender {
        &self.sender
    }
}

impl Agent for TfmccSenderAgent {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let delay = (self.start_at - ctx.now().as_secs()).max(0.0);
        ctx.schedule(delay, SEND_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token != SEND_TOKEN {
            return;
        }
        self.started = true;
        let now = ctx.now().as_secs();
        let header = self.sender.next_data(now);
        let size = header.size;
        if self.record_rate_series {
            let name = format!("tfmcc.rate.{}", self.flow.0);
            let at = ctx.now();
            ctx.stats().sample(&name, at, self.sender.current_rate());
        }
        let pkt = Packet::new(
            ctx.addr(),
            Dest::Multicast {
                group: self.group,
                port: self.data_port,
            },
            size,
            self.flow,
            Payload::new(header),
        );
        ctx.send(pkt);
        ctx.schedule(self.sender.packet_interval(), SEND_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        if let Some(fb) = packet.payload.downcast_ref::<FeedbackPacket>() {
            self.sender.on_feedback(ctx.now().as_secs(), fb);
        } else if let Some(rep) = packet.payload.downcast_ref::<PopulationReport>() {
            self.sender
                .on_population_feedback(ctx.now().as_secs(), &rep.feedback, rep.weight);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
