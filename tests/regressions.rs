//! Counterexample regression suite: every `tests/regressions/*.replay` file
//! is re-executed deterministically on every test run.
//!
//! Replay files are `tfmcc-replay-v1` (see `tfmcc_mc::replay`) and come in
//! two kinds:
//!
//! * `kind=model-check` — an action schedule for a model-checker preset.
//!   With an `invariant=` key the schedule must still violate exactly that
//!   invariant (a known-bad scenario kept as a tripwire); without one it is
//!   *quarantined*: a scenario that once looked dangerous and must now
//!   replay clean under all invariants.
//! * `kind=scenario` — a full-simulation point from the worst-case scenario
//!   search, whose recorded Jain index and CLR recovery time must reproduce
//!   **bit-identically**.
//!
//! New counterexamples arrive via `mc_check --out FILE` or the scenario
//! search's `TFMCC_REPLAY_DIR`; drop the file in `tests/regressions/` and
//! this suite picks it up — no code change needed.
//! `cargo run -p tfmcc-experiments --example gen_regressions` regenerates
//! the seed files after an intentional protocol change.

use std::fs;
use std::path::{Path, PathBuf};

use tfmcc::experiments::scenario_search::replay_scenario;
use tfmcc::mc::{run_schedule, Action, McConfig, McModel, Replay};

fn regression_files() -> Vec<PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/regressions");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("tests/regressions must exist")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "replay"))
        .collect();
    files.sort();
    files
}

fn replay_model_check(path: &Path, replay: &Replay) {
    let preset = replay.require("preset").unwrap();
    let config = McConfig::preset(preset)
        .unwrap_or_else(|| panic!("{}: unknown preset '{preset}'", path.display()));
    let model = McModel::new(config);
    let schedule: Vec<Action> = replay
        .require("schedule")
        .unwrap()
        .split_whitespace()
        .map(|s| {
            s.parse()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        })
        .collect();
    assert!(!schedule.is_empty(), "{}: empty schedule", path.display());
    match replay.get("invariant") {
        Some(invariant) => {
            let err = run_schedule(&model, &schedule).expect_err("known-bad schedule");
            assert!(
                err.contains(invariant),
                "{}: expected a violation of {invariant}, got: {err}",
                path.display()
            );
        }
        None => {
            run_schedule(&model, &schedule).unwrap_or_else(|e| {
                panic!(
                    "{}: quarantined schedule no longer replays clean: {e}",
                    path.display()
                )
            });
        }
    }
}

#[test]
fn all_checked_in_replays_reexecute() {
    let files = regression_files();
    assert!(
        files.len() >= 2,
        "expected at least the two seed replays, found {files:?}"
    );
    for path in &files {
        let text = fs::read_to_string(path).unwrap();
        let replay = Replay::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match replay.get("kind") {
            Some("model-check") => replay_model_check(path, &replay),
            Some("scenario") => {
                replay_scenario(&replay)
                    .unwrap_or_else(|e| panic!("{}: scenario diverged: {e}", path.display()));
            }
            other => panic!("{}: unknown replay kind {other:?}", path.display()),
        }
    }
}

#[test]
fn seed_replays_cover_both_kinds() {
    let files = regression_files();
    let kinds: Vec<String> = files
        .iter()
        .map(|path| {
            Replay::parse(&fs::read_to_string(path).unwrap())
                .unwrap()
                .get("kind")
                .unwrap()
                .to_string()
        })
        .collect();
    assert!(kinds.iter().any(|k| k == "model-check"));
    assert!(kinds.iter().any(|k| k == "scenario"));
}
