//! TFMCC — a Rust reproduction of *Extending Equation-based Congestion
//! Control to Multicast Applications* (Widmer & Handley, SIGCOMM 2001).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`proto`] — the sans-I/O TFMCC protocol core (sender, receiver, loss
//!   history, RTT estimation, feedback suppression);
//! * [`model`] — TCP throughput models and the analytic machinery;
//! * [`feedback`] — standalone feedback-suppression analysis;
//! * [`mc`] — the bounded model checker for the protocol core;
//! * [`sim`] — the discrete-event packet simulator substrate;
//! * [`agents`] — simulator bindings and the session builder;
//! * [`tcp`] — the TCP Reno competing-traffic agent;
//! * [`tfrc`] — the unicast TFRC baseline;
//! * [`pgmcc`] — the PGMCC baseline;
//! * [`transport`] — the real-network UDP transport;
//! * [`experiments`] — the figure-by-figure experiment harness;
//! * [`runner`] — the parallel sweep runner the harness executes on.
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction notes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use netsim as sim;
pub use tfmcc_agents as agents;
pub use tfmcc_experiments as experiments;
pub use tfmcc_feedback as feedback;
pub use tfmcc_mc as mc;
pub use tfmcc_model as model;
pub use tfmcc_pgmcc as pgmcc;
pub use tfmcc_proto as proto;
pub use tfmcc_runner as runner;
pub use tfmcc_tcp as tcp;
pub use tfmcc_tfrc as tfrc;
pub use tfmcc_transport as transport;

/// Commonly used types across the workspace.
pub mod prelude {
    pub use netsim::prelude::*;
    pub use tfmcc_agents::population::{FluidSpec, PopulationSpec};
    pub use tfmcc_agents::session::{ReceiverSpec, TfmccSession, TfmccSessionBuilder};
    pub use tfmcc_model::population::Dist;
    pub use tfmcc_proto::prelude::*;
}
