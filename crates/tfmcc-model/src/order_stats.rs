//! Order statistics for the loss-path-multiplicity analysis (paper Section 3).
//!
//! When `n` receivers see independent loss with the same probability, the loss
//! intervals at each receiver are (approximately) exponentially distributed
//! and TFMCC, which tracks the *minimum* calculated rate, ends up governed by
//! the minimum of `n` such estimates.  Because the TFMCC loss measure averages
//! `k` intervals, the per-receiver estimate is gamma distributed and the
//! degradation is driven by the expected minimum of `n` gamma variables.
//! These functions compute those expectations and the resulting throughput
//! degradation curve plotted in paper Figure 7 ("constant" series).

use crate::special::{gamma_cdf, harmonic};
use crate::throughput::{mathis_throughput, padhye_throughput};

/// Expected minimum of `n` i.i.d. Exponential(mean = `mean`) random variables.
///
/// Exact: `mean / n`.
pub fn expected_min_exponential(n: u64, mean: f64) -> f64 {
    assert!(n >= 1, "need at least one variable");
    assert!(mean > 0.0, "mean must be positive");
    mean / n as f64
}

/// Expected minimum of `n` i.i.d. Uniform(0, `max`) random variables.
///
/// Exact: `max / (n + 1)`.  Used in tests as an independent cross-check of the
/// numeric integration scheme.
pub fn expected_min_uniform(n: u64, max: f64) -> f64 {
    assert!(n >= 1);
    assert!(max > 0.0);
    max / (n as f64 + 1.0)
}

/// Expected maximum of `n` i.i.d. Exponential(mean = `mean`) variables:
/// `mean * H_n` (harmonic number).
pub fn expected_max_exponential(n: u64, mean: f64) -> f64 {
    assert!(n >= 1);
    assert!(mean > 0.0);
    mean * harmonic(n)
}

/// Expected minimum of `n` i.i.d. Gamma(shape, scale) random variables,
/// computed by numerically integrating `E[min] = ∫ (1 - F(x))^n dx`.
///
/// There is no simple closed form for first-order statistics of the gamma
/// distribution (the paper cites Gupta 1960); numeric integration over the
/// survival function is accurate and fast for the parameter ranges we need
/// (shape up to ~32, `n` up to 10⁵).
pub fn expected_min_gamma(n: u64, shape: f64, scale: f64) -> f64 {
    assert!(n >= 1);
    assert!(shape > 0.0 && scale > 0.0);
    let mean = shape * scale;
    // Integrate out to where the survival function raised to n is negligible.
    // The minimum concentrates near zero for large n, so an upper bound of a
    // few means is always sufficient; refine the grid near zero.
    let upper = mean * 8.0;
    let steps = 20_000usize;
    let dx = upper / steps as f64;
    let mut acc = 0.0;
    let mut prev = 1.0_f64; // (1 - F(0))^n = 1
    for i in 1..=steps {
        let x = i as f64 * dx;
        let surv = (1.0 - gamma_cdf(shape, scale, x)).max(0.0).powf(n as f64);
        acc += 0.5 * (prev + surv) * dx;
        prev = surv;
        if surv < 1e-12 && i as f64 * dx > mean {
            break;
        }
    }
    acc
}

/// Throughput degradation factor for a receiver set of size `n` whose loss
/// measurement averages `history_len` exponential loss intervals.
///
/// Returns the ratio (in `(0, 1]`) of the expected TFMCC throughput with `n`
/// receivers to the throughput with a single receiver, under independent loss
/// with identical rate at every receiver (paper Figure 7, "constant" curve).
///
/// Derivation: each receiver's average loss interval is the mean of
/// `history_len` Exp(mean = 1/p) intervals, i.e. Gamma(history_len,
/// 1/(history_len·p)); TFMCC tracks the minimum over `n` receivers of the
/// calculated rate, which under the square-root law is proportional to
/// `sqrt(avg loss interval)`, so the governing quantity is the expected
/// minimum interval.  Following the paper's own argument ("the average
/// sending rate would scale proportionally to 1/sqrt(n)"), the degradation is
/// evaluated with the square-root (Mathis) model; the closed-loop protocol
/// simulation in `tfmcc-experiments` (Figure 7) reproduces the effect with
/// the real estimator and tends to sit between this approximation and the
/// much harsher value the full Padhye model would predict at very high
/// effective loss rates.
pub fn scaling_degradation(
    n: u64,
    history_len: u32,
    loss_rate: f64,
    rtt: f64,
    packet_size: f64,
) -> f64 {
    assert!(n >= 1);
    assert!(history_len >= 1);
    assert!((0.0..1.0).contains(&loss_rate) && loss_rate > 0.0);
    let mean_interval = 1.0 / loss_rate;
    let shape = history_len as f64;
    let scale = mean_interval / shape;
    let min_interval = expected_min_gamma(n, shape, scale);
    let p_effective = (1.0 / min_interval).min(1.0);
    let base = mathis_throughput(packet_size, rtt, loss_rate);
    let degraded = mathis_throughput(packet_size, rtt, p_effective);
    (degraded / base).min(1.0)
}

/// Absolute expected TFMCC throughput (bytes/second) for the Figure 7
/// "constant loss" scenario.
pub fn scaling_throughput(
    n: u64,
    history_len: u32,
    loss_rate: f64,
    rtt: f64,
    packet_size: f64,
) -> f64 {
    scaling_degradation(n, history_len, loss_rate, rtt, packet_size)
        * padhye_throughput(packet_size, rtt, loss_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1e-12)
    }

    #[test]
    fn exponential_minimum_exact() {
        assert!(close(expected_min_exponential(1, 2.0), 2.0, 1e-12));
        assert!(close(expected_min_exponential(4, 2.0), 0.5, 1e-12));
        assert!(close(expected_min_exponential(1000, 1.0), 1e-3, 1e-12));
    }

    #[test]
    fn exponential_maximum_harmonic() {
        assert!(close(expected_max_exponential(1, 3.0), 3.0, 1e-12));
        assert!(close(
            expected_max_exponential(4, 1.0),
            1.0 + 0.5 + 1.0 / 3.0 + 0.25,
            1e-12
        ));
    }

    #[test]
    fn gamma_min_with_shape_one_is_exponential() {
        // Gamma(1, scale) == Exponential(mean = scale).
        for &n in &[1u64, 2, 10, 100] {
            let g = expected_min_gamma(n, 1.0, 2.0);
            let e = expected_min_exponential(n, 2.0);
            assert!(close(g, e, 2e-3), "n={n}: gamma {g} vs exp {e}");
        }
    }

    #[test]
    fn gamma_min_decreases_with_n() {
        let mut last = f64::INFINITY;
        for &n in &[1u64, 2, 4, 16, 64, 256, 1024] {
            let m = expected_min_gamma(n, 8.0, 0.125);
            assert!(m < last);
            assert!(m > 0.0);
            last = m;
        }
    }

    #[test]
    fn gamma_min_single_is_mean() {
        // n = 1: the expected minimum is just the mean, shape*scale.
        let m = expected_min_gamma(1, 8.0, 0.5);
        assert!(close(m, 4.0, 2e-3), "{m}");
    }

    #[test]
    fn averaging_more_intervals_reduces_degradation() {
        // A longer loss history makes the minimum less extreme (paper: the
        // degradation can be alleviated by increasing the number of loss
        // intervals, at the expense of responsiveness).
        let d8 = scaling_degradation(10_000, 8, 0.1, 0.05, 1000.0);
        let d32 = scaling_degradation(10_000, 32, 0.1, 0.05, 1000.0);
        assert!(d32 > d8, "d32={d32} d8={d8}");
    }

    #[test]
    fn paper_figure7_shape() {
        // Figure 7: 10% loss, 50 ms RTT. A single receiver gets the fair rate
        // (degradation 1.0); at 10 000 receivers only a small fraction
        // (paper: about 1/6) of the fair rate remains.  The square-root
        // approximation used here is somewhat gentler than the closed-loop
        // protocol, so accept a band around the paper's value.
        let d1 = scaling_degradation(1, 8, 0.1, 0.05, 1000.0);
        assert!(d1 > 0.999, "single receiver must see no degradation: {d1}");
        let d10k = scaling_degradation(10_000, 8, 0.1, 0.05, 1000.0);
        assert!(
            (0.05..=0.6).contains(&d10k),
            "expected a substantial degradation at n=10⁴, got {d10k}"
        );
        // Monotone decrease along the sweep.
        let mut last = 1.1;
        for &n in &[1u64, 10, 100, 1000, 10_000] {
            let d = scaling_degradation(n, 8, 0.1, 0.05, 1000.0);
            assert!(d <= last + 1e-9);
            last = d;
        }
    }

    #[test]
    fn scaling_throughput_absolute_values() {
        // At n=1 the absolute throughput equals the fair rate (~300 kbit/s).
        let t1 = scaling_throughput(1, 8, 0.1, 0.05, 1000.0) * 8.0 / 1000.0;
        assert!((150.0..=450.0).contains(&t1), "fair rate {t1} kbit/s");
        let t10k = scaling_throughput(10_000, 8, 0.1, 0.05, 1000.0) * 8.0 / 1000.0;
        assert!(t10k < t1 / 2.0, "t10k={t10k} t1={t1}");
    }

    #[test]
    fn uniform_minimum_exact() {
        assert!(close(expected_min_uniform(1, 1.0), 0.5, 1e-12));
        assert!(close(expected_min_uniform(9, 1.0), 0.1, 1e-12));
    }
}
